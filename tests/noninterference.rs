//! Experiment E10: empirical soundness of CFM.
//!
//! For random terminating programs: whenever CFM certifies a binding with
//! one High secret and everything else Low, an observer of the Low
//! variables must not be able to distinguish secret values among
//! terminating executions. (Pure termination/deadlock observability is
//! out of scope for the paper's partial-correctness flow model, so the
//! comparison is over low-outcome sets and only when both secret values
//! admit terminating runs.)

use proptest::prelude::*;

use secflow::cfm::{certify, StaticBinding};
use secflow::lang::VarId;
use secflow::lattice::{TwoPoint, TwoPointScheme};
use secflow::runtime::{observe, ExploreLimits};
use secflow::workload::{generate, GenConfig};

fn cfg() -> GenConfig {
    GenConfig {
        target_stmts: 18,
        max_depth: 4,
        n_vars: 3,
        n_sems: 1,
        bounded_loops: true,
    }
}

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_states: 60_000,
        max_depth: 4_000,
        ..ExploreLimits::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Certified ⟹ no value interference to Low observers.
    #[test]
    fn certified_programs_do_not_leak_values(seed in 0u64..100_000) {
        let program = generate(&cfg(), seed);
        let secret = program.var("v0");
        let sbind = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
            .with(secret, TwoPoint::High);
        if !certify(&program, &sbind).certified() {
            return Ok(()); // CFM already objects; nothing to verify
        }
        let low: Vec<VarId> = program
            .symbols
            .iter()
            .map(|(id, _)| id)
            .filter(|id| *id != secret)
            .collect();
        let (obs_a, trunc_a) = observe(&program, &[(secret, 0)], &low, limits());
        let (obs_b, trunc_b) = observe(&program, &[(secret, 3)], &low, limits());
        if trunc_a || trunc_b {
            return Ok(()); // state space too large to decide exactly
        }
        if obs_a.low_outcomes.is_empty() || obs_b.low_outcomes.is_empty() {
            return Ok(()); // termination channel only — out of model
        }
        prop_assert_eq!(
            obs_a.low_outcomes,
            obs_b.low_outcomes,
            "certified program leaked (seed {})",
            seed
        );
    }
}

#[test]
fn uncertified_corpus_contains_real_leaks() {
    // The converse direction is conservative, but the corpus must contain
    // genuinely leaking programs that CFM rejects — otherwise the
    // soundness test above would be vacuous.
    let mut observed_real_leak = false;
    let mut rejected = 0;
    for seed in 0..400u64 {
        let program = generate(&cfg(), seed);
        let secret = program.var("v0");
        let sbind =
            StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(secret, TwoPoint::High);
        if certify(&program, &sbind).certified() {
            continue;
        }
        rejected += 1;
        let low: Vec<VarId> = program
            .symbols
            .iter()
            .map(|(id, _)| id)
            .filter(|id| *id != secret)
            .collect();
        let (obs_a, ta) = observe(&program, &[(secret, 0)], &low, limits());
        let (obs_b, tb) = observe(&program, &[(secret, 3)], &low, limits());
        if ta || tb {
            continue;
        }
        if !obs_a.low_outcomes.is_empty()
            && !obs_b.low_outcomes.is_empty()
            && obs_a.low_outcomes != obs_b.low_outcomes
        {
            observed_real_leak = true;
        }
        if observed_real_leak && rejected >= 10 {
            break;
        }
    }
    assert!(rejected >= 10, "corpus too tame ({rejected} rejections)");
    assert!(observed_real_leak, "no rejected program actually leaked");
}

#[test]
fn the_dead_store_conservatism_is_reproducible() {
    // §5.2's program: rejected by CFM, yet empirically noninterfering.
    let program = secflow::lang::parse("var x, y : integer; begin x := 0; y := x end").unwrap();
    let sbind = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
        .with(program.var("x"), TwoPoint::High);
    assert!(!certify(&program, &sbind).certified());
    let (a, _) = observe(
        &program,
        &[(program.var("x"), 0)],
        &[program.var("y")],
        limits(),
    );
    let (b, _) = observe(
        &program,
        &[(program.var("x"), 5)],
        &[program.var("y")],
        limits(),
    );
    assert_eq!(
        a.low_outcomes, b.low_outcomes,
        "no real leak: x is overwritten"
    );
}
