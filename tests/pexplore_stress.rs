//! Stress tests for the work-stealing explorer: deadlines land close to
//! the deadline, and cancellation stops every worker within one polling
//! quantum.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

use secflow::runtime::pexplore::CANCEL_POLL_STATES;
use secflow::runtime::{pexplore_with, ExploreLimits};
use secflow::server::CancelToken;
use secflow::workload::dining_philosophers;

/// A workload whose state space dwarfs any deadline used below, so the
/// searches here always die by cancellation, never by exhaustion.
/// Partial-order reduction is disabled for the same reason: these tests
/// exercise the cancellation machinery, and the reduced search could
/// finish inside the deadline.
fn big_table() -> secflow::lang::Program {
    dining_philosophers(4, 4, true)
}

/// An 8-thread exploration under an aggressive deadline must observe
/// the timeout promptly: the whole call returns within twice the
/// deadline (polling is every [`CANCEL_POLL_STATES`] states per worker,
/// and one quantum of philosopher expansions is far cheaper than the
/// deadline itself).
#[test]
fn aggressive_deadline_lands_within_twice_the_deadline() {
    let p = big_table();
    let deadline_ms = 150u64;
    let token = CancelToken::after_ms(deadline_ms);
    let start = Instant::now();
    let report = pexplore_with(&p, &[], ExploreLimits::default().without_por(), 8, &|| {
        token.expired()
    });
    let elapsed = start.elapsed();
    assert!(report.cancelled, "the deadline should have fired");
    assert!(report.truncated);
    assert!(
        elapsed < Duration::from_millis(2 * deadline_ms),
        "timeout took {elapsed:?} against a {deadline_ms} ms deadline"
    );
}

/// No worker outlives cancellation by more than one polling quantum.
///
/// The hook flips permanently true after its 8th invocation. Every
/// expansion is preceded by a poll at each multiple of
/// [`CANCEL_POLL_STATES`] pops, so the 8 false polls license at most
/// `8 * CANCEL_POLL_STATES` expansions in total — across all 8 workers,
/// however the steals interleave.
#[test]
fn no_worker_outlives_the_token_by_more_than_one_quantum() {
    let p = big_table();
    let polls = AtomicUsize::new(0);
    let stop = || polls.fetch_add(1, Relaxed) >= 8;
    let report = pexplore_with(&p, &[], ExploreLimits::default().without_por(), 8, &stop);
    assert!(report.cancelled);
    assert!(
        report.states <= 8 * CANCEL_POLL_STATES,
        "{} states expanded after 8 permitted polls (quantum {})",
        report.states,
        CANCEL_POLL_STATES
    );
}

/// A token cancelled before the search starts stops it on the very
/// first quantum of every worker.
#[test]
fn pre_cancelled_token_stops_the_search_immediately() {
    let p = big_table();
    let token = CancelToken::unbounded();
    token.cancel();
    let report = pexplore_with(&p, &[], ExploreLimits::default().without_por(), 8, &|| {
        token.expired()
    });
    assert!(report.cancelled);
    assert!(
        report.states <= 8 * CANCEL_POLL_STATES,
        "{} states",
        report.states
    );
}
