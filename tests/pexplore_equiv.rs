//! Differential testing of the explorers: for generated programs,
//! [`pexplore`](secflow::runtime::pexplore) at 1, 2 and 4 threads must
//! agree with the sequential explorer on every schedule-independent
//! field, and the partial-order-reduced search must agree with the full
//! interleaving search on every *verdict* — outcome set, deadlock count
//! and witness set, fault reachability — while visiting fewer states.
//!
//! The generator's default `bounded_loops: true` keeps every program
//! terminating under every schedule, and the limits below never bind,
//! so neither search truncates; dedup-on-push (parallel) and
//! dedup-on-pop (sequential) then visit exactly the same reachable set
//! and the commutative merge makes the parallel report deterministic.
//!
//! Engine-equality comparisons run in matched `persistent_only` mode:
//! sleep sets are traversal-order dependent, so the sequential
//! default-mode report is compared against the full search by verdict
//! projection instead (states counts legitimately differ).

use proptest::prelude::*;

use secflow::analyze::{deadlock_analysis, deadlock_analysis_threads};
use secflow::runtime::{explore_with, pexplore_with, ExploreLimits, ExploreReport};
use secflow::workload::{dining_philosophers, generate, indep, GenConfig};

/// Roomy enough that no generated program ever hits a limit.
/// Persistent sets only — the mode both engines implement identically.
const LIMITS: ExploreLimits = ExploreLimits {
    max_states: 500_000,
    max_depth: 20_000,
    por: true,
    sleep_sets: false,
};

/// The same limits with the reduction off: the ground-truth full search.
const FULL: ExploreLimits = ExploreLimits {
    por: false,
    sleep_sets: false,
    ..LIMITS
};

/// The same limits in the sequential default mode (sleep sets on).
const SLEEPY: ExploreLimits = ExploreLimits {
    sleep_sets: true,
    ..LIMITS
};

/// Asserts the POR-mode-invariant projection of two reports is equal:
/// everything except the visit statistics. `faults` is projected to
/// reachability — the reduction executes each faulting action at least
/// once but not once per interleaving, so the exact count is
/// schedule-set dependent.
fn assert_same_verdicts(a: &ExploreReport, b: &ExploreReport, ctx: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{ctx}: outcome sets differ");
    assert_eq!(
        a.deadlock_witnesses, b.deadlock_witnesses,
        "{ctx}: witness sets differ"
    );
    assert_eq!(a.deadlocks, b.deadlocks, "{ctx}: deadlock counts differ");
    assert_eq!(a.faults > 0, b.faults > 0, "{ctx}: fault verdicts differ");
    assert_eq!(a.truncated, b.truncated, "{ctx}: truncation differs");
}

fn explore_both(
    program: &secflow::lang::Program,
    threads: usize,
) -> (ExploreReport, ExploreReport) {
    let seq = explore_with(program, &[], LIMITS, &|| false);
    let par = pexplore_with(program, &[], LIMITS, threads, &|| false);
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full report is identical at every thread count (matched
    /// persistent-only mode).
    #[test]
    fn parallel_explore_matches_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 30, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        for threads in [1usize, 2, 4] {
            let (seq, par) = explore_both(&p, threads);
            prop_assert!(!seq.truncated, "limits bound on seed {seed}");
            prop_assert_eq!(&par, &seq, "threads = {}", threads);
        }
    }

    /// The reduced searches (persistent sets alone, and with sleep sets
    /// stacked on top) reach exactly the verdicts of the full search.
    #[test]
    fn por_preserves_verdicts_of_the_full_search(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 30, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let full = explore_with(&p, &[], FULL, &|| false);
        // A handful of generated programs exceed the state cap without
        // the reduction; the verdict comparison is only meaningful on
        // complete searches, so skip those seeds.
        if full.truncated {
            return Ok(());
        }
        let persistent = explore_with(&p, &[], LIMITS, &|| false);
        let sleepy = explore_with(&p, &[], SLEEPY, &|| false);
        let parallel = pexplore_with(&p, &[], LIMITS, 2, &|| false);
        for (name, reduced) in [
            ("persistent", &persistent),
            ("sleepy", &sleepy),
            ("parallel", &parallel),
        ] {
            assert_same_verdicts(reduced, &full, &format!("seed {seed}, {name}"));
            prop_assert!(
                reduced.states <= full.states,
                "{}: reduction expanded more states ({} > {})",
                name, reduced.states, full.states
            );
        }
    }

    /// Deadlock-prone generations: witness sets (sorted, distinct
    /// stores) agree, not just counts.
    #[test]
    fn parallel_witnesses_match_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig {
            target_stmts: 20,
            n_sems: 3,
            ..GenConfig::default()
        };
        let p = generate(&cfg, seed);
        let (seq, par) = explore_both(&p, 4);
        prop_assert_eq!(&par.deadlock_witnesses, &seq.deadlock_witnesses);
        prop_assert_eq!(par.deadlocks, seq.deadlocks);
        prop_assert_eq!(par.states, seq.states);
        prop_assert_eq!(par.faults, seq.faults);
    }

    /// The abstract deadlock analysis (input-free, all paths) agrees
    /// with its parallel version on verdict, blocked sites and states.
    #[test]
    fn parallel_deadlock_analysis_matches_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 25, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let seq = deadlock_analysis(&p, 200_000);
        for threads in [2usize, 4] {
            let par = deadlock_analysis_threads(&p, 200_000, threads, &|| false);
            prop_assert_eq!(par.may_deadlock, seq.may_deadlock);
            prop_assert_eq!(par.truncated, seq.truncated);
            prop_assert_eq!(&par.blocked_waits, &seq.blocked_waits);
            prop_assert_eq!(par.states, seq.states);
        }
    }
}

/// A fixed adversarial workload on top of the generated ones: unordered
/// dining philosophers can deadlock, and every thread count must find
/// the same witnesses.
#[test]
fn philosophers_report_is_thread_count_independent() {
    let p = dining_philosophers(3, 1, false);
    let seq = explore_with(&p, &[], LIMITS, &|| false);
    assert!(!seq.truncated);
    assert!(seq.deadlocks > 0, "unordered philosophers must deadlock");
    for threads in [2usize, 4, 8] {
        let par = pexplore_with(&p, &[], LIMITS, threads, &|| false);
        assert_eq!(par, seq, "threads = {threads}");
    }
}

/// The acceptance pin: on ordered dining philosophers the reduction
/// visits ≥ 10x fewer states than the full search with an identical
/// verdict, and on deadlocking philosophers it preserves every deadlock
/// witness.
#[test]
fn philosophers_por_reduces_10x_with_identical_verdicts() {
    let p = dining_philosophers(4, 3, true);
    let full = explore_with(&p, &[], FULL, &|| false);
    let reduced = explore_with(&p, &[], SLEEPY, &|| false);
    assert!(!full.truncated && !reduced.truncated);
    assert_same_verdicts(&reduced, &full, "philosophers(4, 3, ordered)");
    assert_eq!(full.deadlocks, 0, "ordered philosophers are deadlock-free");
    assert!(
        reduced.states * 10 <= full.states,
        "POR must reduce ≥ 10x here: {} vs {}",
        reduced.states,
        full.states
    );
    assert!(reduced.states_pruned > 0);
    assert_eq!(full.states_pruned, 0);

    let risky = dining_philosophers(3, 1, false);
    let full = explore_with(&risky, &[], FULL, &|| false);
    let reduced = explore_with(&risky, &[], SLEEPY, &|| false);
    assert!(full.deadlocks > 0);
    assert_same_verdicts(&reduced, &full, "philosophers(3, 1, unordered)");
}

/// The ignoring-problem regression (cycle proviso): a state-preserving
/// live loop beside a faulting sibling. Without the proviso the
/// reducer picks the lower-id loop as its singleton at every state of
/// the cycle, so the sibling's fault is never attempted — POR reported
/// `faults: 0` against the full search's 3. Every reduced mode and
/// every thread count must agree with the full search's fault verdict.
#[test]
fn live_loop_cannot_starve_a_sibling_fault() {
    let p =
        secflow::lang::parse("var y, z : integer; cobegin while 1 = 1 do skip || y := z / 0 coend")
            .unwrap();
    let full = explore_with(&p, &[], FULL, &|| false);
    assert!(full.faults > 0, "the fault is reachable in the full graph");
    assert!(!full.truncated);
    let persistent = explore_with(&p, &[], LIMITS, &|| false);
    let sleepy = explore_with(&p, &[], SLEEPY, &|| false);
    assert_same_verdicts(&persistent, &full, "persistent");
    assert_same_verdicts(&sleepy, &full, "sleepy");
    for threads in [1usize, 2, 4] {
        let par = pexplore_with(&p, &[], LIMITS, threads, &|| false);
        assert_same_verdicts(&par, &full, &format!("parallel x{threads}"));
        assert_eq!(par, persistent, "engines diverged at {threads} threads");
    }
}

/// The `indep` family is the reduction's best case: one persistent
/// singleton per state collapses the interleaving lattice to a line.
#[test]
fn indep_family_collapses_under_por_across_engines() {
    let p = indep(4, 4);
    let full = explore_with(&p, &[], FULL, &|| false);
    let reduced = explore_with(&p, &[], SLEEPY, &|| false);
    assert!(!full.truncated);
    assert_same_verdicts(&reduced, &full, "indep(4, 4)");
    assert_eq!(full.outcomes.len(), 1);
    assert!(
        reduced.states * 10 <= full.states,
        "{} vs {}",
        reduced.states,
        full.states
    );
    for threads in [2usize, 4] {
        let par = pexplore_with(&p, &[], LIMITS, threads, &|| false);
        let seq = explore_with(&p, &[], LIMITS, &|| false);
        assert_eq!(par, seq, "threads = {threads}");
        assert!(par.states_pruned > 0);
    }
}
