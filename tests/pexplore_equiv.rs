//! Differential testing of the parallel explorer: for generated
//! programs, [`pexplore`](secflow::runtime::pexplore) at 1, 2 and 4
//! threads must agree with the sequential explorer on every
//! schedule-independent field — reachable-state count, outcome set,
//! deadlock count and witness set, fault count.
//!
//! The generator's default `bounded_loops: true` keeps every program
//! terminating under every schedule, and the limits below never bind,
//! so neither search truncates; dedup-on-push (parallel) and
//! dedup-on-pop (sequential) then visit exactly the same reachable set
//! and the commutative merge makes the parallel report deterministic.

use proptest::prelude::*;

use secflow::analyze::{deadlock_analysis, deadlock_analysis_threads};
use secflow::runtime::{explore_with, pexplore_with, ExploreLimits, ExploreReport};
use secflow::workload::{dining_philosophers, generate, GenConfig};

/// Roomy enough that no generated program ever hits a limit.
const LIMITS: ExploreLimits = ExploreLimits {
    max_states: 500_000,
    max_depth: 20_000,
};

fn explore_both(
    program: &secflow::lang::Program,
    threads: usize,
) -> (ExploreReport, ExploreReport) {
    let seq = explore_with(program, &[], LIMITS, &|| false);
    let par = pexplore_with(program, &[], LIMITS, threads, &|| false);
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full report is identical at every thread count.
    #[test]
    fn parallel_explore_matches_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 30, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        for threads in [1usize, 2, 4] {
            let (seq, par) = explore_both(&p, threads);
            prop_assert!(!seq.truncated, "limits bound on seed {seed}");
            prop_assert_eq!(&par, &seq, "threads = {}", threads);
        }
    }

    /// Deadlock-prone generations: witness sets (sorted, distinct
    /// stores) agree, not just counts.
    #[test]
    fn parallel_witnesses_match_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig {
            target_stmts: 20,
            n_sems: 3,
            ..GenConfig::default()
        };
        let p = generate(&cfg, seed);
        let (seq, par) = explore_both(&p, 4);
        prop_assert_eq!(&par.deadlock_witnesses, &seq.deadlock_witnesses);
        prop_assert_eq!(par.deadlocks, seq.deadlocks);
        prop_assert_eq!(par.states, seq.states);
        prop_assert_eq!(par.faults, seq.faults);
    }

    /// The abstract deadlock analysis (input-free, all paths) agrees
    /// with its parallel version on verdict, blocked sites and states.
    #[test]
    fn parallel_deadlock_analysis_matches_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 25, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let seq = deadlock_analysis(&p, 200_000);
        for threads in [2usize, 4] {
            let par = deadlock_analysis_threads(&p, 200_000, threads, &|| false);
            prop_assert_eq!(par.may_deadlock, seq.may_deadlock);
            prop_assert_eq!(par.truncated, seq.truncated);
            prop_assert_eq!(&par.blocked_waits, &seq.blocked_waits);
            prop_assert_eq!(par.states, seq.states);
        }
    }
}

/// A fixed adversarial workload on top of the generated ones: unordered
/// dining philosophers can deadlock, and every thread count must find
/// the same witnesses.
#[test]
fn philosophers_report_is_thread_count_independent() {
    let p = dining_philosophers(3, 1, false);
    let seq = explore_with(&p, &[], LIMITS, &|| false);
    assert!(!seq.truncated);
    assert!(seq.deadlocks > 0, "unordered philosophers must deadlock");
    for threads in [2usize, 4, 8] {
        let par = pexplore_with(&p, &[], LIMITS, threads, &|| false);
        assert_eq!(par, seq, "threads = {threads}");
    }
}
