//! End-to-end certificate round trip, the PR's acceptance property:
//! one `certify` with `with_proof:true` produces a wire certificate
//! that BOTH the server's `checkproof` op and the offline validator
//! accept without ever re-running Theorem 1 certification — witnessed
//! by the `cert.proofs_emitted` counter staying put across every
//! validation — and that every mutation of is rejected with a
//! structured stage error on both paths.

use std::sync::atomic::Ordering::Relaxed;

use secflow::cert::validate_certificate;
use secflow::server::{Json, Limits, Service};

const CLEAN: &str = "var x, y : integer;
    cobegin y := x || x := 1 coend";

fn svc() -> Service {
    Service::new(64, Limits::default())
}

fn certify_with_proof(s: &Service, source: &str, lattice: &str) -> Json {
    let req = format!(
        r#"{{"op":"certify","source":{},"lattice":{},"with_proof":true}}"#,
        Json::Str(source.to_string()),
        Json::Str(lattice.to_string())
    );
    Json::parse(&s.handle_line(&req)).unwrap()
}

fn checkproof(s: &Service, source: &str, cert: &str) -> Json {
    let req = format!(
        r#"{{"op":"checkproof","source":{},"cert":{}}}"#,
        Json::Str(source.to_string()),
        Json::Str(cert.to_string())
    );
    Json::parse(&s.handle_line(&req)).unwrap()
}

fn cert_stat(s: &Service, field: &str) -> u64 {
    let stats = Json::parse(&s.handle_line(r#"{"op":"stats"}"#)).unwrap();
    stats
        .get("cert")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats.cert.{field} missing"))
}

#[test]
fn one_proof_many_validations_zero_reproving() {
    let s = svc();
    let reply = certify_with_proof(&s, CLEAN, "two");
    assert_eq!(reply.get("certified").and_then(Json::as_bool), Some(true));
    let cert = reply
        .get("certificate")
        .and_then(Json::as_str)
        .expect("reply carries the certificate")
        .to_string();
    let digest = reply.get("proof_digest").and_then(Json::as_str).unwrap();
    assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);

    // Server-side validation: accepted, and the prover never ran again.
    let verdict = checkproof(&s, CLEAN, &cert);
    assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(verdict.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(
        verdict.get("proof_digest").and_then(Json::as_str),
        Some(digest)
    );
    assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1, "no re-proving");

    // Offline validation of the same bytes: the standalone validator
    // agrees, with no server (and no prover) in the loop.
    let summary = validate_certificate(CLEAN, &cert).expect("offline validator accepts");
    assert_eq!(summary.digest, digest);
    assert_eq!(summary.lattice, "two");
    assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);

    // Repeat validations are digest-addressed cache hits; the fresh
    // verdict counter stays at one.
    checkproof(&s, CLEAN, &cert);
    checkproof(&s, CLEAN, &cert);
    assert_eq!(cert_stat(&s, "proofs_emitted"), 1);
    assert_eq!(cert_stat(&s, "checkproof_valid"), 1);
    assert_eq!(cert_stat(&s, "cache_hits_by_digest"), 2);
    assert_eq!(cert_stat(&s, "checkproof_requests"), 3);
    assert!(cert_stat(&s, "proof_bytes_total") >= cert.len() as u64);
}

#[test]
fn every_single_byte_mutation_is_rejected_by_both_validators() {
    let s = svc();
    let reply = certify_with_proof(&s, CLEAN, "two");
    let cert = reply.get("certificate").and_then(Json::as_str).unwrap();

    // Flip each byte of the body (everything before the digest field) at
    // a stride, server-side and offline: all rejected, all structured.
    let body_end = cert.rfind(",\"digest\"").expect("digest field present");
    for pos in (0..body_end).step_by(37) {
        let mut bytes = cert.as_bytes().to_vec();
        bytes[pos] ^= 0x02;
        let Ok(mutated) = String::from_utf8(bytes) else {
            continue;
        };
        if mutated == cert {
            continue;
        }
        let offline = validate_certificate(CLEAN, &mutated)
            .expect_err("offline validator rejects the mutation");
        assert!(!offline.stage.is_empty(), "structured stage at byte {pos}");
        let verdict = checkproof(&s, CLEAN, &mutated);
        assert_eq!(verdict.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            verdict.get("valid").and_then(Json::as_bool),
            Some(false),
            "server rejects the mutation at byte {pos}"
        );
        let stage = verdict
            .get("reason")
            .and_then(|r| r.get("stage"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(stage, offline.stage, "both validators agree at byte {pos}");
    }
    // None of those rejections ever invoked the prover.
    assert_eq!(s.metrics.proofs_emitted.load(Relaxed), 1);
}

#[test]
fn linear_lattice_certificates_round_trip_end_to_end() {
    let s = svc();
    let reply = certify_with_proof(&s, CLEAN, "linear:4");
    let cert = reply.get("certificate").and_then(Json::as_str).unwrap();
    let verdict = checkproof(&s, CLEAN, cert);
    assert_eq!(verdict.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(
        verdict.get("lattice").and_then(Json::as_str),
        Some("linear:4")
    );
    let summary = validate_certificate(CLEAN, cert).unwrap();
    assert_eq!(summary.lattice, "linear:4");

    // A two-point certificate for the same program is a different
    // object with a different digest — lattices do not alias.
    let two = certify_with_proof(&s, CLEAN, "two");
    assert_ne!(
        two.get("proof_digest").and_then(Json::as_str),
        reply.get("proof_digest").and_then(Json::as_str)
    );
}
