//! Chaos soak: 64 concurrent retrying clients against a server running
//! a seeded fault-injection plan (worker panics, IO errors, short IO,
//! injected latency, dropped connections). Asserts:
//!
//! - **liveness** — every client converges to an answer; no hangs;
//! - **convergence** — every answer matches a fault-free run of the
//!   same request (faults can delay an answer, never corrupt it);
//! - **supervision** — injected worker panics were survived and the
//!   workers respawned, visible in the `stats` pool health.
//!
//! The plan's fault fuse (`max_faults`) bounds total injected faults,
//! so each client's retry budget provably covers the worst case and the
//! soak terminates deterministically.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use secflow::lang::print_program;
use secflow::server::{
    serve_tcp, FaultPlan, Json, Limits, Op, RemoteClient, Request, RetryPolicy, ServerConfig,
    Service,
};
use secflow::workload::sequential_chain;

fn chain_source(size: usize) -> String {
    print_program(&sequential_chain(size, 8))
}

fn pool_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("pool")
        .and_then(|p| p.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing pool.{field}: {stats}"))
}

#[test]
fn chaos_soak_64_clients_converge_with_fault_free_run() {
    let mut plan = FaultPlan::new(42);
    plan.panic_per_mille = 1000;
    plan.io_error_per_mille = 60;
    plan.short_io_per_mille = 60;
    plan.latency_per_mille = 150;
    plan.latency_ms = 2;
    plan.drop_connects = 3;
    plan.max_faults = 120;
    let cfg = ServerConfig {
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 1024,
        chaos: Some(Arc::new(plan)),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    // Worst case: every one of the <= 120 fused faults plus the 3
    // connection drops lands on a single client, each costing one
    // attempt. A budget of 150 therefore guarantees convergence.
    let barrier = Arc::new(Barrier::new(64));
    let mut joins = Vec::new();
    for i in 0..64u64 {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            // Distinct program per client so nothing rides the cache.
            let req = Request::new(Op::Certify, chain_source(20 + i as usize));
            let mut client = RemoteClient::new(
                &addr,
                RetryPolicy {
                    budget: 150,
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(20),
                    io_timeout: Some(Duration::from_secs(10)),
                    seed: i,
                },
            );
            barrier.wait();
            let response = client.call(&req).expect("client converges despite chaos");
            (i, response)
        }));
    }

    // The fault-free reference: identical service logic, no chaos.
    let reference = Service::new(0, Limits::default());
    for join in joins {
        let (i, response) = join.join().expect("client thread");
        let v = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "client {i}: {v}"
        );
        let req = Request::new(Op::Certify, chain_source(20 + i as usize));
        let expected = Json::parse(&reference.execute(&req)).unwrap();
        // `cached` may legitimately differ (a retry can hit the result
        // a lost first answer left behind); the verdict must not.
        assert_eq!(
            v.get("certified"),
            expected.get("certified"),
            "client {i} diverged from the fault-free run: {v} vs {expected}"
        );
        assert_eq!(
            v.get("statements"),
            expected.get("statements"),
            "client {i} diverged from the fault-free run: {v} vs {expected}"
        );
    }

    // Supervision is visible in stats. The supervisor respawns workers
    // on its own clock, so poll briefly for the restart counter.
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let deadline = Instant::now() + Duration::from_secs(5);
    let stats = loop {
        writeln!(writer, r#"{{"op":"stats"}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let stats = Json::parse(line.trim()).unwrap();
        if pool_stat(&stats, "panics") >= 1 && pool_stat(&stats, "restarts") >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor never reported a panic + restart: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        pool_stat(&stats, "workers"),
        4,
        "the pool is back to full strength: {stats}"
    );

    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
    server.join().expect("server thread");
}
