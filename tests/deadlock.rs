//! Experiment E9: the paper's deadlock remarks, verified exhaustively.
//!
//! §2.2: "Although it is possible for the above program to deadlock (it
//! will if x is not equal to zero), global flows in parallel programs
//! arise not from the possibility of deadlock, but from the
//! synchronization of independent computations. There are programs that
//! cannot deadlock yet transmit information through process
//! synchronization."

use secflow::cfm::{certify, StaticBinding};
use secflow::lang::parse;
use secflow::lattice::{TwoPoint, TwoPointScheme};
use secflow::runtime::{can_deadlock, check_binary_secret, explore, ExploreLimits};
use secflow::workload::fig3_program;

fn lim() -> ExploreLimits {
    ExploreLimits::default()
}

#[test]
fn the_2_2_example_deadlocks_exactly_when_x_is_nonzero() {
    let p = parse(
        "var x, y : integer; sem : semaphore;
         cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
    )
    .unwrap();
    assert!(!can_deadlock(&p, &[(p.var("x"), 0)], lim()));
    for x in [1, -1, 42] {
        assert!(can_deadlock(&p, &[(p.var("x"), x)], lim()), "x={x}");
    }
}

#[test]
fn fig3_cannot_deadlock_yet_transmits() {
    // The paper's exact point: deadlock-freedom does not mean flow-freedom.
    let p = fig3_program();
    for x in [0, 1] {
        assert!(!can_deadlock(&p, &[(p.var("x"), x)], lim()), "x={x}");
    }
    let ni = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
    assert!(ni.interferes);
}

#[test]
fn deadlock_freedom_is_not_assumed_by_cfm() {
    // CFM rejects the 2.2 example for its flows whether or not the
    // schedule deadlocks — certification is schedule-independent.
    let p = parse(
        "var x, y : integer; sem : semaphore;
         cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
    )
    .unwrap();
    let sbind =
        StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("x"), TwoPoint::High);
    assert!(!certify(&p, &sbind).certified());
}

#[test]
fn classic_two_lock_deadlock_is_found() {
    // An ordering deadlock unrelated to information flow, to exercise the
    // explorer: two processes take two semaphores in opposite orders.
    let p = parse(
        "var a, b : semaphore initially(1);
         cobegin
           begin wait(a); wait(b); signal(b); signal(a) end
         ||
           begin wait(b); wait(a); signal(a); signal(b) end
         coend",
    )
    .unwrap();
    let r = explore(&p, &[], lim());
    assert!(r.deadlocks > 0, "the AB/BA deadlock must be reachable");
    assert!(!r.outcomes.is_empty(), "and so must clean completion");
}

#[test]
fn semaphore_initial_counts_gate_deadlock() {
    let src = |init: u32| {
        format!(
            "var s : semaphore initially({init}); x : integer;
             cobegin begin wait(s); x := 1 end || begin wait(s); x := 2 end coend"
        )
    };
    let p2 = parse(&src(2)).unwrap();
    assert!(!can_deadlock(&p2, &[], lim()));
    let p1 = parse(&src(1)).unwrap();
    assert!(can_deadlock(&p1, &[], lim()), "one token, two waiters");
}
