//! Experiments E5/E6: Theorems 1 and 2, property-tested over random
//! programs, bindings and lattices.
//!
//! - **Theorem 1** (consistency): `cert(S)` ⟹ the constructive prover
//!   yields a proof that the independent checker accepts, that is
//!   completely invariant (Definition 7), and that satisfies the
//!   Appendix Lemma bounds.
//! - **Theorem 2** (contrapositive): ¬`cert(S)` ⟹ the canonical
//!   completely-invariant candidate fails the checker (if it passed, a
//!   completely invariant proof would exist, contradicting Theorem 2).
//!
//! Together these give `cert(S) ⟺ checker accepts the candidate` across
//! the whole random corpus.

use proptest::prelude::*;

use secflow::cfm::{certify, mod_flow, StaticBinding};
use secflow::lattice::{Extended, Lattice, LinearScheme, TwoPoint, TwoPointScheme};
use secflow::logic::{
    build_proof, check_lemma, check_proof, is_completely_invariant, policy_assertion, prove,
    ProveError,
};
use secflow::workload::{generate, random_binding, GenConfig};

fn gen_cfg(target: usize, sems: usize) -> GenConfig {
    GenConfig {
        target_stmts: target,
        max_depth: 5,
        n_vars: 4,
        n_sems: sems,
        bounded_loops: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// cert(S) ⟺ the Theorem-1 candidate proof checks (two-point lattice).
    #[test]
    fn cert_iff_candidate_checks_two_point(seed in 0u64..10_000, bseed in 0u64..10_000) {
        let program = generate(&gen_cfg(30, 2), seed);
        let sbind = random_binding(&program, &TwoPointScheme, bseed);
        let certified = certify(&program, &sbind).certified();
        let candidate = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
        let checks = check_proof(&program.body, &candidate).is_ok();
        prop_assert_eq!(certified, checks, "divergence for seed {} / {}", seed, bseed);
    }

    /// Same equivalence over a 4-level linear lattice.
    #[test]
    fn cert_iff_candidate_checks_linear(seed in 0u64..10_000, bseed in 0u64..10_000) {
        let scheme = LinearScheme::new(4).unwrap();
        let program = generate(&gen_cfg(25, 2), seed);
        let sbind = random_binding(&program, &scheme, bseed);
        let certified = certify(&program, &sbind).certified();
        let candidate = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
        let checks = check_proof(&program.body, &candidate).is_ok();
        prop_assert_eq!(certified, checks);
    }

    /// Theorem 1's full conclusion: the proof is completely invariant and
    /// its post bound is g ⊕ l ⊕ flow(S).
    #[test]
    fn theorem1_full_conclusion(seed in 0u64..10_000, bseed in 0u64..10_000) {
        let program = generate(&gen_cfg(25, 2), seed);
        let sbind = random_binding(&program, &TwoPointScheme, bseed);
        match prove(&program, &sbind, Extended::Nil, Extended::Nil) {
            Ok(proof) => {
                let i = policy_assertion(&program, &sbind);
                prop_assert!(is_completely_invariant(&proof, &i).unwrap());
                // Post global bound = flow(S) when l = g = nil.
                let (_, flow) = mod_flow(&program.body, &sbind);
                let g_post = proof
                    .post
                    .global
                    .as_ref()
                    .and_then(|e| e.eval_lit())
                    .unwrap();
                prop_assert!(g_post.leq(&flow) && flow.leq(&g_post));
            }
            Err(ProveError::NotCertified { .. }) => {
                prop_assert!(!certify(&program, &sbind).certified());
            }
            Err(other) => prop_assert!(false, "unexpected: {}", other),
        }
    }

    /// The Appendix Lemma holds along every constructed proof.
    #[test]
    fn lemma_holds_on_every_constructed_proof(seed in 0u64..10_000, bseed in 0u64..10_000) {
        let program = generate(&gen_cfg(25, 2), seed);
        let sbind = random_binding(&program, &TwoPointScheme, bseed);
        if let Ok(proof) = prove(&program, &sbind, Extended::Nil, Extended::Nil) {
            prop_assert!(check_lemma(&program.body, &proof, &sbind).is_ok());
        }
    }

    /// Theorem 1 for arbitrary valid (l, g) bounds, not just (nil, nil).
    #[test]
    fn theorem1_with_nontrivial_bounds(seed in 0u64..10_000) {
        let program = generate(&gen_cfg(20, 1), seed);
        // All-High binding always certifies over TwoPoint? No — but an
        // all-equal binding does: every check compares like with like.
        let sbind = StaticBinding::constant(
            &program.symbols,
            &TwoPointScheme,
            TwoPoint::High,
        );
        prop_assert!(certify(&program, &sbind).certified());
        for (l, g) in [
            (Extended::Nil, Extended::Elem(TwoPoint::Low)),
            (Extended::Elem(TwoPoint::Low), Extended::Nil),
            (Extended::Elem(TwoPoint::High), Extended::Elem(TwoPoint::High)),
        ] {
            let proof = prove(&program, &sbind, l, g).unwrap();
            prop_assert!(check_proof(&program.body, &proof).is_ok());
        }
    }

    /// Inference always produces a certifying binding or a genuine
    /// obstruction.
    #[test]
    fn inference_is_sound(seed in 0u64..10_000) {
        let program = generate(&gen_cfg(30, 2), seed);
        let first = program.symbols.iter().next().unwrap().0;
        match secflow::cfm::infer_binding(
            &program,
            &TwoPointScheme,
            [(first, TwoPoint::High)],
        ) {
            Ok(binding) => prop_assert!(certify(&program, &binding).certified()),
            Err(unsat) => {
                // The obstruction must name the pinned variable.
                prop_assert_eq!(unsat.var, first);
            }
        }
    }
}

#[test]
fn uniform_low_binding_certifies_everything_generated() {
    // With every variable at the same class, all Figure 2 checks compare
    // equal classes, so certification always succeeds; and Theorem 1 then
    // promises a proof for each.
    for seed in 0..40 {
        let program = generate(&gen_cfg(35, 2), seed);
        let sbind = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        assert!(certify(&program, &sbind).certified(), "seed {seed}");
        let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_proof(&program.body, &proof).unwrap();
    }
}

#[test]
fn rejected_programs_never_have_checking_candidates() {
    // A deterministic sweep of the Theorem 2 contrapositive with a
    // binding guaranteed to violate something whenever possible.
    let mut rejected = 0;
    for seed in 0..60 {
        let program = generate(&gen_cfg(30, 2), seed);
        // First variable High, everything else Low: most programs leak.
        let first = program.symbols.iter().next().unwrap().0;
        let sbind =
            StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(first, TwoPoint::High);
        if !certify(&program, &sbind).certified() {
            rejected += 1;
            let candidate = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
            assert!(
                check_proof(&program.body, &candidate).is_err(),
                "seed {seed}: invalid certification would slip through"
            );
        }
    }
    assert!(
        rejected >= 10,
        "corpus too tame: only {rejected} rejections"
    );
}
