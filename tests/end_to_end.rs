//! Cross-crate pipeline properties: parse → print → reparse stability,
//! analysis invariance under printing, policy layer round-trips, and the
//! linearity of the check count (the cheap proxy for E7 validated in the
//! test-suite; wall-clock linearity is the `linear_time` bench).

use proptest::prelude::*;

use secflow::cfm::{certify, denning_certify, Policy, StaticBinding};
use secflow::lang::{metrics::measure, parse, print_program};
use secflow::lattice::{TwoPoint, TwoPointScheme};
use secflow::workload::{generate, random_binding, sequential_chain, sync_heavy, GenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing then reparsing preserves program structure.
    #[test]
    fn print_parse_is_stable(seed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 50, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let text = print_program(&p);
        let q = parse(&text).unwrap();
        prop_assert_eq!(print_program(&q), text);
        prop_assert_eq!(p.statement_count(), q.statement_count());
        let (mp, mq) = (measure(&p), measure(&q));
        prop_assert_eq!(mp.expr_nodes, mq.expr_nodes);
        prop_assert_eq!(mp.waits, mq.waits);
    }

    /// Certification verdicts survive the print/parse round trip.
    #[test]
    fn analysis_is_representation_independent(seed in 0u64..100_000, bseed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 40, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let q = parse(&print_program(&p)).unwrap();
        // Bindings are positional: the printer preserves declaration
        // order, so the same binding applies to both.
        let bp = random_binding(&p, &TwoPointScheme, bseed);
        let bq = random_binding(&q, &TwoPointScheme, bseed);
        prop_assert_eq!(
            certify(&p, &bp).certified(),
            certify(&q, &bq).certified()
        );
        prop_assert_eq!(
            denning_certify(&p, &bp).certified(),
            denning_certify(&q, &bq).certified()
        );
    }

    /// The linear prefix-join composition check is equivalent to the
    /// literal quadratic Figure 2 transcription.
    #[test]
    fn linear_and_quadratic_cfm_agree(seed in 0u64..100_000, bseed in 0u64..100_000) {
        use secflow::cfm::certify_quadratic;
        let cfg = GenConfig { target_stmts: 40, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let b = random_binding(&p, &TwoPointScheme, bseed);
        prop_assert_eq!(certify(&p, &b).certified(), certify_quadratic(&p, &b));
    }

    /// CFM is at least as strict as the baseline, always.
    #[test]
    fn cfm_is_stricter_than_the_baseline(seed in 0u64..100_000, bseed in 0u64..100_000) {
        let cfg = GenConfig { target_stmts: 40, ..GenConfig::default() };
        let p = generate(&cfg, seed);
        let b = random_binding(&p, &TwoPointScheme, bseed);
        if certify(&p, &b).certified() {
            prop_assert!(denning_certify(&p, &b).certified());
        }
    }
}

#[test]
fn check_count_grows_linearly_with_program_length() {
    // cert(S) evaluates O(1) checks per statement: the measured check
    // count per statement must be flat as programs double.
    let mut per_stmt = Vec::new();
    for k in [128usize, 256, 512, 1024, 2048] {
        let p = sequential_chain(k, 8);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        let r = certify(&p, &b);
        per_stmt.push(r.checks as f64 / p.statement_count() as f64);
    }
    let (min, max) = per_stmt
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(
        max / min < 1.05,
        "checks per statement not flat: {per_stmt:?}"
    );
}

#[test]
fn sync_heavy_check_count_is_linear_too() {
    let mut per_stmt = Vec::new();
    for k in [64usize, 128, 256, 512] {
        let p = sync_heavy(k);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        let r = certify(&p, &b);
        per_stmt.push(r.checks as f64 / p.statement_count() as f64);
    }
    let (min, max) = per_stmt
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(max / min < 1.05, "not flat: {per_stmt:?}");
}

#[test]
fn policy_layer_round_trip() {
    let p = parse(
        "var intake, scrubbed, published : integer; gate : semaphore;
         begin
           scrubbed := intake - intake % 10;
           signal(gate);
           cobegin
             begin wait(gate); published := scrubbed end
           ||
             skip
           coend
         end",
    )
    .unwrap();
    let policy = Policy::new(TwoPointScheme)
        .classify("intake", TwoPoint::High)
        .default_class(TwoPoint::High);
    assert!(policy.check(&p).unwrap().certified());

    let leaky = Policy::new(TwoPointScheme)
        .classify("intake", TwoPoint::High)
        .classify("published", TwoPoint::Low)
        .default_class(TwoPoint::High);
    assert!(!leaky.check(&p).unwrap().certified());
}

#[test]
fn whole_pipeline_smoke() {
    // parse → certify → reject → infer → certify → prove → run.
    use secflow::lattice::Extended;
    use secflow::logic::{check_proof, prove};
    use secflow::runtime::{run, Machine, RoundRobin};

    let src = "var h, a, b : integer; s : semaphore;
               begin
                 if h > 0 then signal(s);
                 cobegin begin wait(s); a := 1 end || b := 2 coend
               end";
    let p = parse(src).unwrap();
    let bad = StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("h"), TwoPoint::High);
    assert!(!certify(&p, &bad).certified());

    let fixed =
        secflow::cfm::infer_binding(&p, &TwoPointScheme, [(p.var("h"), TwoPoint::High)]).unwrap();
    assert!(certify(&p, &fixed).certified());
    assert_eq!(*fixed.class(p.var("b")), TwoPoint::Low, "b is unaffected");

    let proof = prove(&p, &fixed, Extended::Nil, Extended::Nil).unwrap();
    check_proof(&p.body, &proof).unwrap();

    let mut m = Machine::with_inputs(&p, &[(p.var("h"), 5)]);
    assert!(run(&mut m, &mut RoundRobin::new(), 10_000).terminated());
    assert_eq!(m.get(p.var("a")), 1);
    assert_eq!(m.get(p.var("b")), 2);
}
