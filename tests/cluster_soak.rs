//! The cluster soak: a 3-node sharded cluster plus a router, driven
//! differentially against a single-node fault-free oracle.
//!
//! Two stories, mirroring `tests/serve_soak.rs` one level up the
//! topology:
//!
//! - **exactly-once** — every distinct source delivered to every node
//!   *and* the router computes exactly once cluster-wide: the sum of
//!   the nodes' `cache_misses` equals the number of distinct sources,
//!   and the forward/single-flight counters in `stats` prove how;
//! - **chaos convergence** — with nodes SIGKILLed and restarted and
//!   inter-node connections dropped, stalled and erroring under a
//!   seeded fault plan, every reply a client ever receives is
//!   byte-identical (modulo the `us` and `cached` timing fields) with
//!   a fault-free single-node run of the same request.
//!
//! The chaos test runs the real `secflow` binary (SIGKILL needs a
//! process, not a thread) on OS-assigned ports; the exactly-once test
//! is fully in-process on `bind_ephemeral` + `serve_listener`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use secflow::lang::print_program;
use secflow::server::{
    bind_ephemeral, serve_listener, ClientError, ClusterClient, ClusterConfig, ErrorKind, Json,
    Limits, Op, RemoteClient, Request, RetryPolicy, ServerConfig, Service,
};
use secflow::workload::sequential_chain;

const LEAKY: &str = "var x, y : integer; sem : semaphore;
    cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";

fn soak_source(slot: usize) -> String {
    print_program(&sequential_chain(10 + slot, 6))
}

/// Drops `us` (elapsed time) and `cached` (where the answer came from,
/// not what it is) so replies compare byte-for-byte.
fn strip_timing(line: &str) -> String {
    let Ok(Json::Obj(fields)) = Json::parse(line) else {
        panic!("reply is not a JSON object: {line}");
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "us" && k != "cached")
            .collect(),
    )
    .to_string()
}

fn stats_of(addr: &str) -> Json {
    let mut client = RemoteClient::new(addr, RetryPolicy::default());
    let line = client
        .call(&Request::new(Op::Stats, ""))
        .unwrap_or_else(|e| panic!("stats from {addr}: {e:?}"));
    Json::parse(&line).expect("stats parses")
}

fn stat(stats: &Json, field: &str) -> u64 {
    stats
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {field}: {stats}"))
}

fn cluster_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("cluster")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing cluster.{field}: {stats}"))
}

fn shutdown(addr: &str) {
    let stream = TcpStream::connect(addr).expect("shutdown connect");
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
}

/// Every distinct source, delivered redundantly to every node and the
/// router, computes exactly once cluster-wide. The proof is in the
/// counters: misses (= computations) sum to the distinct-source count,
/// forwards carried the rest, and the explored state total across the
/// whole cluster equals one fault-free run's.
#[test]
fn three_node_cluster_computes_each_distinct_source_exactly_once() {
    let listeners: Vec<_> = (0..3).map(|_| bind_ephemeral().unwrap()).collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut servers = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let mut cluster = ClusterConfig::new(&addrs);
        cluster.self_addr = Some(addrs[i].clone());
        let cfg = ServerConfig {
            workers: 2,
            cache_capacity: 1024,
            cluster: Some(cluster),
            ..ServerConfig::default()
        };
        servers.push(serve_listener(listener, cfg).unwrap());
    }
    let listener = bind_ephemeral().unwrap();
    let router_addr = listener.local_addr().unwrap().to_string();
    let router_cfg = ServerConfig {
        workers: 2,
        cache_capacity: 1024,
        cluster: Some(ClusterConfig::new(&addrs)),
        ..ServerConfig::default()
    };
    let router = serve_listener(listener, router_cfg).unwrap();

    // The single-node fault-free oracle.
    let reference = Service::new(1024, Limits::default());
    let policy = RetryPolicy::default();

    let k = 24usize;
    for slot in 0..k {
        let req = Request::new(Op::Certify, soak_source(slot));
        reference.note_request();
        let expected = strip_timing(&reference.execute(&req));
        // Four redundant deliveries: each node directly, then the
        // router; then client-side routing straight to the owner.
        for target in addrs.iter().chain(std::iter::once(&router_addr)) {
            let reply = RemoteClient::new(target, policy)
                .call(&req)
                .expect("node replies");
            assert_eq!(strip_timing(&reply), expected, "slot {slot} via {target}");
        }
        let reply = ClusterClient::new(&addrs, policy)
            .call(&req)
            .expect("cluster client replies");
        assert_eq!(
            strip_timing(&reply),
            expected,
            "slot {slot} via ring client"
        );
    }

    // One expensive exploration, delivered everywhere: the state space
    // is searched exactly once in the whole cluster.
    let mut explore = Request::new(Op::Explore, LEAKY);
    explore.inputs = vec![("x".to_string(), 1)];
    reference.note_request();
    let expected = strip_timing(&reference.execute(&explore));
    for target in addrs.iter().chain(std::iter::once(&router_addr)) {
        let reply = RemoteClient::new(target, policy)
            .call(&explore)
            .expect("explore replies");
        assert_eq!(strip_timing(&reply), expected, "explore via {target}");
    }

    let node_stats: Vec<Json> = addrs.iter().map(|a| stats_of(a)).collect();
    let misses: u64 = node_stats.iter().map(|s| stat(s, "cache_misses")).sum();
    let forwards: u64 = node_stats.iter().map(|s| cluster_stat(s, "forwards")).sum();
    let forward_hits: u64 = node_stats
        .iter()
        .map(|s| cluster_stat(s, "forward_hits"))
        .sum();
    let states: u64 = node_stats.iter().map(|s| stat(s, "explore_states")).sum();
    assert_eq!(
        misses,
        k as u64 + 1,
        "each distinct request computes exactly once cluster-wide: {node_stats:?}"
    );
    assert_eq!(
        states,
        reference.metrics.explore_states.load(Relaxed),
        "the cluster explored the state space exactly once"
    );
    assert!(forwards > 0, "no request was ever forwarded");
    assert!(
        forward_hits > 0,
        "redundant deliveries never hit a peer's cache through a forward"
    );
    for s in &node_stats {
        assert_eq!(cluster_stat(s, "hash_ring_size"), 3);
    }
    let router_stats = stats_of(&router_addr);
    assert_eq!(
        stat(&router_stats, "cache_misses"),
        0,
        "a healthy router never computes: {router_stats}"
    );
    assert!(cluster_stat(&router_stats, "forwards") > 0);
    eprintln!(
        "exactly-once: {} distinct requests x5 deliveries -> {misses} computations, \
         {forwards} node forwards (+{} router), {forward_hits} forward hits, \
         {states} states explored (oracle: {})",
        k + 1,
        cluster_stat(&router_stats, "forwards"),
        reference.metrics.explore_states.load(Relaxed),
    );

    shutdown(&router_addr);
    router.join().expect("router thread");
    for (addr, server) in addrs.iter().zip(servers) {
        shutdown(addr);
        server.join().expect("node thread");
    }
}

/// Hinted handoff end-to-end, in-process: a 2-node rf=2 cluster where
/// the replica arrives *late*. Writes served while it is down queue as
/// hints; once it binds its reserved identity, the primary's failure
/// detector flips it UP, the backlog drains through the verified
/// `replicate` path, and a `repair` round confirms the digests already
/// converged. Along the way, an over-budget `forward` is refused with
/// the structured `max_hops_exhausted` error (never an inner-shaped
/// reply) over real sockets.
#[test]
fn hinted_handoff_redelivers_to_a_late_replica_and_repair_converges() {
    let addrs = reserve_addrs(2);
    let make_cfg = |i: usize| {
        let mut cluster = ClusterConfig::new(&addrs);
        cluster.self_addr = Some(addrs[i].clone());
        cluster.replication = 2;
        cluster.peer_timeout_ms = 300;
        ServerConfig {
            workers: 2,
            cache_capacity: 256,
            cluster: Some(cluster),
            ..ServerConfig::default()
        }
    };
    // Only node A comes up; B's port stays reserved-but-dead, so every
    // replica push owed to B fails fast (connection refused).
    let server_a =
        serve_listener(std::net::TcpListener::bind(&addrs[0]).unwrap(), make_cfg(0)).unwrap();

    let policy = RetryPolicy::default();
    let k = 6usize;
    let mut replies = Vec::new();
    for slot in 0..k {
        let req = Request::new(Op::Certify, soak_source(slot));
        let reply = RemoteClient::new(&addrs[0], policy)
            .call(&req)
            .expect("the primary serves writes while its replica is down");
        replies.push(strip_timing(&reply));
    }
    let stats = stats_of(&addrs[0]);
    assert_eq!(
        cluster_stat(&stats, "hints_queued"),
        k as u64,
        "every replica push owed to the dead peer queued a hint: {stats}"
    );
    assert_eq!(cluster_stat(&stats, "hints_pending"), k as u64);
    assert_eq!(cluster_stat(&stats, "replicas_sent"), 0);

    // A hop-exhausted forward is a structured refusal, not an answer.
    let mut fwd = Request::new(Op::Forward, "");
    fwd.req = Some(Request::new(Op::Certify, soak_source(0)).to_line());
    fwd.hops = 99;
    match RemoteClient::new(&addrs[0], policy).call(&fwd) {
        Err(ClientError::Permanent { kind, .. }) => {
            assert_eq!(kind, ErrorKind::MaxHopsExhausted)
        }
        other => panic!("expected a max_hops_exhausted refusal, got {other:?}"),
    }

    // B finally arrives at its reserved identity. A's probes flip it
    // UP and the hint backlog drains — no repair needed for these.
    let server_b =
        serve_listener(std::net::TcpListener::bind(&addrs[1]).unwrap(), make_cfg(1)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let s = stats_of(&addrs[0]);
        if cluster_stat(&s, "hints_pending") == 0 && cluster_stat(&s, "hints_delivered") == k as u64
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "hints never drained to the recovered replica: {s}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The drained replica answers the same requests byte-identically
    // from cache — zero recomputation on B.
    for (slot, expected) in replies.iter().enumerate() {
        let req = Request::new(Op::Certify, soak_source(slot));
        let reply = RemoteClient::new(&addrs[1], policy)
            .call(&req)
            .expect("the recovered replica answers");
        assert_eq!(&strip_timing(&reply), expected, "slot {slot} via replica");
    }
    let stats_b = stats_of(&addrs[1]);
    assert_eq!(
        stat(&stats_b, "cache_misses"),
        0,
        "the replica recomputed something it was handed: {stats_b}"
    );

    // Anti-entropy confirms what the handoff already achieved: both
    // shard digests are equal, so repair is a digest-compare no-op.
    let mut repair = Request::new(Op::Repair, "");
    repair.peer = Some(addrs[0].clone());
    let line = RemoteClient::new(&addrs[1], policy)
        .call(&repair)
        .expect("repair runs");
    let v = Json::parse(&line).unwrap();
    assert_eq!(v.get("digest_match").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("installed").and_then(Json::as_u64), Some(0));
    let digest_a = stats_of(&addrs[0])
        .get("cluster")
        .and_then(|c| c.get("shard_digest"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("digest in stats");
    let digest_b = stats_of(&addrs[1])
        .get("cluster")
        .and_then(|c| c.get("shard_digest"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("digest in stats");
    assert_eq!(digest_a, digest_b, "shard digests converged");

    shutdown(&addrs[0]);
    server_a.join().expect("node A thread");
    shutdown(&addrs[1]);
    server_b.join().expect("node B thread");
}

// ---- chaos: subprocess nodes, SIGKILL, seeded fault plans ------------

/// The built CLI binary, found relative to this test executable
/// (`target/debug/deps/cluster_soak-*` → `target/debug/secflow`).
fn secflow_bin() -> Option<PathBuf> {
    let mut p = std::env::current_exe().ok()?;
    p.pop(); // deps/
    p.pop(); // debug/
    let bin = p.join(format!("secflow{}", std::env::consts::EXE_SUFFIX));
    bin.exists().then_some(bin)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secflow-cluster-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Node {
    child: Child,
    addr: String,
    // Held open so the child never blocks on a full stderr pipe; the
    // banner has already been consumed.
    _stderr: BufReader<ChildStderr>,
}

impl Node {
    /// Spawns `secflow <subcmd>` and reads the announced address back
    /// from the banner (ephemeral or explicit, the flow is the same).
    fn spawn(bin: &Path, subcmd: &str, args: &[&str]) -> Node {
        let mut child = Command::new(bin)
            .arg(subcmd)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("node spawns");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            let n = stderr.read_line(&mut line).expect("read banner");
            assert!(n > 0, "node exited before announcing its address");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        };
        Node {
            child,
            addr,
            _stderr: stderr,
        }
    }

    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

/// Reserves three distinct loopback ports the OS just handed out, so
/// the cluster's member list can be fixed *before* any node starts
/// (and a killed node can restart at its old identity).
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<_> = (0..n).map(|_| bind_ephemeral().unwrap()).collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

#[test]
fn cluster_chaos_soak_converges_with_single_node_fault_free_run() {
    let Some(bin) = secflow_bin() else {
        // `cargo test --test cluster_soak` alone does not build the CLI
        // binary; the full workspace test run does.
        eprintln!("skipping: secflow binary not built");
        return;
    };
    let addrs = reserve_addrs(3);
    let peers = addrs.join(",");
    let dirs: Vec<PathBuf> = (0..3).map(|i| tmp_dir(&format!("node{i}"))).collect();

    // Deterministic per-node fault plans: worker panics, IO errors,
    // short reads/writes, stalls and latency on every connection the
    // node serves — which includes the `forward` and `peer-sync`
    // traffic its peers send it. The fault fuse bounds the damage so
    // every client converges.
    let chaos = |seed: usize| {
        format!(
            "seed={seed},panic=10,io=20,short=20,stall=10,latency=30,latency_ms=2,drop_connects=2,max_faults=60"
        )
    };
    let spawn_node = |i: usize, extra: &[&str]| -> Node {
        let chaos = chaos(40 + i);
        let mut args = vec![
            "--addr",
            &addrs[i],
            "--advertise",
            &addrs[i],
            "--peers",
            &peers,
            "--cache-dir",
            dirs[i].to_str().unwrap(),
            "--fsync",
            "always",
            "--workers",
            "2",
            "--peer-timeout-ms",
            "500",
            // Reap chaos-stalled connections fast so clients see a
            // clean close (one quick retry) instead of a 10s timeout.
            "--stall-timeout-ms",
            "1000",
            "--chaos",
            &chaos,
        ];
        args.extend_from_slice(extra);
        Node::spawn(&bin, "serve", &args)
    };
    let mut nodes: Vec<Option<Node>> = (0..3).map(|i| Some(spawn_node(i, &[]))).collect();
    let router = Node::spawn(
        &bin,
        "router",
        &["--addr", "127.0.0.1:0", "--peers", &peers],
    );

    // The single-node fault-free oracle every reply must match.
    let reference = Service::new(1024, Limits::default());
    let expect = |req: &Request| -> String {
        reference.note_request();
        strip_timing(&reference.execute(req))
    };
    // Worst case: one client absorbs a node's whole 60-fault fuse plus
    // the connect drops, one round each.
    let policy = RetryPolicy {
        budget: 80,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_secs(10)),
        ..RetryPolicy::default()
    };
    let k = 12usize;
    let requests: Vec<Request> = (0..k)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();

    // Round 1: full cluster, through the router and directly.
    for (slot, req) in requests.iter().enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies under chaos");
        assert_eq!(strip_timing(&reply), expected, "round 1 slot {slot}");
        let direct = RemoteClient::new(&addrs[slot % 3], policy)
            .call(req)
            .expect("node replies under chaos");
        assert_eq!(strip_timing(&direct), expected, "round 1 direct {slot}");
    }

    // The first crash: node 0 dies mid-cluster, no warning, no flush.
    nodes[0].take().unwrap().kill_dash_nine();

    // Round 2: the survivors (and the router, re-routing around the
    // corpse) still answer everything, byte-identically.
    for (slot, req) in requests.iter().enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies with a dead node");
        assert_eq!(strip_timing(&reply), expected, "round 2 slot {slot}");
        let direct = RemoteClient::new(&addrs[1 + slot % 2], policy)
            .call(req)
            .expect("surviving node replies");
        assert_eq!(strip_timing(&direct), expected, "round 2 direct {slot}");
    }

    // Restart node 0 at its old identity — same address, same store —
    // and additionally warm-start it from a (chaos-ridden) peer.
    nodes[0] = Some(spawn_node(0, &["--sync-from", &addrs[1]]));

    // Round 3: the old corpus plus fresh sources across the healed
    // cluster, again both paths.
    let fresh: Vec<Request> = (k..k + 6)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();
    for (slot, req) in requests.iter().chain(fresh.iter()).enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies after restart");
        assert_eq!(strip_timing(&reply), expected, "round 3 slot {slot}");
        let direct = RemoteClient::new(&addrs[slot % 3], policy)
            .call(req)
            .expect("restarted cluster replies");
        assert_eq!(strip_timing(&direct), expected, "round 3 direct {slot}");
    }

    // The healed cluster is visible to the operator tooling: every
    // member answers `cluster-status`, exit 0.
    let status = Command::new(&bin)
        .args(["cluster-status", "--peers", &peers])
        .output()
        .expect("cluster-status runs");
    let table = String::from_utf8_lossy(&status.stdout);
    assert!(
        status.status.success(),
        "cluster-status found a dead member:\n{table}"
    );
    for addr in &addrs {
        assert!(table.contains(addr.as_str()), "missing {addr}:\n{table}");
    }
    eprintln!(
        "chaos soak: {} replies matched the fault-free oracle across a SIGKILL, \
         a --sync-from restart, and per-node fault plans; healed cluster:\n{table}",
        2 * (2 * k + k + 6)
    );

    router.kill_dash_nine();
    for node in nodes.into_iter().flatten() {
        node.kill_dash_nine();
    }
}

/// The self-healing soak (EXPERIMENTS E18): a 3-node rf=2 replicated
/// cluster under seeded network partitions — symmetric between nodes 0
/// and 2, asymmetric from node 1 towards node 0 — plus a SIGKILL with
/// *no* restart. Every reply during and after the faults must be
/// byte-identical with the fault-free single-node oracle; partition
/// drops charge the chaos fuse, so the links heal under probe traffic,
/// after which `secflow repair` converges the survivors' shard digests
/// and one `explore` is searched exactly once across them.
#[test]
fn self_healing_soak_partitions_sigkill_and_repair_converge_digests() {
    let Some(bin) = secflow_bin() else {
        eprintln!("skipping: secflow binary not built");
        return;
    };
    let addrs = reserve_addrs(3);
    let peers = addrs.join(",");
    let dirs: Vec<PathBuf> = (0..3).map(|i| tmp_dir(&format!("heal{i}"))).collect();

    // Node 0 <-> node 2: symmetric total partition (both directions
    // dropped); node 1 -> node 0: asymmetric, most calls dropped. Each
    // drop burns one fault from that node's fuse, so the partitions
    // heal on their own once the fuses blow — mostly under the failure
    // detector's probe traffic.
    let chaos = [
        format!("seed=21,partition={}~1000,max_faults=24", addrs[2]),
        format!("seed=22,partition={}~800,max_faults=12", addrs[0]),
        format!("seed=23,partition={}~1000,max_faults=24", addrs[0]),
    ];
    let spawn_node = |i: usize| -> Node {
        Node::spawn(
            &bin,
            "serve",
            &[
                "--addr",
                &addrs[i],
                "--advertise",
                &addrs[i],
                "--peers",
                &peers,
                "--replication",
                "2",
                "--cache-dir",
                dirs[i].to_str().unwrap(),
                "--workers",
                "2",
                "--peer-timeout-ms",
                "400",
                "--stall-timeout-ms",
                "1000",
                "--chaos",
                &chaos[i],
            ],
        )
    };
    let mut nodes: Vec<Option<Node>> = (0..3).map(|i| Some(spawn_node(i))).collect();

    let reference = Service::new(1024, Limits::default());
    let expect = |req: &Request| -> String {
        reference.note_request();
        strip_timing(&reference.execute(req))
    };
    let policy = RetryPolicy {
        budget: 40,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_secs(10)),
        ..RetryPolicy::default()
    };

    // Round 1: the partitions are live. Every node still answers every
    // request byte-identically — replica pushes across dead links turn
    // into hints, and forwards re-route or fall back to local compute;
    // availability never hinges on the partitioned link.
    let k = 10usize;
    let requests: Vec<Request> = (0..k)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();
    for (slot, req) in requests.iter().enumerate() {
        let expected = expect(req);
        for addr in &addrs {
            let reply = RemoteClient::new(addr, policy)
                .call(req)
                .expect("node replies under partition");
            assert_eq!(
                strip_timing(&reply),
                expected,
                "round 1 slot {slot} via {addr}"
            );
        }
    }

    // Node 1 dies mid-cluster and never comes back.
    nodes[1].take().unwrap().kill_dash_nine();

    // Round 2: the survivors answer the old corpus plus fresh sources.
    let fresh: Vec<Request> = (k..k + 6)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();
    for (slot, req) in requests.iter().chain(fresh.iter()).enumerate() {
        let expected = expect(req);
        for addr in [&addrs[0], &addrs[2]] {
            let reply = RemoteClient::new(addr, policy)
                .call(req)
                .expect("survivor replies after SIGKILL");
            assert_eq!(
                strip_timing(&reply),
                expected,
                "round 2 slot {slot} via {addr}"
            );
        }
    }

    // The handoff path engaged while the 0<->2 link was down: node 0
    // owed replica pushes to node 2 and queued them as hints.
    let s0 = stats_of(&addrs[0]);
    assert!(
        cluster_stat(&s0, "hints_queued") > 0,
        "the partition never queued a hint on node 0: {s0}"
    );

    // Heal + repair: retry `secflow repair` across the survivors until
    // the fuses have blown, the probes have closed the circuits, and
    // one pairwise round converges both shard digests (exit 0).
    let survivors = format!("{},{}", addrs[0], addrs[2]);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let repair_out = loop {
        let out = Command::new(&bin)
            .args(["repair", "--peers", &survivors, "--json"])
            .output()
            .expect("repair runs");
        if out.status.success() {
            break out;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "repair never converged the survivors:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
        std::thread::sleep(Duration::from_millis(300));
    };
    let summary = String::from_utf8_lossy(&repair_out.stdout);
    assert!(
        summary.contains(r#""converged":true"#),
        "repair summary: {summary}"
    );

    // Zero re-exploration: one expensive search, delivered to both
    // survivors (with a repair round between, so the second delivery is
    // a cache hit either way), is explored exactly once between them.
    let mut explore = Request::new(Op::Explore, LEAKY);
    explore.inputs = vec![("x".to_string(), 1)];
    let expected = expect(&explore);
    let reply = RemoteClient::new(&addrs[0], policy)
        .call(&explore)
        .expect("survivor explores");
    assert_eq!(strip_timing(&reply), expected, "explore via node 0");
    let status = Command::new(&bin)
        .args(["repair", "--peers", &survivors])
        .status()
        .expect("second repair runs");
    assert!(status.success(), "post-explore repair converges");
    let reply = RemoteClient::new(&addrs[2], policy)
        .call(&explore)
        .expect("other survivor replies");
    assert_eq!(strip_timing(&reply), expected, "explore via node 2");
    let states: u64 = [&addrs[0], &addrs[2]]
        .iter()
        .map(|a| stat(&stats_of(a), "explore_states"))
        .sum();
    assert_eq!(
        states,
        reference.metrics.explore_states.load(Relaxed),
        "the survivors explored the state space exactly once between them"
    );

    // Operator view: the survivors agree on their shard digest in
    // `cluster-status --json`, and the full member list (which still
    // names the corpse) exits nonzero.
    let status = Command::new(&bin)
        .args(["cluster-status", "--peers", &survivors, "--json"])
        .output()
        .expect("cluster-status runs");
    assert!(status.status.success());
    let digests: Vec<String> = String::from_utf8_lossy(&status.stdout)
        .lines()
        .map(|line| {
            let v = Json::parse(line).expect("status line parses");
            assert_eq!(v.get("up").and_then(Json::as_bool), Some(true));
            v.get("shard_digest")
                .and_then(Json::as_str)
                .expect("digest present")
                .to_string()
        })
        .collect();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0], digests[1], "survivors agree on the digest");
    let full = Command::new(&bin)
        .args(["cluster-status", "--peers", &peers])
        .status()
        .expect("cluster-status runs");
    assert!(
        !full.success(),
        "cluster-status must flag the SIGKILLed member"
    );
    eprintln!(
        "healing soak: {} oracle-identical replies across partitions and a SIGKILL; \
         survivors converged on digest {}",
        3 * k + 2 * (k + 6) + 2,
        digests[0]
    );

    for node in nodes.into_iter().flatten() {
        node.kill_dash_nine();
    }
}
