//! The cluster soak: a 3-node sharded cluster plus a router, driven
//! differentially against a single-node fault-free oracle.
//!
//! Two stories, mirroring `tests/serve_soak.rs` one level up the
//! topology:
//!
//! - **exactly-once** — every distinct source delivered to every node
//!   *and* the router computes exactly once cluster-wide: the sum of
//!   the nodes' `cache_misses` equals the number of distinct sources,
//!   and the forward/single-flight counters in `stats` prove how;
//! - **chaos convergence** — with nodes SIGKILLed and restarted and
//!   inter-node connections dropped, stalled and erroring under a
//!   seeded fault plan, every reply a client ever receives is
//!   byte-identical (modulo the `us` and `cached` timing fields) with
//!   a fault-free single-node run of the same request.
//!
//! The chaos test runs the real `secflow` binary (SIGKILL needs a
//! process, not a thread) on OS-assigned ports; the exactly-once test
//! is fully in-process on `bind_ephemeral` + `serve_listener`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use secflow::lang::print_program;
use secflow::server::{
    bind_ephemeral, serve_listener, ClusterClient, ClusterConfig, Json, Limits, Op, RemoteClient,
    Request, RetryPolicy, ServerConfig, Service,
};
use secflow::workload::sequential_chain;

const LEAKY: &str = "var x, y : integer; sem : semaphore;
    cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";

fn soak_source(slot: usize) -> String {
    print_program(&sequential_chain(10 + slot, 6))
}

/// Drops `us` (elapsed time) and `cached` (where the answer came from,
/// not what it is) so replies compare byte-for-byte.
fn strip_timing(line: &str) -> String {
    let Ok(Json::Obj(fields)) = Json::parse(line) else {
        panic!("reply is not a JSON object: {line}");
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "us" && k != "cached")
            .collect(),
    )
    .to_string()
}

fn stats_of(addr: &str) -> Json {
    let mut client = RemoteClient::new(addr, RetryPolicy::default());
    let line = client
        .call(&Request::new(Op::Stats, ""))
        .unwrap_or_else(|e| panic!("stats from {addr}: {e:?}"));
    Json::parse(&line).expect("stats parses")
}

fn stat(stats: &Json, field: &str) -> u64 {
    stats
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {field}: {stats}"))
}

fn cluster_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("cluster")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing cluster.{field}: {stats}"))
}

fn shutdown(addr: &str) {
    let stream = TcpStream::connect(addr).expect("shutdown connect");
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
}

/// Every distinct source, delivered redundantly to every node and the
/// router, computes exactly once cluster-wide. The proof is in the
/// counters: misses (= computations) sum to the distinct-source count,
/// forwards carried the rest, and the explored state total across the
/// whole cluster equals one fault-free run's.
#[test]
fn three_node_cluster_computes_each_distinct_source_exactly_once() {
    let listeners: Vec<_> = (0..3).map(|_| bind_ephemeral().unwrap()).collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut servers = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let mut cluster = ClusterConfig::new(&addrs);
        cluster.self_addr = Some(addrs[i].clone());
        let cfg = ServerConfig {
            workers: 2,
            cache_capacity: 1024,
            cluster: Some(cluster),
            ..ServerConfig::default()
        };
        servers.push(serve_listener(listener, cfg).unwrap());
    }
    let listener = bind_ephemeral().unwrap();
    let router_addr = listener.local_addr().unwrap().to_string();
    let router_cfg = ServerConfig {
        workers: 2,
        cache_capacity: 1024,
        cluster: Some(ClusterConfig::new(&addrs)),
        ..ServerConfig::default()
    };
    let router = serve_listener(listener, router_cfg).unwrap();

    // The single-node fault-free oracle.
    let reference = Service::new(1024, Limits::default());
    let policy = RetryPolicy::default();

    let k = 24usize;
    for slot in 0..k {
        let req = Request::new(Op::Certify, soak_source(slot));
        reference.note_request();
        let expected = strip_timing(&reference.execute(&req));
        // Four redundant deliveries: each node directly, then the
        // router; then client-side routing straight to the owner.
        for target in addrs.iter().chain(std::iter::once(&router_addr)) {
            let reply = RemoteClient::new(target, policy)
                .call(&req)
                .expect("node replies");
            assert_eq!(strip_timing(&reply), expected, "slot {slot} via {target}");
        }
        let reply = ClusterClient::new(&addrs, policy)
            .call(&req)
            .expect("cluster client replies");
        assert_eq!(
            strip_timing(&reply),
            expected,
            "slot {slot} via ring client"
        );
    }

    // One expensive exploration, delivered everywhere: the state space
    // is searched exactly once in the whole cluster.
    let mut explore = Request::new(Op::Explore, LEAKY);
    explore.inputs = vec![("x".to_string(), 1)];
    reference.note_request();
    let expected = strip_timing(&reference.execute(&explore));
    for target in addrs.iter().chain(std::iter::once(&router_addr)) {
        let reply = RemoteClient::new(target, policy)
            .call(&explore)
            .expect("explore replies");
        assert_eq!(strip_timing(&reply), expected, "explore via {target}");
    }

    let node_stats: Vec<Json> = addrs.iter().map(|a| stats_of(a)).collect();
    let misses: u64 = node_stats.iter().map(|s| stat(s, "cache_misses")).sum();
    let forwards: u64 = node_stats.iter().map(|s| cluster_stat(s, "forwards")).sum();
    let forward_hits: u64 = node_stats
        .iter()
        .map(|s| cluster_stat(s, "forward_hits"))
        .sum();
    let states: u64 = node_stats.iter().map(|s| stat(s, "explore_states")).sum();
    assert_eq!(
        misses,
        k as u64 + 1,
        "each distinct request computes exactly once cluster-wide: {node_stats:?}"
    );
    assert_eq!(
        states,
        reference.metrics.explore_states.load(Relaxed),
        "the cluster explored the state space exactly once"
    );
    assert!(forwards > 0, "no request was ever forwarded");
    assert!(
        forward_hits > 0,
        "redundant deliveries never hit a peer's cache through a forward"
    );
    for s in &node_stats {
        assert_eq!(cluster_stat(s, "hash_ring_size"), 3);
    }
    let router_stats = stats_of(&router_addr);
    assert_eq!(
        stat(&router_stats, "cache_misses"),
        0,
        "a healthy router never computes: {router_stats}"
    );
    assert!(cluster_stat(&router_stats, "forwards") > 0);
    eprintln!(
        "exactly-once: {} distinct requests x5 deliveries -> {misses} computations, \
         {forwards} node forwards (+{} router), {forward_hits} forward hits, \
         {states} states explored (oracle: {})",
        k + 1,
        cluster_stat(&router_stats, "forwards"),
        reference.metrics.explore_states.load(Relaxed),
    );

    shutdown(&router_addr);
    router.join().expect("router thread");
    for (addr, server) in addrs.iter().zip(servers) {
        shutdown(addr);
        server.join().expect("node thread");
    }
}

// ---- chaos: subprocess nodes, SIGKILL, seeded fault plans ------------

/// The built CLI binary, found relative to this test executable
/// (`target/debug/deps/cluster_soak-*` → `target/debug/secflow`).
fn secflow_bin() -> Option<PathBuf> {
    let mut p = std::env::current_exe().ok()?;
    p.pop(); // deps/
    p.pop(); // debug/
    let bin = p.join(format!("secflow{}", std::env::consts::EXE_SUFFIX));
    bin.exists().then_some(bin)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secflow-cluster-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Node {
    child: Child,
    addr: String,
    // Held open so the child never blocks on a full stderr pipe; the
    // banner has already been consumed.
    _stderr: BufReader<ChildStderr>,
}

impl Node {
    /// Spawns `secflow <subcmd>` and reads the announced address back
    /// from the banner (ephemeral or explicit, the flow is the same).
    fn spawn(bin: &Path, subcmd: &str, args: &[&str]) -> Node {
        let mut child = Command::new(bin)
            .arg(subcmd)
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("node spawns");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            let n = stderr.read_line(&mut line).expect("read banner");
            assert!(n > 0, "node exited before announcing its address");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        };
        Node {
            child,
            addr,
            _stderr: stderr,
        }
    }

    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("reap");
    }
}

/// Reserves three distinct loopback ports the OS just handed out, so
/// the cluster's member list can be fixed *before* any node starts
/// (and a killed node can restart at its old identity).
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<_> = (0..n).map(|_| bind_ephemeral().unwrap()).collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

#[test]
fn cluster_chaos_soak_converges_with_single_node_fault_free_run() {
    let Some(bin) = secflow_bin() else {
        // `cargo test --test cluster_soak` alone does not build the CLI
        // binary; the full workspace test run does.
        eprintln!("skipping: secflow binary not built");
        return;
    };
    let addrs = reserve_addrs(3);
    let peers = addrs.join(",");
    let dirs: Vec<PathBuf> = (0..3).map(|i| tmp_dir(&format!("node{i}"))).collect();

    // Deterministic per-node fault plans: worker panics, IO errors,
    // short reads/writes, stalls and latency on every connection the
    // node serves — which includes the `forward` and `peer-sync`
    // traffic its peers send it. The fault fuse bounds the damage so
    // every client converges.
    let chaos = |seed: usize| {
        format!(
            "seed={seed},panic=10,io=20,short=20,stall=10,latency=30,latency_ms=2,drop_connects=2,max_faults=60"
        )
    };
    let spawn_node = |i: usize, extra: &[&str]| -> Node {
        let chaos = chaos(40 + i);
        let mut args = vec![
            "--addr",
            &addrs[i],
            "--advertise",
            &addrs[i],
            "--peers",
            &peers,
            "--cache-dir",
            dirs[i].to_str().unwrap(),
            "--fsync",
            "always",
            "--workers",
            "2",
            "--peer-timeout-ms",
            "500",
            // Reap chaos-stalled connections fast so clients see a
            // clean close (one quick retry) instead of a 10s timeout.
            "--stall-timeout-ms",
            "1000",
            "--chaos",
            &chaos,
        ];
        args.extend_from_slice(extra);
        Node::spawn(&bin, "serve", &args)
    };
    let mut nodes: Vec<Option<Node>> = (0..3).map(|i| Some(spawn_node(i, &[]))).collect();
    let router = Node::spawn(
        &bin,
        "router",
        &["--addr", "127.0.0.1:0", "--peers", &peers],
    );

    // The single-node fault-free oracle every reply must match.
    let reference = Service::new(1024, Limits::default());
    let expect = |req: &Request| -> String {
        reference.note_request();
        strip_timing(&reference.execute(req))
    };
    // Worst case: one client absorbs a node's whole 60-fault fuse plus
    // the connect drops, one round each.
    let policy = RetryPolicy {
        budget: 80,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_secs(10)),
        ..RetryPolicy::default()
    };
    let k = 12usize;
    let requests: Vec<Request> = (0..k)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();

    // Round 1: full cluster, through the router and directly.
    for (slot, req) in requests.iter().enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies under chaos");
        assert_eq!(strip_timing(&reply), expected, "round 1 slot {slot}");
        let direct = RemoteClient::new(&addrs[slot % 3], policy)
            .call(req)
            .expect("node replies under chaos");
        assert_eq!(strip_timing(&direct), expected, "round 1 direct {slot}");
    }

    // The first crash: node 0 dies mid-cluster, no warning, no flush.
    nodes[0].take().unwrap().kill_dash_nine();

    // Round 2: the survivors (and the router, re-routing around the
    // corpse) still answer everything, byte-identically.
    for (slot, req) in requests.iter().enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies with a dead node");
        assert_eq!(strip_timing(&reply), expected, "round 2 slot {slot}");
        let direct = RemoteClient::new(&addrs[1 + slot % 2], policy)
            .call(req)
            .expect("surviving node replies");
        assert_eq!(strip_timing(&direct), expected, "round 2 direct {slot}");
    }

    // Restart node 0 at its old identity — same address, same store —
    // and additionally warm-start it from a (chaos-ridden) peer.
    nodes[0] = Some(spawn_node(0, &["--sync-from", &addrs[1]]));

    // Round 3: the old corpus plus fresh sources across the healed
    // cluster, again both paths.
    let fresh: Vec<Request> = (k..k + 6)
        .map(|slot| Request::new(Op::Certify, soak_source(slot)))
        .collect();
    for (slot, req) in requests.iter().chain(fresh.iter()).enumerate() {
        let expected = expect(req);
        let reply = RemoteClient::new(&router.addr, policy)
            .call(req)
            .expect("router replies after restart");
        assert_eq!(strip_timing(&reply), expected, "round 3 slot {slot}");
        let direct = RemoteClient::new(&addrs[slot % 3], policy)
            .call(req)
            .expect("restarted cluster replies");
        assert_eq!(strip_timing(&direct), expected, "round 3 direct {slot}");
    }

    // The healed cluster is visible to the operator tooling: every
    // member answers `cluster-status`, exit 0.
    let status = Command::new(&bin)
        .args(["cluster-status", "--peers", &peers])
        .output()
        .expect("cluster-status runs");
    let table = String::from_utf8_lossy(&status.stdout);
    assert!(
        status.status.success(),
        "cluster-status found a dead member:\n{table}"
    );
    for addr in &addrs {
        assert!(table.contains(addr.as_str()), "missing {addr}:\n{table}");
    }
    eprintln!(
        "chaos soak: {} replies matched the fault-free oracle across a SIGKILL, \
         a --sync-from restart, and per-node fault plans; healed cluster:\n{table}",
        2 * (2 * k + k + 6)
    );

    router.kill_dash_nine();
    for node in nodes.into_iter().flatten() {
        node.kill_dash_nine();
    }
}
