//! The dynamic monitor is subsumed by static certification.
//!
//! A purely dynamic taint monitor observes one schedule; CFM reasons
//! about all of them. The containment direction that must hold: if any
//! run's final label of a variable exceeds its static binding, CFM
//! rejects the program under that binding. (The converse fails — that is
//! the monitor's blind spot, demonstrated in `examples/leak_audit.rs`.)

use proptest::prelude::*;

use secflow::cfm::{certify, StaticBinding};
use secflow::lattice::{Lattice, TwoPoint, TwoPointScheme};
use secflow::runtime::{Machine, RandomSched, RoundRobin, Scheduler, TaintMonitor};
use secflow::workload::{generate, GenConfig};

fn cfg() -> GenConfig {
    GenConfig {
        target_stmts: 25,
        max_depth: 4,
        n_vars: 4,
        n_sems: 2,
        bounded_loops: true,
    }
}

/// Runs the monitor under one scheduler; returns final labels, or `None`
/// if the run did not terminate (deadlock/fuel).
fn monitored_labels(
    program: &secflow::lang::Program,
    initial: &[TwoPoint],
    seed: Option<u64>,
    inputs: &[(secflow::lang::VarId, i64)],
) -> Option<Vec<TwoPoint>> {
    let machine = Machine::with_inputs(program, inputs);
    let mut mon = TaintMonitor::new(machine, initial.to_vec(), TwoPoint::Low);
    let outcome = match seed {
        Some(seed) => mon.run(&mut RandomSched::new(seed), 30_000),
        None => mon.run(&mut RoundRobin::new(), 30_000),
    };
    outcome.terminated().then(|| mon.labels().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monitor pollution ⟹ CFM rejection.
    #[test]
    fn dynamic_pollution_implies_static_rejection(
        seed in 0u64..100_000,
        sched_seed in 0u64..1_000,
        secret_val in 0i64..4,
    ) {
        let program = generate(&cfg(), seed);
        let secret = program.var("v0");
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
            .with(secret, TwoPoint::High);
        let initial: Vec<TwoPoint> = program
            .symbols
            .iter()
            .map(|(id, _)| *binding.class(id))
            .collect();
        let schedules = [None, Some(sched_seed), Some(sched_seed + 1)];
        for sched in schedules {
            let Some(labels) =
                monitored_labels(&program, &initial, sched, &[(secret, secret_val)])
            else {
                continue;
            };
            let polluted = program
                .symbols
                .iter()
                .any(|(id, _)| !labels[id.index()].leq(binding.class(id)));
            if polluted {
                prop_assert!(
                    !certify(&program, &binding).certified(),
                    "monitor flagged seed {} but CFM certified",
                    seed
                );
            }
        }
    }
}

#[test]
fn the_containment_is_strict() {
    // CFM rejects the untaken-branch program; the monitor stays silent on
    // the run where the branch is skipped — so the reverse implication
    // genuinely fails.
    let program = secflow::lang::parse("var h, l : integer; if h = 0 then l := 1").unwrap();
    let h = program.var("h");
    let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(h, TwoPoint::High);
    assert!(!certify(&program, &binding).certified());
    let initial: Vec<TwoPoint> = program
        .symbols
        .iter()
        .map(|(id, _)| *binding.class(id))
        .collect();
    let labels = monitored_labels(&program, &initial, None, &[(h, 1)]).unwrap();
    let polluted = program
        .symbols
        .iter()
        .any(|(id, _)| !labels[id.index()].leq(binding.class(id)));
    assert!(!polluted, "the untaken branch is invisible to the monitor");
}

#[test]
fn monitor_agrees_across_schedules_on_race_free_programs() {
    // Fully semaphore-sequenced program: every schedule produces the same
    // final labels.
    let program = secflow::workload::fig3_program();
    let x = program.var("x");
    let initial: Vec<TwoPoint> = program
        .symbols
        .iter()
        .map(|(id, _)| {
            if id == x {
                TwoPoint::High
            } else {
                TwoPoint::Low
            }
        })
        .collect();
    let reference = monitored_labels(&program, &initial, None, &[(x, 0)]).unwrap();
    for seed in 0..15 {
        let labels = monitored_labels(&program, &initial, Some(seed), &[(x, 0)]).unwrap();
        assert_eq!(labels, reference, "seed {seed}");
    }
}

#[test]
fn monitor_scheduler_wrapper_steps_manually() {
    // Exercise the manual step API (used by the leak_audit example).
    let program = secflow::lang::parse(
        "var h, l : integer; s : semaphore initially(1);
         cobegin begin wait(s); l := h; signal(s) end || skip coend",
    )
    .unwrap();
    let h = program.var("h");
    let initial: Vec<TwoPoint> = program
        .symbols
        .iter()
        .map(|(id, _)| {
            if id == h {
                TwoPoint::High
            } else {
                TwoPoint::Low
            }
        })
        .collect();
    let machine = Machine::new(&program);
    let mut mon = TaintMonitor::new(machine, initial, TwoPoint::Low);
    let mut sched = RoundRobin::new();
    while mon.machine().status() == secflow::runtime::Status::Running {
        let enabled = mon.machine().enabled();
        let pid = sched.pick(&enabled);
        mon.step(pid).unwrap();
    }
    assert_eq!(mon.labels()[program.var("l").index()], TwoPoint::High);
    let allowed: Vec<TwoPoint> = program
        .symbols
        .iter()
        .map(|(id, _)| {
            if id == h {
                TwoPoint::High
            } else {
                TwoPoint::Low
            }
        })
        .collect();
    assert_eq!(mon.polluted(&allowed), vec![program.var("l")]);
}
