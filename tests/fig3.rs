//! Experiment E3: every §4.3 claim about Figure 3, cross-crate.

use secflow::cfm::{certify, denning_certify, infer_binding, CheckRule, StaticBinding};
use secflow::lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow::logic::{check_proof, is_completely_invariant, policy_assertion, prove};
use secflow::runtime::{check_binary_secret, explore, ExploreLimits};
use secflow::workload::{
    fig3_all_high_binding, fig3_baseline_gap_binding, fig3_high_x_binding, fig3_program,
};

#[test]
fn fig3_never_deadlocks_and_restores_semaphores() {
    let p = fig3_program();
    for x in [-1, 0, 1, 9] {
        let r = explore(&p, &[(p.var("x"), x)], ExploreLimits::default());
        assert_eq!(r.deadlocks, 0, "x={x}");
        assert_eq!(r.faults, 0, "x={x}");
        assert!(!r.truncated, "x={x}");
        for store in &r.outcomes {
            for sem in ["modify", "modified", "read", "done"] {
                assert_eq!(store[p.var(sem).index()], 0, "x={x}, {sem}");
            }
        }
    }
}

#[test]
fn fig3_transmits_exactly_one_bit() {
    let p = fig3_program();
    // Under full sequencing the outcome is deterministic: y = (x = 0).
    for (x, y) in [(0i64, 1i64), (1, 0), (-7, 0)] {
        let r = explore(&p, &[(p.var("x"), x)], ExploreLimits::default());
        let ys = r.project(&[p.var("y")]);
        assert_eq!(ys.len(), 1, "x={x}");
        assert_eq!(ys.into_iter().next().unwrap(), vec![y], "x={x}");
    }
}

#[test]
fn fig3_interferes_empirically() {
    let p = fig3_program();
    let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], ExploreLimits::default());
    assert!(r.interferes);
    assert!(!r.truncated);
    let w = r.witness.unwrap();
    // The channel works through values, not deadlock.
    assert!(!w.observed_a.can_deadlock && !w.observed_b.can_deadlock);
    assert_ne!(w.observed_a.low_outcomes, w.observed_b.low_outcomes);
}

#[test]
fn cfm_rejects_the_channel_and_derives_the_four_three_conditions() {
    let p = fig3_program();
    let report = certify(&p, &fig3_high_x_binding(&p));
    assert!(!report.certified());
    // The very first objection is the local flow from `x` into the
    // semaphore handshake — §4.3's first condition.
    assert_eq!(report.violations[0].rule, CheckRule::IfLocal);
}

#[test]
fn the_baseline_gap_is_exactly_the_global_conditions() {
    let p = fig3_program();
    let gap = fig3_baseline_gap_binding(&p);
    assert!(denning_certify(&p, &gap).certified());
    let report = certify(&p, &gap);
    assert!(!report.certified());
    assert!(report
        .violations
        .iter()
        .all(|v| v.rule == CheckRule::SeqGlobal));
    // Two distinct global flows: modify -> m, and read/done -> y.
    assert!(report.violations.len() >= 2);
}

#[test]
fn inference_discovers_the_sbind_x_leq_sbind_y_consequence() {
    let p = fig3_program();
    // §4.3: the three conditions imply sbind(x) ≤ sbind(y); pinning them
    // apart is unsatisfiable.
    let err = infer_binding(
        &p,
        &TwoPointScheme,
        [(p.var("x"), TwoPoint::High), (p.var("y"), TwoPoint::Low)],
    )
    .unwrap_err();
    assert_eq!(err.var, p.var("y"));
    // The witness chain is a real constraint path from x to y — the
    // §4.3 composition, discovered automatically.
    assert_eq!(err.path.first(), Some(&p.var("x")));
    assert_eq!(err.path.last(), Some(&p.var("y")));
    let cs = secflow::cfm::constraints(&p);
    for pair in err.path.windows(2) {
        assert!(
            cs.contains(&secflow::cfm::Constraint {
                from: pair[0],
                to: pair[1]
            }),
            "path edge {:?} is not a constraint",
            pair
        );
    }
    // And the least satisfying binding raises the whole chain.
    let least = infer_binding(&p, &TwoPointScheme, [(p.var("x"), TwoPoint::High)]).unwrap();
    for name in ["modify", "m", "y"] {
        assert_eq!(*least.class(p.var(name)), TwoPoint::High, "{name}");
    }
    assert!(certify(&p, &least).certified());
}

#[test]
fn theorem1_proof_exists_for_the_all_high_binding() {
    let p = fig3_program();
    let sbind = fig3_all_high_binding(&p);
    assert!(certify(&p, &sbind).certified());
    let proof = prove(&p, &sbind, Extended::Nil, Extended::Nil).unwrap();
    check_proof(&p.body, &proof).unwrap();
    let i = policy_assertion(&p, &sbind);
    assert!(is_completely_invariant(&proof, &i).unwrap());
    // The derivation covers the whole 3-process program.
    assert!(proof.size() > 30, "size = {}", proof.size());
}

#[test]
fn certified_binding_means_no_low_observer_interference() {
    // Soundness on Fig 3 itself: under the all-High binding there are no
    // Low variables, so a Low observer sees nothing — and the empirical
    // check over an empty observation set finds no interference.
    let p = fig3_program();
    let r = check_binary_secret(&p, p.var("x"), &[], ExploreLimits::default());
    assert!(!r.interferes);
}

#[test]
fn repaired_low_y_channel_is_noninterfering() {
    // Cut the channel: make y constant. CFM certifies x=High/y=Low and
    // the harness agrees there is no interference.
    let p = secflow::lang::parse(
        "var x, y, m : integer;
         modify, modified, read, done : semaphore initially(0);
         cobegin
           begin
             m := 0;
             signal(read); wait(done)
           end
         ||
           begin wait(read); y := 7; signal(done) end
         coend",
    )
    .unwrap();
    let sbind =
        StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("x"), TwoPoint::High);
    assert!(certify(&p, &sbind).certified());
    let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], ExploreLimits::default());
    assert!(!r.interferes);
}
