//! The big front-end soak: 1k+ mixed connections (pipelined retrying
//! clients, byte-dribbling slow clients, and stalled half-line clients)
//! against the readiness-driven poll loop running a seeded chaos plan.
//!
//! Asserts the robustness story end to end:
//!
//! - **liveness** — every well-behaved client converges to an answer
//!   despite injected IO errors, short reads, stalls, worker panics,
//!   latency, and dropped connections;
//! - **convergence** — every answer is byte-identical (modulo the
//!   timing fields `us` and `cached`) with a fault-free run of the same
//!   request against the bare service logic;
//! - **isolation** — stalled clients are closed by the stall timeout
//!   and never block progress on other connections (they own no
//!   thread), pinned by a dedicated test below.
//!
//! `SECFLOW_SOAK_CONNS` scales the client count (CI runs 256; the
//! default is 1000).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use secflow::lang::print_program;
use secflow::server::{
    bind_ephemeral, serve_listener, FaultPlan, Json, Limits, Op, PipelinedClient, Request,
    RetryPolicy, ServerConfig, Service,
};
use secflow::workload::sequential_chain;

/// Distinct cheap programs; the soak draws from this pool so the cache
/// and single-flight coalescing absorb most of the stampede.
const SOURCE_POOL: usize = 50;

fn soak_source(slot: usize) -> String {
    print_program(&sequential_chain(20 + (slot % SOURCE_POOL), 8))
}

/// Drops `us` (elapsed time) and `cached` (where the answer came from,
/// not what it is) so replies compare byte-for-byte.
fn strip_timing(line: &str) -> String {
    let Ok(Json::Obj(fields)) = Json::parse(line) else {
        panic!("reply is not a JSON object: {line}");
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(k, _)| k != "us" && k != "cached")
            .collect(),
    )
    .to_string()
}

fn connect_with_retry(addr: &str) -> Option<TcpStream> {
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    None
}

fn conn_stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("conn")
        .and_then(|c| c.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing conn.{field}: {stats}"))
}

#[test]
fn thousand_connection_chaos_soak_converges_with_fault_free_run() {
    let n: usize = std::env::var("SECFLOW_SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let stalled_n = (n / 10).max(1);
    let slow_n = (n / 20).max(1);
    let pipelined_n = n.saturating_sub(stalled_n + slow_n).max(1);

    let mut plan = FaultPlan::new(42);
    plan.panic_per_mille = 30;
    plan.io_error_per_mille = 20;
    plan.short_io_per_mille = 30;
    plan.stall_per_mille = 30;
    plan.latency_per_mille = 50;
    plan.latency_ms = 2;
    plan.drop_connects = 3;
    plan.max_faults = 200;
    let cfg = ServerConfig {
        workers: 4,
        queue_capacity: 512,
        cache_capacity: 4096,
        chaos: Some(Arc::new(plan)),
        pipeline_window: 8,
        // Long enough that a dribbling-but-live client survives, short
        // enough that the stalled cohort is reaped during the soak.
        stall_timeout_ms: 3_000,
        idle_timeout_ms: 120_000,
        ..ServerConfig::default()
    };
    // The shared ephemeral-port story (the same one the cluster tests
    // lean on): bind first, read the address, then serve — no port is
    // ever guessed, so parallel test binaries cannot collide.
    let listener = bind_ephemeral().unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = serve_listener(listener, cfg).unwrap();

    // The fault-free reference: identical service logic, no chaos, no
    // network. Every soak reply must match it byte-for-byte modulo
    // timing fields.
    let reference = Arc::new(Service::new(4096, Limits::default()));

    let barrier = Arc::new(Barrier::new(pipelined_n + slow_n + stalled_n));
    let stop_stalling = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();

    // Worst case: the entire 200-fault fuse plus the 3 connection drops
    // lands on one client, each fault costing at most one round.
    let policy = |seed: u64| RetryPolicy {
        budget: 250,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_secs(30)),
        seed,
    };

    for i in 0..pipelined_n {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let reference = Arc::clone(&reference);
        workers.push(std::thread::spawn(move || {
            let reqs: Vec<Request> = (0..4)
                .map(|j| Request::new(Op::Certify, soak_source(i * 7 + j)))
                .collect();
            barrier.wait();
            // Light stagger so n simultaneous SYNs don't all race one
            // accept backlog; retries would absorb it, slower.
            std::thread::sleep(Duration::from_millis((i % 64) as u64));
            let mut client = PipelinedClient::new(&addr, 4, policy(i as u64));
            let replies = client.call_all(&reqs).expect("pipelined client converges");
            for (j, reply) in replies.iter().enumerate() {
                let mut expected_req = reqs[j].clone();
                expected_req.id = Some(Json::Num(j as f64));
                reference.note_request();
                let expected = reference.execute(&expected_req);
                assert_eq!(
                    strip_timing(reply),
                    strip_timing(&expected),
                    "pipelined client {i} slot {j} diverged from the fault-free run"
                );
            }
        }));
    }

    for i in 0..slow_n {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let reference = Arc::clone(&reference);
        workers.push(std::thread::spawn(move || {
            let req = Request::new(Op::Certify, soak_source(i * 3));
            let line = format!("{}\n", req.to_line());
            barrier.wait();
            // Chaos resets connections and panics workers, so the slow
            // client retries whole attempts like any real client would;
            // within one attempt it dribbles the request a few bytes at
            // a time — always live, never fast — and must NOT be reaped
            // by the stall timeout.
            let mut reply = None;
            'attempt: for _ in 0..100 {
                std::thread::sleep(Duration::from_millis(5));
                let Some(stream) = connect_with_retry(&addr) else {
                    continue;
                };
                stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
                let Ok(mut writer) = stream.try_clone() else {
                    continue;
                };
                for chunk in line.as_bytes().chunks(16) {
                    if writer
                        .write_all(chunk)
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        continue 'attempt;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                let mut reader = BufReader::new(stream);
                let mut got = String::new();
                match reader.read_line(&mut got) {
                    Ok(n) if n > 0 && got.ends_with('\n') => {
                        let v = Json::parse(got.trim()).expect("reply parses");
                        if v.get("ok").and_then(Json::as_bool) == Some(true) {
                            reply = Some(got);
                            break;
                        }
                        // Injected panic / overload reply: retry.
                    }
                    _ => {}
                }
            }
            let reply = reply.unwrap_or_else(|| panic!("slow client {i} never converged"));
            reference.note_request();
            let expected = reference.execute(&req);
            assert_eq!(
                strip_timing(reply.trim()),
                strip_timing(&expected),
                "slow client {i} diverged from the fault-free run"
            );
        }));
    }

    for i in 0..stalled_n {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop_stalling);
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            // Half a request line, then silence: the slowloris. Holds
            // the socket open until the soak ends (or the server reaps
            // it, which is the point).
            let Some(mut stream) = connect_with_retry(&addr) else {
                return; // a refused slowloris is no loss
            };
            let _ = stream.write_all(br#"{"op":"certify","sour"#);
            let _ = stream.flush();
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .ok();
            let mut buf = [0u8; 64];
            while !stop.load(Ordering::Relaxed) {
                match stream.read(&mut buf) {
                    Ok(0) => break, // server closed us: reaped
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
            let _ = i;
        }));
    }

    // Liveness: every pipelined and slow client must converge. The
    // stalled cohort just has to not take the server down.
    for w in workers.drain(..) {
        w.join().expect("soak client thread");
    }
    stop_stalling.store(true, Ordering::Relaxed);

    // The server reaped the stalled cohort (stall timeout), kept every
    // well-behaved connection working, and its counters say so.
    let stream = connect_with_retry(&addr).expect("stats connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        writeln!(writer, r#"{{"op":"stats"}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let stats = Json::parse(line.trim()).unwrap();
        if conn_stat(&stats, "stalled_closed") >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "stall timeout never reaped the slowloris cohort: {stats}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(
        conn_stat(&stats, "accepted_total") >= n as u64 / 2,
        "accepted count implausibly low: {stats}"
    );
    assert!(
        conn_stat(&stats, "pipelined_depth_max") >= 2,
        "pipelining never went multi-deep: {stats}"
    );
    println!("soak: {n} connections ({pipelined_n} pipelined, {slow_n} slow, {stalled_n} stalled)");
    println!("soak final stats: {stats}");

    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
    server.join().expect("server thread");
}

/// A stalled client can never block progress on other connections: it
/// owns no thread, and the stall timeout reaps it.
#[test]
fn stalled_client_cannot_block_other_connections() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 64,
        stall_timeout_ms: 300,
        ..ServerConfig::default()
    };
    let listener = bind_ephemeral().unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = serve_listener(listener, cfg).unwrap();

    // Connection A: half a line, then frozen.
    let mut stalled = TcpStream::connect(&addr).expect("stalled connect");
    stalled.write_all(br#"{"op":"certify","sour"#).unwrap();
    stalled.flush().unwrap();

    // Connection B, while A is mid-stall: 20 pipelined requests, all
    // answered promptly.
    let started = Instant::now();
    let mut client = PipelinedClient::new(&addr, 8, RetryPolicy::default());
    let reqs: Vec<Request> = (0..20)
        .map(|i| Request::new(Op::Certify, soak_source(i)))
        .collect();
    let replies = client
        .call_all(&reqs)
        .expect("other connections progress while a client stalls");
    assert_eq!(replies.len(), 20);
    for reply in &replies {
        let v = Json::parse(reply).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "pipelined batch took {:?} behind a stalled peer",
        started.elapsed()
    );

    // The stalled connection is reaped by the stall timeout: its socket
    // reports EOF, and the counter records why.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let reaped = Instant::now() + Duration::from_secs(10);
    loop {
        match stalled.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                assert!(Instant::now() < reaped, "stalled connection never closed");
            }
            Err(_) => break,
        }
    }

    let stream = TcpStream::connect(&addr).expect("stats connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writeln!(writer, r#"{{"op":"stats"}}"#).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let stats = Json::parse(line.trim()).unwrap();
    assert!(
        conn_stat(&stats, "stalled_closed") >= 1,
        "stall close not counted: {stats}"
    );

    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
    server.join().expect("server thread");
}
