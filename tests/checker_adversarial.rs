//! Adversarial proof-checker tests: valid proofs, surgically corrupted,
//! must be rejected at the corrupted rule.
//!
//! The Theorem-1/2 property tests show the checker accepts exactly the
//! certified corpus; these tests show *which* obligation each rule
//! enforces by violating them one at a time. The wire-certificate
//! properties at the bottom extend the same discipline to the
//! serialized form: every provable program round-trips through
//! emit/validate, and every single-character mutation that changes the
//! certificate's meaning is rejected with a structured stage error.

use proptest::prelude::*;

use secflow::cert::{emit_certificate, reseal, show_two_class, validate_certificate};
use secflow::cfm::StaticBinding;
use secflow::lang::{parse, print_program};
use secflow::lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow::logic::{check_proof, prove, Assertion, Bound, ClassExpr, Proof, Rule};
use secflow::workload::{generate, GenConfig};

type E = ClassExpr<TwoPoint>;

fn lo() -> Extended<TwoPoint> {
    Extended::Elem(TwoPoint::Low)
}

fn hi() -> Extended<TwoPoint> {
    Extended::Elem(TwoPoint::High)
}

fn proof_for(src: &str) -> (secflow::lang::Program, Proof<TwoPoint>) {
    let program = parse(src).unwrap();
    let sbind = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
    let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
    (program, proof)
}

#[test]
fn wrong_rule_for_statement_is_rejected() {
    let (program, proof) = proof_for("var x : integer; x := 1");
    // Claim the assignment is a skip.
    let forged = Proof::new(proof.pre.clone(), proof.post.clone(), Rule::SkipAxiom);
    let err = check_proof(&program.body, &forged).unwrap_err();
    assert!(err.message.contains("does not match"), "{err}");
}

#[test]
fn skip_axiom_with_strengthening_post_is_rejected() {
    let program = parse("var x : integer; skip").unwrap();
    // {x ≤ High} skip {x ≤ Low} is not an instance of the axiom.
    let pre = Assertion::state_only(vec![Bound::new(E::var(program.var("x")), E::lit(hi()))]);
    let post = Assertion::state_only(vec![Bound::new(E::var(program.var("x")), E::lit(lo()))]);
    let forged = Proof::new(pre, post, Rule::SkipAxiom);
    assert!(check_proof(&program.body, &forged).is_err());
}

#[test]
fn if_branches_with_mismatched_posts_are_rejected() {
    let (program, proof) = proof_for("var x, y : integer; if x = 0 then y := 1 else y := 2");
    let Rule::If {
        then_proof,
        else_proof,
    } = proof.rule.clone()
    else {
        panic!("expected an alternation at the root");
    };
    // Corrupt the else branch's postcondition state.
    let mut bad_else = else_proof.unwrap();
    bad_else
        .post
        .state
        .push(Bound::new(E::lit(hi()), E::lit(lo())));
    let forged = Proof::new(
        proof.pre.clone(),
        proof.post.clone(),
        Rule::If {
            then_proof,
            else_proof: Some(bad_else),
        },
    );
    let err = check_proof(&program.body, &forged).unwrap_err();
    // The corruption surfaces either at the branch's own consequence
    // wrapper (checked first) or at the alternation's premise agreement.
    assert!(
        err.rule == "alternation rule" || err.rule == "consequence rule",
        "{err}"
    );
}

#[test]
fn if_side_condition_is_enforced() {
    // Lower the branch-local bound L' below the guard's class: the side
    // condition V,L,G |- L'[local ← local ⊕ e̲] must fail.
    let (program, proof) = proof_for("var x, y : integer; if x = 0 then y := 1 else y := 2");
    let Rule::If {
        mut then_proof,
        else_proof,
    } = proof.rule.clone()
    else {
        panic!("expected an alternation");
    };
    fn lower_local(p: &mut Proof<TwoPoint>) {
        p.pre.local = Some(E::nil());
        p.post.local = Some(E::nil());
        match &mut p.rule {
            Rule::Conseq { inner } => lower_local(inner),
            _ => {
                // Leaf axiom: rewrite both ends consistently.
            }
        }
    }
    let mut else_proof = else_proof.unwrap();
    lower_local(&mut then_proof);
    lower_local(&mut else_proof);
    let forged = Proof::new(
        proof.pre.clone(),
        proof.post.clone(),
        Rule::If {
            then_proof,
            else_proof: Some(else_proof),
        },
    );
    let err = check_proof(&program.body, &forged).unwrap_err();
    // Either the inner axioms stop matching or the side condition trips;
    // both surface as alternation/consequence failures, never success.
    assert!(
        err.rule == "alternation rule" || err.rule == "consequence rule",
        "{err}"
    );
}

#[test]
fn while_requires_an_invariant_body() {
    let (program, proof) = proof_for("var x : integer; while x > 0 do x := x - 1");
    // The root is Conseq{ While }; corrupt the body's postcondition.
    let Rule::Conseq { inner } = proof.rule.clone() else {
        panic!("expected consequence at root");
    };
    let Rule::While { mut body } = inner.rule.clone() else {
        panic!("expected iteration inside");
    };
    body.post.global = Some(E::lit(Extended::Nil)); // no longer invariant
    let forged_while = Proof::new(inner.pre.clone(), inner.post.clone(), Rule::While { body });
    let forged = Proof::new(
        proof.pre.clone(),
        proof.post.clone(),
        Rule::Conseq {
            inner: Box::new(forged_while),
        },
    );
    let err = check_proof(&program.body, &forged).unwrap_err();
    // The broken invariant is caught either inside the body's consequence
    // wrapper or by the iteration rule's invariance requirement.
    assert!(
        err.rule == "iteration rule" || err.rule == "consequence rule",
        "{err}"
    );
}

#[test]
fn wait_must_raise_global() {
    // Forge a wait triple that pretends global stays nil although the
    // semaphore is High: the axiom's substitution cannot produce it.
    let program = parse("var s : semaphore; wait(s)").unwrap();
    let s = program.var("s");
    let i = vec![Bound::new(E::var(s), E::lit(hi()))];
    let unchanged = Assertion::new(i, E::lit(Extended::Nil), E::lit(Extended::Nil));
    let forged = Proof::new(unchanged.clone(), unchanged, Rule::WaitAxiom);
    let err = check_proof(&program.body, &forged).unwrap_err();
    assert_eq!(err.rule, "wait axiom");
}

#[test]
fn cobegin_interference_is_enforced() {
    // Process 2's proof privately assumes a̲ ≤ Low, but process 1 writes
    // High data into `a`: the interference check must object even though
    // each branch proof is locally fine.
    let program = parse(
        "var h, a, b : integer;
         cobegin a := h || b := 1 coend",
    )
    .unwrap();
    let (h, a, b) = (program.var("h"), program.var("a"), program.var("b"));
    let lo_e = || E::lit(lo());
    let hi_e = || E::lit(hi());

    use secflow::lang::builder::e as eb;
    use secflow::logic::check::assign_subst;

    // Branch 1: {h ≤ High, a ≤ High} a := h {same} — fine on its own.
    let b1_assn = Assertion::new(
        vec![Bound::new(E::var(h), hi_e()), Bound::new(E::var(a), hi_e())],
        lo_e(),
        lo_e(),
    );
    let b1_ax_pre = b1_assn.subst(&assign_subst(a, &eb::var(h)));
    let b1 = Proof::new(
        b1_assn.clone(),
        b1_assn.clone(),
        Rule::Conseq {
            inner: Box::new(Proof::new(b1_ax_pre, b1_assn.clone(), Rule::AssignAxiom)),
        },
    );

    // Branch 2 privately asserts a ≤ Low throughout.
    let b2_assn = Assertion::new(
        vec![Bound::new(E::var(a), lo_e()), Bound::new(E::var(b), hi_e())],
        lo_e(),
        lo_e(),
    );
    let b2_ax_pre = b2_assn.subst(&assign_subst(b, &eb::konst(1)));
    let b2 = Proof::new(
        b2_assn.clone(),
        b2_assn.clone(),
        Rule::Conseq {
            inner: Box::new(Proof::new(b2_ax_pre, b2_assn.clone(), Rule::AssignAxiom)),
        },
    );

    let pre = Assertion::new(
        vec![
            Bound::new(E::var(h), hi_e()),
            Bound::new(E::var(a), hi_e()),
            Bound::new(E::var(a), lo_e()),
            Bound::new(E::var(b), hi_e()),
        ],
        lo_e(),
        lo_e(),
    );
    let post = pre.clone();
    let forged = Proof::new(
        pre,
        post,
        Rule::Cobegin {
            branches: vec![b1, b2],
        },
    );
    let err = check_proof(&program.body, &forged).unwrap_err();
    assert_eq!(err.rule, "concurrent-execution rule");
}

#[test]
fn seq_chain_gaps_are_rejected() {
    let (program, proof) = proof_for("var x, y : integer; begin x := 1; y := x end");
    let Rule::Seq { mut parts } = proof.rule.clone() else {
        panic!("expected composition");
    };
    // Break the chain: strengthen part 2's precondition so part 1's post
    // no longer entails it.
    parts[1]
        .pre
        .state
        .push(Bound::new(E::lit(hi()), E::lit(lo())));
    let forged = Proof::new(proof.pre.clone(), proof.post.clone(), Rule::Seq { parts });
    let err = check_proof(&program.body, &forged).unwrap_err();
    assert_eq!(err.rule, "composition rule");
}

#[test]
fn conseq_cannot_weaken_the_precondition() {
    let (program, proof) = proof_for("var x, y : integer; y := x");
    // Drop the binding facts from the outer pre: it no longer entails the
    // axiom's substituted precondition.
    let weak_pre = Assertion::new(vec![], E::lit(lo()), E::lit(lo()));
    let forged = Proof::new(weak_pre, proof.post.clone(), proof.rule.clone());
    let err = check_proof(&program.body, &forged).unwrap_err();
    assert_eq!(err.rule, "consequence rule");
}

// ---- wire certificates --------------------------------------------------

/// Emits a certificate for a generated program under the constant-High
/// binding (which the CFM always certifies, so Theorem 1 always finds a
/// proof).
fn generated_certificate(seed: u64) -> (String, String) {
    let cfg = GenConfig {
        target_stmts: 12,
        ..GenConfig::default()
    };
    let program = generate(&cfg, seed);
    let source = print_program(&program);
    let program = parse(&source).expect("generated programs re-parse");
    let sbind = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
    let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).expect("Theorem 1");
    let cert = emit_certificate(&proof, &program.symbols, "two", &source, &show_two_class);
    (source, cert.text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every provable generated program round-trips: emit, then
    /// validate against the same source, without re-running the prover.
    #[test]
    fn generated_certificates_round_trip(seed in 0u64..50_000) {
        let (source, cert) = generated_certificate(seed);
        let summary = validate_certificate(&source, &cert).expect("own certificate validates");
        prop_assert_eq!(summary.lattice, "two");
        prop_assert!(cert.contains(&summary.digest));
    }

    /// Single-character mutations: any mutation that changes the
    /// certificate's canonical meaning is rejected with a structured
    /// stage error. (A mutation the parser normalizes away — one that
    /// re-serializes to the identical body — is semantically the same
    /// certificate, and accepting it is correct; the digest proves it.)
    #[test]
    fn mutated_certificates_never_validate_as_something_else(
        seed in 0u64..500,
        pos in 0usize..8192,
        replacement_byte in 0x20u8..0x7f,
    ) {
        let replacement = replacement_byte as char;
        let (source, cert) = generated_certificate(seed);
        let chars: Vec<char> = cert.chars().collect();
        let pos = pos % chars.len();
        if chars[pos] == replacement {
            return Ok(());
        }
        let mutated: String = chars[..pos]
            .iter()
            .chain(std::iter::once(&replacement))
            .chain(chars[pos + 1..].iter())
            .collect();
        let original = validate_certificate(&source, &cert).expect("original validates");
        match validate_certificate(&source, &mutated) {
            // Only a meaning-preserving mutation may still validate, and
            // the content digest is the witness that the meaning held.
            Ok(summary) => prop_assert_eq!(summary.digest, original.digest),
            Err(err) => prop_assert!(!err.stage.is_empty() && !err.message.is_empty()),
        }
    }

    /// Resealed mutations (digest recomputed over the tampered body)
    /// slip past the digest gate but never past the checker: a rule
    /// swap must die at a later stage, with the digest stage now
    /// unreachable.
    #[test]
    fn resealed_rule_swaps_are_rejected_downstream(seed in 0u64..500) {
        let (source, cert) = generated_certificate(seed);
        for (from, to) in [("\"rule\":\"assign\"", "\"rule\":\"skip\""),
                           ("\"rule\":\"seq\"", "\"rule\":\"cobegin\"")] {
            if !cert.contains(from) {
                continue;
            }
            let forged = reseal(&cert.replacen(from, to, 1)).expect("reseal parses");
            let err = validate_certificate(&source, &forged)
                .expect_err("a resealed rule swap must not validate");
            prop_assert_ne!(err.stage, "digest");
        }
    }
}
