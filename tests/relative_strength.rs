//! Experiment E4: §5.2 — the flow logic is strictly stronger than CFM.

use secflow::cfm::{certify, CheckRule};
use secflow::lattice::Extended;
use secflow::logic::examples::{relative_strength_program, relative_strength_proof};
use secflow::logic::{
    build_proof, check_proof, entails, is_completely_invariant, policy_assertion, Assertion,
};
use secflow::runtime::{check_binary_secret, ExploreLimits};

#[test]
fn cfm_rejects_via_the_direct_flow_check() {
    let (program, sbind) = relative_strength_program();
    let report = certify(&program, &sbind);
    assert!(!report.certified());
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, CheckRule::AssignDirect);
}

#[test]
fn the_papers_proof_checks_verbatim() {
    let (program, _) = relative_strength_program();
    let proof = relative_strength_proof(&program);
    check_proof(&program.body, &proof).unwrap();
}

#[test]
fn the_papers_proof_establishes_the_policy_at_every_point() {
    let (program, sbind) = relative_strength_program();
    let proof = relative_strength_proof(&program);
    let policy = Assertion::state_only(policy_assertion(&program, &sbind));
    // Every statement-level assertion entails the policy assertion, even
    // though some are strictly stronger. (Axiom-instance preconditions
    // inside consequence wrappers are substitution images, not statement
    // preconditions, so they are not policy checkpoints.)
    fn stmt_level<'p>(
        node: &'p secflow::logic::Proof<secflow::lattice::TwoPoint>,
        out: &mut Vec<&'p Assertion<secflow::lattice::TwoPoint>>,
    ) {
        out.push(&node.pre);
        out.push(&node.post);
        use secflow::logic::Rule;
        match &node.rule {
            Rule::Conseq { inner } => match &inner.rule {
                Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
                _ => stmt_level(inner, out),
            },
            Rule::Seq { parts } => parts.iter().for_each(|p| stmt_level(p, out)),
            Rule::If {
                then_proof,
                else_proof,
            } => {
                stmt_level(then_proof, out);
                if let Some(e) = else_proof {
                    stmt_level(e, out);
                }
            }
            Rule::While { body } => stmt_level(body, out),
            Rule::Cobegin { branches } => branches.iter().for_each(|p| stmt_level(p, out)),
            _ => {}
        }
    }
    let mut assertions = Vec::new();
    stmt_level(&proof, &mut assertions);
    assert!(assertions.len() >= 6, "root + two statements");
    for a in assertions {
        assert!(entails(a, &policy).unwrap(), "policy violated at {a}");
    }
}

#[test]
fn but_no_completely_invariant_proof_exists() {
    let (program, sbind) = relative_strength_program();
    // The paper's proof is not completely invariant…
    let proof = relative_strength_proof(&program);
    let i = policy_assertion(&program, &sbind);
    assert!(!is_completely_invariant(&proof, &i).unwrap());
    // …and the canonical completely-invariant candidate fails to check
    // (Theorem 2: if it checked, CFM would certify).
    let candidate = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
    assert!(check_proof(&program.body, &candidate).is_err());
}

#[test]
fn the_program_is_genuinely_noninterfering() {
    // CFM's rejection is conservative: x is overwritten before being
    // read, so no information actually flows.
    let (program, _) = relative_strength_program();
    let r = check_binary_secret(
        &program,
        program.var("x"),
        &[program.var("y")],
        ExploreLimits::default(),
    );
    assert!(!r.interferes);
}
