//! Fuzz smoke: the lexer → parser → analyzer pipeline must never
//! panic. Any byte soup, any truncation of a valid program, any
//! character mutation either parses (and then analyzes to a clean
//! `AnalysisReport`) or fails with a renderable `Diag` — there is no
//! third outcome. The test passing *is* the property: a panic anywhere
//! in the pipeline fails the harness.

use proptest::prelude::*;

use secflow::analyze::analyze;
use secflow::cert::validate_certificate;
use secflow::lang::{parse, print_program};
use secflow::server::{Json, Limits, Service};
use secflow::workload::{generate, GenConfig};

/// Drives one input through the full front-end: parse, then (on
/// success) every analysis pass; on failure, render the diagnostic
/// against the exact source that produced it (the renderer slices the
/// source by spans, so it fuzzes span arithmetic too).
fn front_end_smoke(source: &str) {
    match parse(source) {
        Ok(program) => {
            let report = analyze(&program);
            for d in &report.diags {
                // Every diagnostic must render against its own source.
                let rendered = d.render(source);
                assert!(!rendered.is_empty());
            }
        }
        Err(diag) => {
            let rendered = diag.render(source);
            assert!(!rendered.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Character soup: mostly-printable ASCII plus controls and
    /// multibyte, straight through the pipeline.
    #[test]
    fn character_soup_never_panics(source in ".{0,200}") {
        front_end_smoke(&source);
    }

    /// Raw bytes (including invalid UTF-8) as a lossy string — the
    /// replacement character must be as boring as any other char.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let source = String::from_utf8_lossy(&bytes);
        front_end_smoke(&source);
    }

    /// Truncating a valid generated program at every possible char
    /// boundary: half-finished declarations, dangling operators,
    /// unclosed cobegins.
    #[test]
    fn truncated_valid_programs_never_panic(seed in 0u64..50_000, cut in 0usize..4096) {
        let cfg = GenConfig { target_stmts: 20, ..GenConfig::default() };
        let source = print_program(&generate(&cfg, seed));
        let cut = cut.min(source.len());
        if source.is_char_boundary(cut) {
            front_end_smoke(&source[..cut]);
        }
    }

    /// Mutating one char of a valid program into an arbitrary char:
    /// single-token damage anywhere in otherwise well-formed input.
    #[test]
    fn mutated_valid_programs_never_panic(
        seed in 0u64..50_000,
        pos in 0usize..4096,
        replacement in ".{1,1}",
    ) {
        let cfg = GenConfig { target_stmts: 20, ..GenConfig::default() };
        let source = print_program(&generate(&cfg, seed));
        let chars: Vec<char> = source.chars().collect();
        if chars.is_empty() {
            return Ok(());
        }
        let pos = pos % chars.len();
        let mutated: String = chars[..pos]
            .iter()
            .chain(replacement.chars().collect::<Vec<_>>().iter())
            .chain(chars[pos + 1..].iter())
            .collect();
        front_end_smoke(&mutated);
    }

    /// Character soup as a certificate: the validator returns a
    /// structured error for any garbage, never panics.
    #[test]
    fn checkproof_soup_never_panics(cert in ".{0,300}") {
        let source = "var x : integer; x := 1";
        if let Err(err) = validate_certificate(source, &cert) {
            prop_assert!(!err.stage.is_empty());
            prop_assert!(!err.message.is_empty());
        }
    }

    /// Raw bytes (lossy-decoded) as a certificate — invalid UTF-8
    /// replacement characters are as boring as any other garbage.
    #[test]
    fn checkproof_raw_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..400)) {
        let source = "var x : integer; x := 1";
        let cert = String::from_utf8_lossy(&bytes);
        prop_assert!(validate_certificate(source, &cert).is_err());
    }

    /// The server's checkproof op over byte-soup certificates: always a
    /// well-formed JSON reply (a verdict or a protocol error), never a
    /// panic, never a crash of the service.
    #[test]
    fn server_checkproof_soup_never_panics(cert in ".{0,300}") {
        let service = Service::new(16, Limits::default());
        let req = format!(
            r#"{{"op":"checkproof","source":"var x : integer; x := 1","cert":{}}}"#,
            Json::Str(cert)
        );
        let reply = Json::parse(&service.handle_line(&req)).expect("reply is well-formed JSON");
        // Either a verdict (ok:true with valid:false for garbage) or a
        // structured protocol error — never a third shape.
        let ok = reply.get("ok").and_then(Json::as_bool).expect("ok field");
        if ok {
            prop_assert!(reply.get("valid").and_then(Json::as_bool).is_some());
        } else {
            prop_assert!(reply.get("error").is_some());
        }
    }
}
