//! Fuzz smoke: the lexer → parser → analyzer pipeline must never
//! panic. Any byte soup, any truncation of a valid program, any
//! character mutation either parses (and then analyzes to a clean
//! `AnalysisReport`) or fails with a renderable `Diag` — there is no
//! third outcome. The test passing *is* the property: a panic anywhere
//! in the pipeline fails the harness.

use proptest::prelude::*;

use secflow::analyze::analyze;
use secflow::cert::validate_certificate;
use secflow::lang::{parse, print_program};
use secflow::server::cache::canon_hash;
use secflow::server::persist::{decode_record, encode_record};
use secflow::server::{CacheKey, CachedResult, Json, Limits, Service};
use secflow::workload::{generate, GenConfig};

/// Drives one input through the full front-end: parse, then (on
/// success) every analysis pass; on failure, render the diagnostic
/// against the exact source that produced it (the renderer slices the
/// source by spans, so it fuzzes span arithmetic too).
fn front_end_smoke(source: &str) {
    match parse(source) {
        Ok(program) => {
            let report = analyze(&program);
            for d in &report.diags {
                // Every diagnostic must render against its own source.
                let rendered = d.render(source);
                assert!(!rendered.is_empty());
            }
        }
        Err(diag) => {
            let rendered = diag.render(source);
            assert!(!rendered.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Character soup: mostly-printable ASCII plus controls and
    /// multibyte, straight through the pipeline.
    #[test]
    fn character_soup_never_panics(source in ".{0,200}") {
        front_end_smoke(&source);
    }

    /// Raw bytes (including invalid UTF-8) as a lossy string — the
    /// replacement character must be as boring as any other char.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let source = String::from_utf8_lossy(&bytes);
        front_end_smoke(&source);
    }

    /// Truncating a valid generated program at every possible char
    /// boundary: half-finished declarations, dangling operators,
    /// unclosed cobegins.
    #[test]
    fn truncated_valid_programs_never_panic(seed in 0u64..50_000, cut in 0usize..4096) {
        let cfg = GenConfig { target_stmts: 20, ..GenConfig::default() };
        let source = print_program(&generate(&cfg, seed));
        let cut = cut.min(source.len());
        if source.is_char_boundary(cut) {
            front_end_smoke(&source[..cut]);
        }
    }

    /// Mutating one char of a valid program into an arbitrary char:
    /// single-token damage anywhere in otherwise well-formed input.
    #[test]
    fn mutated_valid_programs_never_panic(
        seed in 0u64..50_000,
        pos in 0usize..4096,
        replacement in ".{1,1}",
    ) {
        let cfg = GenConfig { target_stmts: 20, ..GenConfig::default() };
        let source = print_program(&generate(&cfg, seed));
        let chars: Vec<char> = source.chars().collect();
        if chars.is_empty() {
            return Ok(());
        }
        let pos = pos % chars.len();
        let mutated: String = chars[..pos]
            .iter()
            .chain(replacement.chars().collect::<Vec<_>>().iter())
            .chain(chars[pos + 1..].iter())
            .collect();
        front_end_smoke(&mutated);
    }

    /// Character soup as a certificate: the validator returns a
    /// structured error for any garbage, never panics.
    #[test]
    fn checkproof_soup_never_panics(cert in ".{0,300}") {
        let source = "var x : integer; x := 1";
        if let Err(err) = validate_certificate(source, &cert) {
            prop_assert!(!err.stage.is_empty());
            prop_assert!(!err.message.is_empty());
        }
    }

    /// Raw bytes (lossy-decoded) as a certificate — invalid UTF-8
    /// replacement characters are as boring as any other garbage.
    #[test]
    fn checkproof_raw_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..400)) {
        let source = "var x : integer; x := 1";
        let cert = String::from_utf8_lossy(&bytes);
        prop_assert!(validate_certificate(source, &cert).is_err());
    }

    /// The server's checkproof op over byte-soup certificates: always a
    /// well-formed JSON reply (a verdict or a protocol error), never a
    /// panic, never a crash of the service.
    #[test]
    fn server_checkproof_soup_never_panics(cert in ".{0,300}") {
        let service = Service::new(16, Limits::default());
        let req = format!(
            r#"{{"op":"checkproof","source":"var x : integer; x := 1","cert":{}}}"#,
            Json::Str(cert)
        );
        let reply = Json::parse(&service.handle_line(&req)).expect("reply is well-formed JSON");
        // Either a verdict (ok:true with valid:false for garbage) or a
        // structured protocol error — never a third shape.
        let ok = reply.get("ok").and_then(Json::as_bool).expect("ok field");
        if ok {
            prop_assert!(reply.get("valid").and_then(Json::as_bool).is_some());
        } else {
            prop_assert!(reply.get("error").is_some());
        }
    }

    /// The `forward` peer op over byte soup as the wrapped request
    /// line: always a well-formed reply — a relayed verdict or a
    /// structured error with a non-empty kind — never a panic.
    #[test]
    fn server_forward_soup_never_panics(inner in ".{0,300}") {
        let service = Service::new(16, Limits::default());
        let req = format!(r#"{{"op":"forward","req":{}}}"#, Json::Str(inner));
        let reply = Json::parse(&service.handle_line(&req)).expect("reply is well-formed JSON");
        let ok = reply.get("ok").and_then(Json::as_bool).expect("ok field");
        if !ok {
            let kind = reply
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .expect("structured error kind");
            prop_assert!(!kind.is_empty());
        }
    }

    /// A well-formed `forward` wrapping a certify of soup source: the
    /// inner request computes exactly as if sent directly (the reply
    /// carries the inner op), whatever the source bytes.
    #[test]
    fn server_forward_wrapped_soup_source_never_panics(source in ".{0,200}") {
        let service = Service::new(16, Limits::default());
        let inner = format!(r#"{{"op":"certify","source":{}}}"#, Json::Str(source));
        let req = format!(r#"{{"op":"forward","req":{}}}"#, Json::Str(inner));
        let reply = Json::parse(&service.handle_line(&req)).expect("reply is well-formed JSON");
        let ok = reply.get("ok").and_then(Json::as_bool).expect("ok field");
        if ok {
            prop_assert_eq!(reply.get("op").and_then(Json::as_str), Some("certify"));
        } else {
            prop_assert!(reply.get("error").is_some());
        }
    }

    /// `peer-sync` paging with arbitrary cursors and limits: the reply
    /// is always ok, and every entry it ships decodes as a journal
    /// record whose fingerprint replays from its canonical text — the
    /// serving side can never be coaxed into shipping a poisoned entry.
    #[test]
    fn server_peer_sync_paging_never_panics(
        cursor in 0u64..(1 << 53),
        limit in 0u64..(1 << 20),
    ) {
        let service = Service::new(16, Limits::default());
        service.handle_line(r#"{"op":"certify","source":"var x : integer; x := 1"}"#);
        service.handle_line(r#"{"op":"certify","source":"var y : integer; y := 2"}"#);
        let req = format!(r#"{{"op":"peer-sync","cursor":{cursor},"limit":{limit}}}"#);
        let reply = Json::parse(&service.handle_line(&req)).expect("reply is well-formed JSON");
        prop_assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let entries = reply.get("entries").and_then(Json::as_arr).expect("entries array");
        for entry in entries {
            let payload = entry.as_str().expect("entries are record strings");
            let rec = decode_record(payload.as_bytes()).expect("shipped records decode");
            prop_assert_eq!(canon_hash(&rec.key.canon), Some(rec.key.hash));
        }
    }

    /// The receiving side of journal shipping: truncating a genuine
    /// record frame anywhere mid-ship makes it undecodable, and a
    /// forged fingerprint over genuine canonical text always fails the
    /// replay check — the two gates that make cache poisoning by a
    /// lying peer impossible.
    #[test]
    fn truncated_or_forged_sync_records_never_install(
        cut in 0usize..4096,
        flip in 1u64..u64::MAX,
    ) {
        let key = CacheKey::of(&["certify", "two", "var x : integer; x := 1"]);
        let value = CachedResult {
            ok: true,
            fields: vec![("certified".to_string(), Json::Bool(true))],
        };
        let payload = encode_record(key.hash, &key.canon, &value);
        let cut = cut.min(payload.len() - 1);
        prop_assert!(decode_record(&payload[..cut]).is_none(), "truncated frame decodes");

        let forged = encode_record(key.hash ^ flip, &key.canon, &value);
        let rec = decode_record(&forged).expect("forged frame still decodes");
        prop_assert_ne!(canon_hash(&rec.key.canon), Some(rec.key.hash));
    }
}
