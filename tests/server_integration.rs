//! End-to-end tests of the certification service over real TCP
//! connections: concurrency, cache hits observable via `stats`,
//! malformed requests, fuel limits, overload shedding, and graceful
//! shutdown draining in-flight work.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use secflow::lang::print_program;
use secflow::server::{serve_tcp, Json, Limits, ServerConfig, TcpServer};
use secflow::workload::sequential_chain;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &TcpServer) -> Client {
        let writer = TcpStream::connect(server.local_addr()).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Json::parse(line.trim()).expect("response is valid JSON")),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn certify_line(id: u64, source: &str, classes: &str) -> String {
    format!(
        r#"{{"id":{id},"op":"certify","source":{},"classes":{classes}}}"#,
        Json::Str(source.to_string())
    )
}

fn chain_source(size: usize) -> String {
    print_program(&sequential_chain(size, 8))
}

fn config(workers: usize, queue: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: queue,
        cache_capacity: 1024,
        limits: Limits::default(),
        ..ServerConfig::default()
    }
}

#[test]
fn sixty_four_concurrent_clients_all_served() {
    let server = serve_tcp("127.0.0.1:0", config(4, 256)).unwrap();
    let barrier = Arc::new(Barrier::new(64));
    let mut joins = Vec::new();
    for i in 0..64u64 {
        let addr_server = server.local_addr();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let writer = TcpStream::connect(addr_server).expect("connect");
            writer
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let mut reader = BufReader::new(writer.try_clone().unwrap());
            let mut writer = writer;
            // Distinct program per client so nothing is served by the
            // cache; all 64 requests are genuinely in flight together.
            let source = chain_source(100 + i as usize);
            let line = certify_line(i, &source, r#"{}"#);
            barrier.wait();
            writeln!(writer, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            Json::parse(response.trim()).unwrap()
        }));
    }
    let mut ok = 0;
    for join in joins {
        let v = join.join().expect("client thread");
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "response: {v}"
        );
        assert_eq!(v.get("certified").and_then(Json::as_bool), Some(true));
        ok += 1;
    }
    assert_eq!(ok, 64);

    // All 64 were distinct: 64 misses, 0 hits. Now repeat one of them
    // verbatim and watch the hit counter move.
    let mut client = Client::connect(&server);
    let source = chain_source(100);
    client.send(&certify_line(900, &source, r#"{}"#));
    let v = client.recv().unwrap();
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));

    client.send(r#"{"id":901,"op":"stats"}"#);
    let stats = client.recv().unwrap();
    assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert!(stats.get("cache_misses").and_then(Json::as_u64).unwrap() >= 64);
    assert_eq!(stats.get("overloaded").and_then(Json::as_u64), Some(0));

    client.send(r#"{"id":902,"op":"shutdown"}"#);
    let ack = client.recv().unwrap();
    assert_eq!(ack.get("op").and_then(Json::as_str), Some("shutdown"));
    server.join().expect("server thread");
}

#[test]
fn malformed_fuel_limited_and_binding_errors() {
    let server = serve_tcp("127.0.0.1:0", config(2, 64)).unwrap();
    let mut client = Client::connect(&server);

    // Not JSON at all.
    client.send("certify plz");
    let v = client.recv().unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    let kind = |v: &Json| {
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(kind(&v).as_deref(), Some("protocol"));

    // Valid JSON, missing source.
    client.send(r#"{"id":1,"op":"certify"}"#);
    let v = client.recv().unwrap();
    assert_eq!(kind(&v).as_deref(), Some("protocol"));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));

    // Unparsable program.
    client.send(&certify_line(2, "var x integer x :=", r#"{}"#));
    let v = client.recv().unwrap();
    assert_eq!(kind(&v).as_deref(), Some("parse"));

    // Over-fuel program: 100+ statements against fuel 3.
    let big = chain_source(100);
    client.send(&format!(
        r#"{{"id":3,"op":"certify","source":{},"fuel":3}}"#,
        Json::Str(big)
    ));
    let v = client.recv().unwrap();
    assert_eq!(kind(&v).as_deref(), Some("fuel"));

    // Unknown variable in the binding.
    client.send(&certify_line(
        4,
        "var x : integer; x := 0",
        r#"{"ghost":"high"}"#,
    ));
    let v = client.recv().unwrap();
    assert_eq!(kind(&v).as_deref(), Some("binding"));

    // The service survived all of it.
    client.send(&certify_line(5, "var x : integer; x := 0", r#"{}"#));
    let v = client.recv().unwrap();
    assert_eq!(v.get("certified").and_then(Json::as_bool), Some(true));

    client.send(r#"{"op":"shutdown"}"#);
    client.recv().unwrap();
    server.join().unwrap();
}

#[test]
fn lint_op_returns_structured_diagnostics() {
    let server = serve_tcp("127.0.0.1:0", config(2, 64)).unwrap();
    let mut client = Client::connect(&server);

    // The §2.2 semaphore channel: lint must surface the SF010
    // may-deadlock warning, with resolved positions on every entry.
    let channel = "var x, y : integer; sem : semaphore;
cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";
    let line = format!(
        r#"{{"id":1,"op":"lint","source":{}}}"#,
        Json::Str(channel.to_string())
    );
    client.send(&line);
    let v = client.recv().unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("op").and_then(Json::as_str), Some("lint"));
    assert_eq!(v.get("clean").and_then(Json::as_bool), Some(false));
    assert!(v.get("warnings").and_then(Json::as_u64).unwrap() >= 1);
    let diags = v
        .get("diagnostics")
        .and_then(|d| d.as_arr())
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    for d in diags {
        assert!(d.get("code").and_then(Json::as_str).is_some(), "{d}");
        assert!(d.get("severity").and_then(Json::as_str).is_some(), "{d}");
        assert!(d.get("line").and_then(Json::as_u64).is_some(), "{d}");
        assert!(d.get("message").and_then(Json::as_str).is_some(), "{d}");
    }
    assert!(
        diags
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("SF010")),
        "{v}"
    );

    // A verbatim repeat is a cache hit, and the lint counter sees both.
    client.send(&line);
    let v = client.recv().unwrap();
    assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true));
    client.send(r#"{"id":2,"op":"stats"}"#);
    let stats = client.recv().unwrap();
    assert_eq!(stats.get("lint").and_then(Json::as_u64), Some(2));

    client.send(r#"{"op":"shutdown"}"#);
    client.recv().unwrap();
    server.join().unwrap();
}

#[test]
fn overload_sheds_instead_of_hanging() {
    // 1 worker, queue of 2: eight connections flooding ten requests
    // each must overflow the queue; every request still gets exactly
    // one response (ok or overloaded), promptly.
    let server = serve_tcp("127.0.0.1:0", config(1, 2)).unwrap();
    let mut joins = Vec::new();
    for c in 0..8u64 {
        let addr = server.local_addr();
        joins.push(std::thread::spawn(move || {
            let writer = TcpStream::connect(addr).unwrap();
            writer
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let mut reader = BufReader::new(writer.try_clone().unwrap());
            let mut writer = writer;
            for i in 0..10u64 {
                let source = chain_source(1500 + (c * 10 + i) as usize);
                writeln!(writer, "{}", certify_line(c * 10 + i, &source, r#"{}"#)).unwrap();
            }
            let mut ok = 0;
            let mut overloaded = 0;
            for _ in 0..10 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let v = Json::parse(line.trim()).unwrap();
                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                    ok += 1;
                } else {
                    let k = v
                        .get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    assert_eq!(k, "overloaded", "unexpected error: {v}");
                    overloaded += 1;
                }
            }
            (ok, overloaded)
        }));
    }
    let mut total_ok = 0;
    let mut total_overloaded = 0;
    for join in joins {
        let (ok, overloaded) = join.join().unwrap();
        total_ok += ok;
        total_overloaded += overloaded;
    }
    assert_eq!(total_ok + total_overloaded, 80);
    assert!(
        total_overloaded > 0,
        "a queue of 2 never overflowed under an 80-request flood"
    );

    let mut client = Client::connect(&server);
    client.send(r#"{"op":"stats"}"#);
    let stats = client.recv().unwrap();
    assert_eq!(
        stats.get("overloaded").and_then(Json::as_u64),
        Some(total_overloaded)
    );
    client.send(r#"{"op":"shutdown"}"#);
    client.recv().unwrap();
    server.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_work() {
    // Two slow workers, twenty queued jobs, then shutdown from another
    // connection: every queued job must still be answered.
    let server = serve_tcp("127.0.0.1:0", config(2, 128)).unwrap();
    let mut worker_client = Client::connect(&server);
    for i in 0..20u64 {
        let source = chain_source(2000 + i as usize);
        worker_client.send(&certify_line(i, &source, r#"{}"#));
    }
    // Give the reader thread a moment to queue them all.
    std::thread::sleep(Duration::from_millis(50));

    let mut shutdown_client = Client::connect(&server);
    shutdown_client.send(r#"{"id":"bye","op":"shutdown"}"#);
    let ack = shutdown_client.recv().unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("id").and_then(Json::as_str), Some("bye"));

    // All twenty pipelined certifications arrive despite the shutdown.
    let mut seen = 0;
    while let Some(v) = worker_client.recv() {
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "response: {v}"
        );
        seen += 1;
        if seen == 20 {
            break;
        }
    }
    assert_eq!(seen, 20, "shutdown dropped in-flight work");
    let addr = server.local_addr();
    server.join().expect("server drains and exits");

    // And the listener is actually gone.
    assert!(TcpStream::connect(addr).is_err(), "port still accepting");
}
