//! Every analysis is generic over the classification scheme: the same
//! programs certify/reject consistently across two-point, linear,
//! powerset, military, product, and user-defined named lattices.

use secflow::cfm::{certify, infer_binding, StaticBinding};
use secflow::lang::parse;
use secflow::lattice::{
    CatSet, Dual, DualScheme, Extended, Lattice, Linear, LinearScheme, Military, MilitaryScheme,
    NamedScheme, PowersetScheme, Product, ProductScheme, Scheme, TwoPoint, TwoPointScheme,
};
use secflow::logic::{check_proof, prove};

const CHANNEL: &str = "var src, dst : integer; sem : semaphore;
cobegin if src = 0 then signal(sem) || begin wait(sem); dst := 0 end coend";

/// Generic driver: with src above dst the channel is rejected, with
/// src ≤ everything it certifies, and Theorem 1 yields a checked proof.
fn exercise<S: Scheme>(scheme: &S, src_class: S::Elem, chain_class: S::Elem)
where
    S::Elem: Lattice + std::fmt::Display,
{
    let program = parse(CHANNEL).unwrap();
    let (src, dst, sem) = (program.var("src"), program.var("dst"), program.var("sem"));

    // src strictly above the rest: rejected (the guard dominates sem).
    assert!(
        scheme.low().leq(&src_class) && scheme.low() != src_class,
        "test premise: src_class must be above low"
    );
    let reject = StaticBinding::uniform(&program.symbols, scheme).with(src, src_class.clone());
    assert!(!certify(&program, &reject).certified());

    // Whole chain at one level: certified + provable.
    let accept = StaticBinding::uniform(&program.symbols, scheme)
        .with(src, chain_class.clone())
        .with(sem, chain_class.clone())
        .with(dst, chain_class.clone());
    assert!(certify(&program, &accept).certified());
    let proof = prove(&program, &accept, Extended::Nil, Extended::Nil).unwrap();
    check_proof(&program.body, &proof).unwrap();

    // Inference lifts the chain from the pinned source.
    let least = infer_binding(&program, scheme, [(src, src_class.clone())]).unwrap();
    assert!(src_class.leq(least.class(sem)));
    assert!(src_class.leq(least.class(dst)));
    assert!(certify(&program, &least).certified());
}

#[test]
fn two_point() {
    exercise(&TwoPointScheme, TwoPoint::High, TwoPoint::High);
}

#[test]
fn linear_chain() {
    let s = LinearScheme::new(5).unwrap();
    exercise(&s, Linear(3), Linear(4));
}

#[test]
fn powerset_compartments() {
    let s = PowersetScheme::new(4).unwrap();
    exercise(&s, CatSet(0b0110), CatSet(0b1111));
}

#[test]
fn military_classifications() {
    let s = MilitaryScheme::new(3, 2).unwrap();
    exercise(
        &s,
        Military::new(1, CatSet(0b01)),
        Military::new(2, CatSet(0b11)),
    );
}

#[test]
fn product_of_schemes() {
    let s = ProductScheme::new(TwoPointScheme, LinearScheme::new(3).unwrap());
    exercise(
        &s,
        Product(TwoPoint::High, Linear(1)),
        Product(TwoPoint::High, Linear(2)),
    );
}

#[test]
fn user_defined_named_lattice() {
    let s = NamedScheme::build(
        &["public", "finance", "engineering", "board"],
        &[
            ("public", "finance"),
            ("public", "engineering"),
            ("finance", "board"),
            ("engineering", "board"),
        ],
    )
    .unwrap();
    let fin = s.elem("finance").unwrap();
    let board = s.elem("board").unwrap();
    exercise(&s, fin, board);
}

#[test]
fn biba_integrity_via_the_dual_lattice() {
    // Integrity is confidentiality over the dual order: untrusted
    // (dual-high) data must not flow into a trusted (dual-low) sink.
    let s = DualScheme::new(TwoPointScheme);
    let untrusted = Dual(TwoPoint::Low); // dual-high: Low integrity
    let trusted = Dual(TwoPoint::High); // dual-low: High integrity
    let p = parse("var input, config : integer; config := input").unwrap();

    // Untrusted input into a trusted config: rejected.
    let bad = StaticBinding::uniform(&p.symbols, &s)
        .with(p.var("input"), untrusted.clone())
        .with(p.var("config"), trusted.clone());
    assert!(!certify(&p, &bad).certified());

    // Trusted input into an untrusted sink: fine (integrity may degrade).
    let ok = StaticBinding::uniform(&p.symbols, &s)
        .with(p.var("input"), trusted)
        .with(p.var("config"), untrusted);
    assert!(certify(&p, &ok).certified());

    // And the full exercise battery works over the dual scheme too.
    exercise(&s, Dual(TwoPoint::Low), Dual(TwoPoint::Low));
}

#[test]
fn incomparable_compartments_block_flows() {
    // finance-classified data cannot flow into an engineering container,
    // even though neither dominates the other.
    let s = NamedScheme::build(
        &["public", "finance", "engineering", "board"],
        &[
            ("public", "finance"),
            ("public", "engineering"),
            ("finance", "board"),
            ("engineering", "board"),
        ],
    )
    .unwrap();
    let p = parse("var a, b : integer; b := a").unwrap();
    let binding = StaticBinding::uniform(&p.symbols, &s)
        .with(p.var("a"), s.elem("finance").unwrap())
        .with(p.var("b"), s.elem("engineering").unwrap());
    assert!(!certify(&p, &binding).certified());
    // The least repair is the join: board.
    let least = infer_binding(&p, &s, [(p.var("a"), s.elem("finance").unwrap())]).unwrap();
    assert_eq!(least.class(p.var("b")).name(), "finance");
}

#[test]
fn cross_lattice_verdicts_are_order_isomorphic() {
    // Embedding Low/High as L0/L(n-1) of any chain preserves verdicts.
    let p = parse(CHANNEL).unwrap();
    let (src, dst, sem) = (p.var("src"), p.var("dst"), p.var("sem"));
    for assignment in 0u8..8 {
        let pick2 = |bit: bool| if bit { TwoPoint::High } else { TwoPoint::Low };
        let pickn = |bit: bool| if bit { Linear(6) } else { Linear(0) };
        let bits = [
            assignment & 1 != 0,
            assignment & 2 != 0,
            assignment & 4 != 0,
        ];
        let b2 = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
            .with(src, pick2(bits[0]))
            .with(sem, pick2(bits[1]))
            .with(dst, pick2(bits[2]));
        let s7 = LinearScheme::new(7).unwrap();
        let bn = StaticBinding::uniform(&p.symbols, &s7)
            .with(src, pickn(bits[0]))
            .with(sem, pickn(bits[1]))
            .with(dst, pickn(bits[2]));
        assert_eq!(
            certify(&p, &b2).certified(),
            certify(&p, &bn).certified(),
            "assignment {assignment:03b}"
        );
    }
}
