//! Robustness regressions over real TCP: structured timeouts under
//! deadline pressure, bounded request lines, panic-safe replies, and
//! the retrying client riding out dropped connections.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use secflow::lang::print_program;
use secflow::server::{
    serve_tcp, FaultPlan, Json, Op, RemoteClient, Request, RetryPolicy, ServerConfig, TcpServer,
};
use secflow::workload::dining_philosophers;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &TcpServer) -> Client {
        let writer = TcpStream::connect(server.local_addr()).expect("connect");
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Json::parse(line.trim()).expect("response is valid JSON")),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn error_kind(v: &Json) -> Option<&str> {
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

fn shutdown(server: TcpServer, client: &mut Client) {
    client.send(r#"{"op":"shutdown"}"#);
    let _ = client.recv();
    server.join().expect("server thread");
}

/// A deadline expiring mid-exploration comes back as a structured
/// `timeout` error, promptly (within 2x the deadline, with scheduling
/// slack), not after the full search.
#[test]
fn explore_deadline_returns_structured_timeout_promptly() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(&server);

    // Unordered dining philosophers: an interleaving space vastly
    // larger than any state cap, so only the deadline can stop it.
    let source = print_program(&dining_philosophers(3, 50, false));
    const DEADLINE_MS: u64 = 200;
    let req = format!(
        r#"{{"id":1,"op":"explore","source":{},"max_states":1000000,"timeout_ms":{DEADLINE_MS}}}"#,
        Json::Str(source)
    );
    let start = Instant::now();
    client.send(&req);
    let v = client.recv().unwrap();
    let elapsed = start.elapsed();
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected a timeout error, got: {v}"
    );
    assert_eq!(error_kind(&v), Some("timeout"), "response: {v}");
    assert!(
        elapsed <= Duration::from_millis(2 * DEADLINE_MS),
        "timeout reply took {elapsed:?} against a {DEADLINE_MS} ms deadline"
    );

    shutdown(server, &mut client);
}

/// An over-long request line is refused with a structured `protocol`
/// error, bounded memory is retained, and the same connection keeps
/// working afterwards.
#[test]
fn oversized_line_is_rejected_and_connection_survives() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 0,
        max_line_bytes: 1024,
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(&server);

    // 64 KiB of garbage on one line: far past the 1 KiB cap.
    let huge = "x".repeat(64 * 1024);
    client.send(&huge);
    let v = client.recv().unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&v), Some("protocol"), "response: {v}");
    assert!(
        v.get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap()
            .contains("exceeds"),
        "response: {v}"
    );

    // The stream resynchronized at the newline: a normal request on the
    // same connection is served.
    client.send(r#"{"id":2,"op":"stats"}"#);
    let v = client.recv().unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));

    shutdown(server, &mut client);
}

/// A worker that panics mid-request still answers: the reply guard
/// degrades the panic to a structured (retryable) `internal` error, and
/// the supervisor respawns the worker.
#[test]
fn injected_worker_panic_yields_internal_error_not_a_hang() {
    let mut plan = FaultPlan::new(11);
    plan.panic_per_mille = 1000;
    plan.max_faults = 1; // exactly the first pooled job panics
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 0,
        chaos: Some(Arc::new(plan)),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(&server);

    client.send(r#"{"id":1,"op":"certify","source":"var x : integer; x := 1"}"#);
    let v = client.recv().expect("a reply despite the worker panic");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&v), Some("internal"), "response: {v}");

    // The fault fuse is spent; the identical retry succeeds.
    client.send(r#"{"id":2,"op":"certify","source":"var x : integer; x := 1"}"#);
    let v = client.recv().unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");

    shutdown(server, &mut client);
}

/// The retrying client succeeds against a server that drops the first N
/// connection attempts on the floor.
#[test]
fn retrying_client_rides_out_dropped_connections() {
    let mut plan = FaultPlan::new(7);
    plan.drop_connects = 3;
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 0,
        chaos: Some(Arc::new(plan)),
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = RemoteClient::new(
        &addr,
        RetryPolicy {
            budget: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            io_timeout: Some(Duration::from_secs(10)),
            seed: 3,
        },
    );
    let req = Request::new(Op::Certify, "var x : integer; x := 1");
    let response = client.call(&req).expect("retries ride out the drops");
    let v = Json::parse(&response).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(
        client.attempts(),
        4,
        "exactly the three dropped connects cost extra attempts"
    );

    // Shut down over a plain connection (the drop budget is spent).
    let mut raw = Client::connect(&server);
    shutdown(server, &mut raw);
}
