//! Differential crash-recovery tests for the durable result store.
//!
//! The paper's §6 determinism argument makes cached verdicts
//! permanently valid, so a crashed-and-restarted server must be able to
//! answer everything it ever answered — from disk, with byte-identical
//! replies, without re-running a single certification or exploration.
//! These tests exercise that property in-process (the subprocess
//! `kill -9` variant lives in `crates/cli/tests/crash_recovery.rs`):
//!
//! - warm start answers the full corpus from disk, `cached:true`,
//!   byte-identical modulo the `us` timing field, with zero explored
//!   states;
//! - LRU-evicted entries stay recoverable from the journal until a
//!   compaction drops them (the documented DESIGN §10 semantics);
//! - a flipped byte costs exactly one frame, never the store.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use secflow::server::{DurableStore, FsyncMode, Json, Limits, PersistConfig, Service};

const LEAKY: &str = "var x, y : integer; sem : semaphore;
    cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";
const CLEAN: &str = "var a, b : integer; begin a := 1; b := a end";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secflow-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A service backed by a store in `dir`, `fsync always` so a dropped
/// service loses nothing (the in-process stand-in for `kill -9`:
/// `Drop` does no graceful flush the journal would depend on).
fn service_in(dir: &Path, capacity: usize, journal_max_bytes: u64) -> Service {
    let cfg = PersistConfig {
        journal_max_bytes,
        fsync: FsyncMode::Always,
        ..PersistConfig::new(dir)
    };
    Service::with_persist(
        capacity,
        Limits::default(),
        DurableStore::open(cfg).unwrap(),
    )
}

/// A corpus covering every cacheable op plus a cached *failure* (the
/// parse error): certify (leaky + clean), infer, flows, lint, explore.
fn corpus() -> Vec<String> {
    let src = |s: &str| Json::Str(s.to_string());
    vec![
        format!(
            r#"{{"id":1,"op":"certify","source":{},"classes":{{"x":"high"}}}}"#,
            src(LEAKY)
        ),
        format!(r#"{{"id":2,"op":"certify","source":{}}}"#, src(CLEAN)),
        format!(
            r#"{{"id":3,"op":"infer","source":{},"pins":{{"x":"high","y":"low"}}}}"#,
            src(LEAKY)
        ),
        format!(
            r#"{{"id":4,"op":"flows","source":{},"dot":true}}"#,
            src(LEAKY)
        ),
        format!(r#"{{"id":5,"op":"lint","source":{}}}"#, src(LEAKY)),
        format!(
            r#"{{"id":6,"op":"explore","source":{},"inputs":{{"x":1}}}}"#,
            src(LEAKY)
        ),
        format!(
            r#"{{"id":7,"op":"certify","source":{}}}"#,
            src("var x integer; x := ")
        ),
    ]
}

/// Drops the per-response `us` timing field (the one legitimately
/// non-deterministic reply byte) at every nesting level.
fn strip_us(v: &Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "us")
                .map(|(k, val)| (k.clone(), strip_us(val)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_us).collect()),
        other => other.clone(),
    }
}

fn normalized(line: &str) -> String {
    strip_us(&Json::parse(line).expect("reply parses")).to_string()
}

fn persist_stat(service: &Service, field: &str) -> f64 {
    let stats = Json::parse(&service.handle_line(r#"{"op":"stats"}"#)).unwrap();
    match stats.get("persist").and_then(|p| p.get(field)) {
        Some(Json::Num(n)) => *n,
        other => panic!("persist.{field} missing: {other:?}"),
    }
}

#[test]
fn warm_start_answers_the_corpus_from_disk_byte_identically() {
    let dir = tmp_dir("differential");
    let corpus = corpus();

    // Cold server: first pass computes, second pass is the cached
    // baseline a warm reply must match byte-for-byte.
    let cold = service_in(&dir, 64, 8 << 20);
    for line in &corpus {
        cold.handle_line(line);
    }
    let baseline: Vec<String> = corpus
        .iter()
        .map(|l| normalized(&cold.handle_line(l)))
        .collect();
    assert!(
        baseline.iter().all(|r| r.contains(r#""cached":true"#)),
        "second pass must be fully cached"
    );
    drop(cold); // the crash: no graceful shutdown path exists to rely on

    // Warm server in the same directory.
    let warm = service_in(&dir, 64, 8 << 20);
    assert_eq!(
        persist_stat(&warm, "entries_recovered") as usize,
        corpus.len(),
        "every corpus entry recovers"
    );
    assert_eq!(persist_stat(&warm, "frames_skipped"), 0.0);
    let warm_replies: Vec<String> = corpus
        .iter()
        .map(|l| normalized(&warm.handle_line(l)))
        .collect();
    assert_eq!(warm_replies, baseline, "warm replies are byte-identical");

    // Zero re-explorations and zero misses: the whole corpus came from
    // disk, not from re-running the state-space search.
    assert_eq!(warm.metrics.explore_states.load(Relaxed), 0);
    assert_eq!(warm.metrics.cache_misses.load(Relaxed), 0);
    assert_eq!(warm.metrics.cache_hits.load(Relaxed), corpus.len() as u64);
}

#[test]
fn warm_start_reserves_certificates_with_zero_reproving() {
    let dir = tmp_dir("certificates");
    // A program the CFM certifies (CLEAN above is the corpus's cached
    // parse *failure* — two top-level statements — not a real program).
    let provable = "var x, y : integer; cobegin y := x || x := 1 coend";
    let with_proof = format!(
        r#"{{"op":"certify","source":{},"with_proof":true}}"#,
        Json::Str(provable.to_string())
    );

    // Cold: emit a certificate, then validate it through the server.
    let cold = service_in(&dir, 64, 8 << 20);
    let reply = Json::parse(&cold.handle_line(&with_proof)).unwrap();
    let cert = reply
        .get("certificate")
        .and_then(Json::as_str)
        .expect("cold reply carries a certificate")
        .to_string();
    let checkproof = format!(
        r#"{{"op":"checkproof","source":{},"cert":{}}}"#,
        Json::Str(provable.to_string()),
        Json::Str(cert.clone())
    );
    let verdict = Json::parse(&cold.handle_line(&checkproof)).unwrap();
    assert_eq!(verdict.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(cold.metrics.proofs_emitted.load(Relaxed), 1);
    drop(cold); // the crash

    // Warm: both replies come from disk — same certificate bytes, valid
    // verdict, and the prover/validator never ran (zero re-proving).
    let warm = service_in(&dir, 64, 8 << 20);
    let reply = Json::parse(&warm.handle_line(&with_proof)).unwrap();
    assert_eq!(reply.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        reply.get("certificate").and_then(Json::as_str),
        Some(cert.as_str()),
        "the warm certificate is byte-identical"
    );
    let verdict = Json::parse(&warm.handle_line(&checkproof)).unwrap();
    assert_eq!(verdict.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(verdict.get("valid").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.metrics.proofs_emitted.load(Relaxed),
        0,
        "warm start re-serves proofs without re-proving"
    );
    assert_eq!(warm.metrics.checkproof_valid.load(Relaxed), 0);
    assert_eq!(warm.metrics.checkproof_cache_hits.load(Relaxed), 1);

    // The offline store inspection sees the certificate-bearing entry.
    let report = secflow::server::inspect_store(&dir).unwrap();
    assert_eq!(report.cert_entries(), 1);
}

/// Warm start *from a peer* instead of from local disk: a cold node
/// with no store of its own drains a loaded peer's cache over
/// `peer-sync` (journal shipping over TCP, DESIGN §14) and then
/// answers the peer's whole corpus `cached:true`, byte-identically,
/// without re-proving a certificate or re-exploring a state space.
#[test]
fn warm_start_from_peer_ships_the_journal_without_recompute() {
    let dir_a = tmp_dir("peer-warm");
    let mut corpus = corpus();
    // Include a certificate-bearing entry so the zero-re-proving claim
    // has something to bite on.
    let provable = "var x, y : integer; cobegin y := x || x := 1 coend";
    corpus.push(format!(
        r#"{{"op":"certify","source":{},"with_proof":true}}"#,
        Json::Str(provable.to_string())
    ));

    // Node A computes the corpus once; the second pass is the cached
    // baseline the synced node must reproduce byte-for-byte.
    let a = service_in(&dir_a, 64, 8 << 20);
    for line in &corpus {
        a.handle_line(line);
    }
    let baseline: Vec<String> = corpus
        .iter()
        .map(|l| normalized(&a.handle_line(l)))
        .collect();
    assert!(baseline.iter().all(|r| r.contains(r#""cached":true"#)));
    drop(a);

    // Serve A's store over TCP on an ephemeral port.
    let cfg = secflow::server::ServerConfig {
        persist: Some(PersistConfig {
            fsync: FsyncMode::Always,
            ..PersistConfig::new(&dir_a)
        }),
        ..Default::default()
    };
    let listener = secflow::server::bind_ephemeral().unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = secflow::server::serve_listener(listener, cfg).unwrap();

    // Node B: fresh, diskless, empty. One sync drains the peer.
    let b = Service::new(64, Limits::default());
    let report = secflow::server::sync_from_peer(&b, &addr, Duration::from_secs(10))
        .expect("peer sync succeeds");
    assert_eq!(report.entries_rejected, 0, "genuine records all verify");
    assert_eq!(report.entries_installed as usize, corpus.len());
    assert!(report.pages >= 1);
    assert_eq!(b.cache_len(), corpus.len());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutdown"), "ack: {ack}");
    server.join().expect("server thread");

    // B answers everything cached and byte-identical to the peer's own
    // cached replies — and never computed anything to do it.
    let synced: Vec<String> = corpus
        .iter()
        .map(|l| normalized(&b.handle_line(l)))
        .collect();
    assert_eq!(synced, baseline, "synced replies are byte-identical");
    assert!(synced.iter().all(|r| r.contains(r#""cached":true"#)));
    assert_eq!(b.metrics.proofs_emitted.load(Relaxed), 0, "no re-proving");
    assert_eq!(b.metrics.explore_states.load(Relaxed), 0, "no re-exploring");
    assert_eq!(b.metrics.cache_misses.load(Relaxed), 0);
    assert_eq!(b.metrics.cache_hits.load(Relaxed), corpus.len() as u64);
    assert_eq!(
        b.metrics.cluster_peer_syncs.load(Relaxed),
        0,
        "the client side of a sync is not a served peer-sync op"
    );
}

#[test]
fn evicted_entries_survive_in_the_journal_until_compaction() {
    let dir = tmp_dir("eviction");
    let certify = |tag: &str| {
        format!(
            r#"{{"op":"certify","source":{}}}"#,
            Json::Str(format!("var v{tag} : integer; v{tag} := {}", tag.len()))
        )
    };

    // Capacity 2, compaction disabled (journal_max_bytes = 0): the
    // third insert evicts the first from memory, but its journal record
    // remains.
    let small = service_in(&dir, 2, 0);
    for tag in ["a", "bb", "ccc"] {
        small.handle_line(&certify(tag));
    }
    assert_eq!(small.cache_len(), 2);
    drop(small);

    // A roomier restart recovers all three — eviction lost nothing
    // durable.
    let roomy = service_in(&dir, 8, 0);
    assert_eq!(persist_stat(&roomy, "entries_recovered"), 3.0);
    for tag in ["a", "bb", "ccc"] {
        let v = Json::parse(&roomy.handle_line(&certify(tag))).unwrap();
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(true), "{tag}");
    }
    drop(roomy);

    // Now a tight journal budget: the next miss triggers a compaction,
    // whose snapshot holds only the 2 entries live in the small cache.
    // The journal's memory of the evicted entries is gone — by design.
    let compacting = service_in(&dir, 2, 1);
    compacting.handle_line(&certify("dddd"));
    assert!(persist_stat(&compacting, "compactions") >= 1.0);
    drop(compacting);

    let after = service_in(&dir, 8, 0);
    assert_eq!(
        persist_stat(&after, "entries_recovered"),
        2.0,
        "compaction keeps exactly the live cache"
    );
}

#[test]
fn flipped_byte_costs_one_frame_and_the_rest_recovers() {
    let dir = tmp_dir("corruption");
    let corpus = corpus();
    let cold = service_in(&dir, 64, 8 << 20);
    for line in &corpus {
        cold.handle_line(line);
    }
    drop(cold);

    let journal = dir.join("journal.wal");
    let mut bytes = std::fs::read(&journal).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&journal, &bytes).unwrap();

    let warm = service_in(&dir, 64, 8 << 20);
    assert_eq!(persist_stat(&warm, "frames_skipped"), 1.0);
    assert_eq!(
        persist_stat(&warm, "entries_recovered") as usize,
        corpus.len() - 1,
        "exactly the flipped frame is lost"
    );
    // Every request still answers ok; the lost one recomputes.
    let mut recomputed = 0;
    for line in &corpus {
        let v = Json::parse(&warm.handle_line(line)).unwrap();
        if v.get("cached").and_then(Json::as_bool) == Some(false) {
            recomputed += 1;
        }
    }
    assert_eq!(recomputed, 1, "one miss, everything else from disk");
}
