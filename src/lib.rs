//! `secflow` — a reproduction of *Reitman, "A Mechanism for Information
//! Control in Parallel Systems", SOSP 1979*.
//!
//! The paper extends the Denning–Denning compile-time information-flow
//! certification mechanism to parallel programs with semaphore
//! synchronization and possibly non-terminating loops: the **Concurrent
//! Flow Mechanism (CFM)**. This workspace implements the full system:
//!
//! | Piece | Crate | Facade module |
//! |---|---|---|
//! | Security lattices (Defs. 1/4) | `secflow-lattice` | [`lattice`] |
//! | The parallel language (§2.0) | `secflow-lang` | [`lang`] |
//! | CFM + Denning baseline (Fig. 2) | `secflow-core` | [`cfm`] |
//! | The flow logic (Fig. 1, Thms. 1–2) | `secflow-logic` | [`logic`] |
//! | Proof certificates (wire format) | `secflow-cert` | [`cert`] |
//! | Static analysis & lint (SF-codes) | `secflow-analyze` | [`analyze`] |
//! | Interpreter/explorer/monitor | `secflow-runtime` | [`runtime`] |
//! | Paper programs & generators | `secflow-workload` | [`workload`] |
//! | Certification service (pool/cache) | `secflow-server` | [`server`] |
//!
//! # Quick start
//!
//! ```
//! use secflow::cfm::{certify, StaticBinding};
//! use secflow::lang::parse;
//! use secflow::lattice::{TwoPoint, TwoPointScheme};
//!
//! // The §2.2 synchronization channel: x leaks to y through a semaphore.
//! let program = parse(
//!     "var x, y : integer; sem : semaphore;
//!      cobegin
//!        if x = 0 then signal(sem)
//!      ||
//!        begin wait(sem); y := 0 end
//!      coend",
//! )
//! .unwrap();
//!
//! let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
//!     .with(program.var("x"), TwoPoint::High);
//! let report = certify(&program, &binding);
//! assert!(!report.certified());
//! println!("{}", report.render(""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Security classification lattices (re-export of `secflow-lattice`).
pub mod lattice {
    pub use secflow_lattice::*;
}

/// The parallel language front-end (re-export of `secflow-lang`).
pub mod lang {
    pub use secflow_lang::*;
}

/// The Concurrent Flow Mechanism and the Denning–Denning baseline
/// (re-export of `secflow-core`).
pub mod cfm {
    pub use secflow_core::*;
}

/// Static analysis passes and unified lint diagnostics
/// (re-export of `secflow-analyze`).
pub mod analyze {
    pub use secflow_analyze::*;
}

/// The flow logic: assertions, proofs, checker, Theorem 1 prover
/// (re-export of `secflow-logic`).
pub mod logic {
    pub use secflow_logic::*;
}

/// Verifiable proof certificates: canonical wire format, content
/// digests, standalone validator (re-export of `secflow-cert`).
pub mod cert {
    pub use secflow_cert::*;
}

/// Interpreter, schedulers, interleaving explorer, taint monitor,
/// noninterference harness (re-export of `secflow-runtime`).
pub mod runtime {
    pub use secflow_runtime::*;
}

/// Paper programs, program families and random generation
/// (re-export of `secflow-workload`).
pub mod workload {
    pub use secflow_workload::*;
}

/// The certification service: JSON-lines protocol, worker pool, result
/// cache, metrics (re-export of `secflow-server`).
pub mod server {
    pub use secflow_server::*;
}
