//! Static bindings: the fixed association of variables to security classes.
//!
//! Definition 3 of the paper: a *static binding* `sbind` maps every
//! variable, constant and expression of a program to a security class; the
//! binding of a constant is `low` and the binding of `e1 op e2` is
//! `sbind(e1) ⊕ sbind(e2)`. Only the variable classes are free — this
//! module stores those densely by [`VarId`] and derives expression classes.

use secflow_lang::{Expr, Program, SymbolTable, VarId};
use secflow_lattice::{Lattice, Scheme};

/// A static binding for a given program's variables.
///
/// # Examples
///
/// ```
/// use secflow_core::StaticBinding;
/// use secflow_lang::parse;
/// use secflow_lattice::{TwoPoint, TwoPointScheme};
///
/// let p = parse("var x, y : integer; y := x").unwrap();
/// let sbind = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
///     .with(p.var("x"), TwoPoint::High);
/// assert_eq!(*sbind.class(p.var("x")), TwoPoint::High);
/// assert_eq!(*sbind.class(p.var("y")), TwoPoint::Low);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StaticBinding<L> {
    classes: Vec<L>,
    low: L,
}

impl<L: Lattice> StaticBinding<L> {
    /// Binds every declared name to `scheme.low()`.
    pub fn uniform<S: Scheme<Elem = L>>(symbols: &SymbolTable, scheme: &S) -> Self {
        Self::constant(symbols, scheme, scheme.low())
    }

    /// Binds every declared name to `class`.
    pub fn constant<S: Scheme<Elem = L>>(symbols: &SymbolTable, scheme: &S, class: L) -> Self {
        StaticBinding {
            classes: vec![class; symbols.len()],
            low: scheme.low(),
        }
    }

    /// Builds a binding from `(name, class)` pairs, defaulting the rest to
    /// `scheme.low()`.
    ///
    /// Returns `Err(name)` for the first pair naming an undeclared
    /// variable.
    pub fn from_pairs<'a, S: Scheme<Elem = L>>(
        symbols: &SymbolTable,
        scheme: &S,
        pairs: impl IntoIterator<Item = (&'a str, L)>,
    ) -> Result<Self, String> {
        let mut b = Self::uniform(symbols, scheme);
        for (name, class) in pairs {
            let id = symbols.lookup(name).ok_or_else(|| name.to_string())?;
            b.set(id, class);
        }
        Ok(b)
    }

    /// Sets the class of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range for the program this binding was
    /// built for.
    pub fn set(&mut self, var: VarId, class: L) {
        self.classes[var.index()] = class;
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, var: VarId, class: L) -> Self {
        self.set(var, class);
        self
    }

    /// The class bound to `var`.
    pub fn class(&self, var: VarId) -> &L {
        &self.classes[var.index()]
    }

    /// The class of constants (the scheme's `low`).
    pub fn low(&self) -> &L {
        &self.low
    }

    /// The class of an expression: `low` joined with the classes of every
    /// variable read (Definition 3).
    pub fn expr_class(&self, expr: &Expr) -> L {
        let mut acc = self.low.clone();
        expr.for_each_var(&mut |v| acc = acc.join(self.class(v)));
        acc
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` iff the program declared no names.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(var, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &L)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, l)| (VarId(i as u32), l))
    }

    /// Renders the binding as `name: class` lines using `program`'s names.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (id, info) in program.symbols.iter() {
            out.push_str(&format!("{}: {}\n", info.name, self.class(id)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn program() -> Program {
        parse("var x, y, z : integer; s : semaphore; y := x + z").unwrap()
    }

    #[test]
    fn uniform_is_all_low() {
        let p = program();
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        for (_, c) in b.iter() {
            assert_eq!(*c, TwoPoint::Low);
        }
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn from_pairs_sets_named_classes() {
        let p = program();
        let b = StaticBinding::from_pairs(
            &p.symbols,
            &TwoPointScheme,
            [("x", TwoPoint::High), ("s", TwoPoint::High)],
        )
        .unwrap();
        assert_eq!(*b.class(p.var("x")), TwoPoint::High);
        assert_eq!(*b.class(p.var("y")), TwoPoint::Low);
        assert_eq!(*b.class(p.var("s")), TwoPoint::High);
    }

    #[test]
    fn from_pairs_rejects_unknown_names() {
        let p = program();
        let err = StaticBinding::from_pairs(&p.symbols, &TwoPointScheme, [("w", TwoPoint::High)])
            .unwrap_err();
        assert_eq!(err, "w");
    }

    #[test]
    fn expr_class_joins_variable_classes() {
        let p = program();
        let b =
            StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("z"), TwoPoint::High);
        match &p.body {
            secflow_lang::Stmt::Assign { expr, .. } => {
                assert_eq!(b.expr_class(expr), TwoPoint::High);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn expr_class_of_constant_is_low() {
        let p = parse("var x : integer; x := 7").unwrap();
        let b = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
        match &p.body {
            secflow_lang::Stmt::Assign { expr, .. } => {
                assert_eq!(b.expr_class(expr), TwoPoint::Low);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn render_lists_every_name() {
        let p = program();
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        let r = b.render(&p);
        for name in ["x", "y", "z", "s"] {
            assert!(r.contains(&format!("{name}: Low")), "{r}");
        }
    }
}
