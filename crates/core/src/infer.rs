//! Least-restrictive binding inference.
//!
//! Every CFM check in Figure 2 has the form `join(…sbind(u)…) ≤ mod(S)`,
//! and `mod(S)` is a meet of variable bindings, so each check decomposes
//! into *atomic constraints* `sbind(u) ≤ sbind(v)`. Given a program, a
//! lattice, and classes for some *pinned* variables (typically the inputs
//! and outputs the policy cares about), this module computes the least
//! binding of the remaining variables that certifies the program — or
//! proves that none exists by exhibiting an unsatisfiable pinned pair.
//!
//! This answers the practical question the paper's §4.3 works out by hand
//! for Figure 3: the three conditions `sbind(x) ≤ sbind(modify)`,
//! `sbind(modify) ≤ sbind(m)` and `sbind(m) ≤ sbind(y)` are exactly the
//! constraint chain the solver discovers, and their composition
//! `sbind(x) ≤ sbind(y)` is the unsatisfiable pin when `x` is High and
//! `y` Low.

use std::collections::BTreeSet;

use secflow_lang::{Program, Stmt, VarId};
use secflow_lattice::{Lattice, Scheme};

use crate::binding::StaticBinding;
use crate::cfm::certify;

/// An atomic flow constraint `sbind(from) ≤ sbind(to)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Constraint {
    /// Source variable.
    pub from: VarId,
    /// Destination variable.
    pub to: VarId,
}

/// Why no certifying binding exists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Unsatisfiable<L> {
    /// The pinned variable whose class would have to rise.
    pub var: VarId,
    /// Its pinned class.
    pub pinned: L,
    /// The least class the constraints force on it.
    pub required: L,
    /// A witness chain of flow constraints ending at [`var`](Self::var):
    /// each adjacent pair is an atomic `sbind(a) ≤ sbind(b)` constraint,
    /// and the first element is a pinned variable whose class started the
    /// escalation — for Figure 3 this is the paper's
    /// `x → modify → m → y` chain.
    pub path: Vec<VarId>,
}

impl<L: std::fmt::Display> Unsatisfiable<L> {
    /// Renders the witness chain with source names.
    pub fn render_path(&self, program: &Program) -> String {
        self.path
            .iter()
            .map(|v| program.symbols.name(*v))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl<L: std::fmt::Display> std::fmt::Display for Unsatisfiable<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "variable #{} is pinned at {} but the program forces at least {}",
            self.var.0, self.pinned, self.required
        )
    }
}

/// Extracts the atomic constraint set of a program.
///
/// The constraints are exactly those whose conjunction is equivalent to
/// `cert(S)` for *every* binding: `u ≤ v` appears iff Figure 2 requires
/// `sbind(u) ≤ sbind(v)`.
pub fn constraints(program: &Program) -> Vec<Constraint> {
    let mut set = BTreeSet::new();
    // `flow sources` of a statement: variables whose bindings join into
    // flow(S). `mod targets`: variables whose bindings meet into mod(S).
    collect(&program.body, &mut set);
    set.into_iter().collect()
}

/// Returns (mod-targets, flow-sources) of `stmt`, adding constraints.
fn collect(stmt: &Stmt, out: &mut BTreeSet<Constraint>) -> (Vec<VarId>, Vec<VarId>) {
    match stmt {
        Stmt::Skip(_) => (vec![], vec![]),
        Stmt::Assign { var, expr, .. } => {
            for u in expr.vars() {
                out.insert(Constraint { from: u, to: *var });
            }
            (vec![*var], vec![])
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let (mut m1, mut f1) = collect(then_branch, out);
            if let Some(e) = else_branch {
                let (m2, f2) = collect(e, out);
                m1.extend(m2);
                f1.extend(f2);
            }
            let guard_vars = cond.vars();
            for u in &guard_vars {
                for v in &m1 {
                    out.insert(Constraint { from: *u, to: *v });
                }
            }
            // flow(S) folds in the guard iff a branch has a global flow.
            if !f1.is_empty() {
                f1.extend(guard_vars);
            }
            (m1, f1)
        }
        Stmt::While { cond, body, .. } => {
            let (m, mut f) = collect(body, out);
            f.extend(cond.vars());
            // flow(S) ≤ mod(S): every flow source bounds every body target.
            for u in &f {
                for v in &m {
                    out.insert(Constraint { from: *u, to: *v });
                }
            }
            (m, f)
        }
        Stmt::Seq { stmts, .. } => {
            let mut m_all = Vec::new();
            let mut f_prefix: Vec<VarId> = Vec::new();
            for s in stmts {
                let (mi, fi) = collect(s, out);
                for u in &f_prefix {
                    for v in &mi {
                        out.insert(Constraint { from: *u, to: *v });
                    }
                }
                m_all.extend(mi);
                f_prefix.extend(fi);
            }
            (m_all, f_prefix)
        }
        Stmt::Cobegin { branches, .. } => {
            let mut m_all = Vec::new();
            let mut f_all = Vec::new();
            for s in branches {
                let (mi, fi) = collect(s, out);
                m_all.extend(mi);
                f_all.extend(fi);
            }
            (m_all, f_all)
        }
        Stmt::Wait { sem, .. } => (vec![*sem], vec![*sem]),
        Stmt::Signal { sem, .. } => (vec![*sem], vec![]),
    }
}

/// Infers the least binding certifying `program`, subject to `pins`.
///
/// Unpinned variables start at `scheme.low()` and are raised along the
/// constraint graph to a least fixpoint; pinned variables are fixed, and a
/// constraint forcing one above its pin is reported as [`Unsatisfiable`].
///
/// The result, when `Ok`, always satisfies `certify(program, &binding)`
/// (property-tested in this module and in `tests/theorems.rs`).
///
/// # Examples
///
/// ```
/// use secflow_core::{certify, infer_binding};
/// use secflow_lang::parse;
/// use secflow_lattice::{TwoPoint, TwoPointScheme};
///
/// let p = parse(
///     "var x, y : integer; sem : semaphore;
///      cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
/// )
/// .unwrap();
/// // Pin the secret input High; everything downstream must rise.
/// let b = infer_binding(&p, &TwoPointScheme, [(p.var("x"), TwoPoint::High)]).unwrap();
/// assert_eq!(*b.class(p.var("sem")), TwoPoint::High);
/// assert_eq!(*b.class(p.var("y")), TwoPoint::High);
/// assert!(certify(&p, &b).certified());
///
/// // Pinning the output Low as well is unsatisfiable.
/// let err = infer_binding(
///     &p,
///     &TwoPointScheme,
///     [(p.var("x"), TwoPoint::High), (p.var("y"), TwoPoint::Low)],
/// )
/// .unwrap_err();
/// assert_eq!(err.var, p.var("y"));
/// ```
pub fn infer_binding<L: Lattice, S: Scheme<Elem = L>>(
    program: &Program,
    scheme: &S,
    pins: impl IntoIterator<Item = (VarId, L)>,
) -> Result<StaticBinding<L>, Unsatisfiable<L>> {
    let cs = constraints(program);
    let n = program.symbols.len();
    let mut class: Vec<L> = vec![scheme.low(); n];
    let mut pinned: Vec<Option<L>> = vec![None; n];
    // Provenance: which constraint source last raised each variable, for
    // the unsatisfiability witness chain.
    let mut reason: Vec<Option<VarId>> = vec![None; n];
    for (v, l) in pins {
        class[v.index()] = l.clone();
        pinned[v.index()] = Some(l);
    }

    // Least-fixpoint propagation. Finite lattice + monotone updates:
    // terminates in at most (lattice height × |constraints|) rounds.
    loop {
        let mut changed = false;
        for c in &cs {
            let need = class[c.from.index()].clone();
            let have = &class[c.to.index()];
            if !need.leq(have) {
                let raised = have.join(&need);
                if let Some(pin) = &pinned[c.to.index()] {
                    if !raised.leq(pin) {
                        // Walk the provenance chain back to a pinned (or
                        // seed) variable for the witness.
                        let mut path = vec![c.to, c.from];
                        let mut cur = c.from;
                        while let Some(prev) = reason[cur.index()] {
                            if path.contains(&prev) {
                                break; // provenance cycle safety
                            }
                            path.push(prev);
                            cur = prev;
                        }
                        path.reverse();
                        return Err(Unsatisfiable {
                            var: c.to,
                            pinned: pin.clone(),
                            required: raised,
                            path,
                        });
                    }
                }
                class[c.to.index()] = raised;
                reason[c.to.index()] = Some(c.from);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut binding = StaticBinding::uniform(&program.symbols, scheme);
    for (i, l) in class.into_iter().enumerate() {
        binding.set(VarId(i as u32), l);
    }
    debug_assert!(certify(program, &binding).certified());
    Ok(binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;
    use secflow_lattice::{Linear, LinearScheme, TwoPoint, TwoPointScheme};

    #[test]
    fn constraints_of_assignment() {
        let p = parse("var x, y : integer; y := x").unwrap();
        let cs = constraints(&p);
        assert_eq!(
            cs,
            vec![Constraint {
                from: p.var("x"),
                to: p.var("y")
            }]
        );
    }

    #[test]
    fn constraints_of_fig3_chain() {
        // §4.3's three hand-derived conditions appear as constraints.
        let p = parse(
            "var x, y, m : integer;
             modify, modified, read, done : semaphore initially(0);
             cobegin
               begin
                 m := 0;
                 if x # 0 then begin signal(modify); wait(modified) end;
                 signal(read); wait(done);
                 if x = 0 then begin signal(modify); wait(modified) end;
                 wait(done)
               end
             || begin wait(modify); m := 1; signal(modified) end
             || begin wait(read); y := m; signal(done) end
             coend",
        )
        .unwrap();
        let cs = constraints(&p);
        let has = |a: &str, b: &str| {
            cs.contains(&Constraint {
                from: p.var(a),
                to: p.var(b),
            })
        };
        assert!(has("x", "modify"), "condition 1 of §4.3");
        assert!(has("modify", "m"), "condition 2 of §4.3");
        assert!(has("m", "y"), "condition 3 of §4.3");
    }

    #[test]
    fn inference_finds_least_binding() {
        let p = parse("var a, b, c : integer; begin b := a; c := b end").unwrap();
        let s = LinearScheme::new(4).unwrap();
        let binding = infer_binding(&p, &s, [(p.var("a"), Linear(2))]).unwrap();
        assert_eq!(*binding.class(p.var("b")), Linear(2));
        assert_eq!(*binding.class(p.var("c")), Linear(2));
        assert!(certify(&p, &binding).certified());
    }

    #[test]
    fn inference_leaves_unconstrained_vars_low() {
        let p = parse("var a, b, free : integer; b := a").unwrap();
        let binding = infer_binding(&p, &TwoPointScheme, [(p.var("a"), TwoPoint::High)]).unwrap();
        assert_eq!(*binding.class(p.var("free")), TwoPoint::Low);
    }

    #[test]
    fn unsatisfiable_pin_is_reported() {
        let p = parse("var a, b : integer; b := a").unwrap();
        let err = infer_binding(
            &p,
            &TwoPointScheme,
            [(p.var("a"), TwoPoint::High), (p.var("b"), TwoPoint::Low)],
        )
        .unwrap_err();
        assert_eq!(err.var, p.var("b"));
        assert_eq!(err.pinned, TwoPoint::Low);
        assert_eq!(err.required, TwoPoint::High);
        assert!(err.to_string().contains("pinned"));
        assert_eq!(err.path, vec![p.var("a"), p.var("b")]);
        assert_eq!(err.render_path(&p), "a -> b");
    }

    #[test]
    fn inference_handles_loops() {
        // while (h # 0) do l := 1 : the loop guard flows globally into l.
        let p = parse("var h, l : integer; while h # 0 do l := 1").unwrap();
        let binding = infer_binding(&p, &TwoPointScheme, [(p.var("h"), TwoPoint::High)]).unwrap();
        assert_eq!(*binding.class(p.var("l")), TwoPoint::High);
    }

    #[test]
    fn inference_handles_seq_after_wait() {
        let p = parse("var y : integer; s : semaphore; begin wait(s); y := 1 end").unwrap();
        let binding = infer_binding(&p, &TwoPointScheme, [(p.var("s"), TwoPoint::High)]).unwrap();
        assert_eq!(*binding.class(p.var("y")), TwoPoint::High);
    }

    #[test]
    fn inferred_binding_always_certifies() {
        let srcs = [
            "var a, b, c : integer; s, t : semaphore;
             begin if a = 0 then signal(s); cobegin begin wait(s); b := 1 end || c := a coend end",
            "var x, y : integer; while x > 0 do begin x := x - 1; y := y + x end",
            "var p, q : integer; s : semaphore;
             cobegin begin wait(s); p := q end || begin q := 1; signal(s) end coend",
        ];
        for src in srcs {
            let p = parse(src).unwrap();
            let first = p.symbols.iter().next().unwrap().0;
            let b = infer_binding(&p, &TwoPointScheme, [(first, TwoPoint::High)]).unwrap();
            assert!(certify(&p, &b).certified(), "{src}");
        }
    }

    #[test]
    fn no_pins_means_all_low() {
        let p = parse("var a, b : integer; b := a").unwrap();
        let binding = infer_binding(&p, &TwoPointScheme, []).unwrap();
        for (_, c) in binding.iter() {
            assert_eq!(*c, TwoPoint::Low);
        }
    }
}
