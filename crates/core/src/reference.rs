//! A literal, quadratic transcription of Figure 2 — the ablation
//! reference for the §6 linear-time claim.
//!
//! Figure 2 states the composition check as pairwise conditions:
//! `flow(Sj) ≤ mod(Si)` for all `1 ≤ j < i ≤ n`. Transcribed naively that
//! is `O(n²)` lattice checks per composition; the production
//! [`crate::certify`] replaces it with a running prefix join (equivalent
//! because `⊕` is the least upper bound: `∀j<i. flow(Sj) ≤ mod(Si)` iff
//! `⊕_{j<i} flow(Sj) ≤ mod(Si)`), which is what makes certification
//! linear. This module keeps the naive version:
//!
//! - as an executable witness that the two readings of Figure 2 agree
//!   (property-tested against [`crate::certify`] on random programs), and
//! - as the ablation arm of the `linear_time` benchmark, where its
//!   super-linear growth is visible against the flat production series.

use secflow_lang::{Program, Stmt};
use secflow_lattice::{Extended, Lattice};

use crate::binding::StaticBinding;
use crate::report::ModClass;

/// Runs the naive quadratic transcription of Figure 2.
///
/// Returns only the certification verdict (the production analyzer is
/// the one with reporting); intended for tests and the ablation bench.
pub fn certify_quadratic<L: Lattice>(program: &Program, sbind: &StaticBinding<L>) -> bool {
    cert(&program.body, sbind)
}

fn mod_of<L: Lattice>(stmt: &Stmt, sbind: &StaticBinding<L>) -> ModClass<L> {
    match stmt {
        Stmt::Skip(_) => ModClass::Top,
        Stmt::Assign { var, .. } => ModClass::Class(sbind.class(*var).clone()),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let m1 = mod_of(then_branch, sbind);
            match else_branch {
                Some(e) => m1.meet(&mod_of(e, sbind)),
                None => m1,
            }
        }
        Stmt::While { body, .. } => mod_of(body, sbind),
        Stmt::Seq { stmts, .. }
        | Stmt::Cobegin {
            branches: stmts, ..
        } => stmts
            .iter()
            .fold(ModClass::Top, |acc, s| acc.meet(&mod_of(s, sbind))),
        Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => {
            ModClass::Class(sbind.class(*sem).clone())
        }
    }
}

fn flow_of<L: Lattice>(stmt: &Stmt, sbind: &StaticBinding<L>) -> Extended<L> {
    match stmt {
        Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Signal { .. } => Extended::Nil,
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let f1 = flow_of(then_branch, sbind);
            let f2 = match else_branch {
                Some(e) => flow_of(e, sbind),
                None => Extended::Nil,
            };
            if f1.is_nil() && f2.is_nil() {
                Extended::Nil
            } else {
                f1.join(&f2).join(&Extended::Elem(sbind.expr_class(cond)))
            }
        }
        Stmt::While { cond, body, .. } => {
            flow_of(body, sbind).join(&Extended::Elem(sbind.expr_class(cond)))
        }
        Stmt::Seq { stmts, .. }
        | Stmt::Cobegin {
            branches: stmts, ..
        } => stmts
            .iter()
            .fold(Extended::Nil, |acc, s| acc.join(&flow_of(s, sbind))),
        Stmt::Wait { sem, .. } => Extended::Elem(sbind.class(*sem).clone()),
    }
}

fn cert<L: Lattice>(stmt: &Stmt, sbind: &StaticBinding<L>) -> bool {
    match stmt {
        Stmt::Skip(_) | Stmt::Wait { .. } | Stmt::Signal { .. } => true,
        Stmt::Assign { var, expr, .. } => sbind.expr_class(expr).leq(sbind.class(*var)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let sub_ok =
                cert(then_branch, sbind) && else_branch.as_deref().is_none_or(|e| cert(e, sbind));
            sub_ok && mod_of(stmt, sbind).bounds(&Extended::Elem(sbind.expr_class(cond)))
        }
        Stmt::While { body, .. } => {
            cert(body, sbind) && mod_of(stmt, sbind).bounds(&flow_of(stmt, sbind))
        }
        Stmt::Seq { stmts, .. } => {
            // The literal Figure 2 condition: every earlier flow against
            // every later mod — O(n²) on purpose.
            for s in stmts {
                if !cert(s, sbind) {
                    return false;
                }
            }
            for i in 1..stmts.len() {
                let mi = mod_of(&stmts[i], sbind);
                for earlier in &stmts[..i] {
                    if !mi.bounds(&flow_of(earlier, sbind)) {
                        return false;
                    }
                }
            }
            true
        }
        Stmt::Cobegin { branches, .. } => branches.iter().all(|s| cert(s, sbind)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfm::certify;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    #[test]
    fn agrees_with_production_on_paper_examples() {
        let cases = [
            ("var x, y : integer; y := x", vec!["x"]),
            ("var x, y : integer; if x = 0 then y := 1", vec!["x"]),
            (
                "var y : integer; sem : semaphore; begin wait(sem); y := 1 end",
                vec!["sem"],
            ),
            (
                "var x, y, z : integer; begin y := 0; while x # 0 do y := 1; z := 1 end",
                vec!["x", "y"],
            ),
            (
                "var x, y : integer; sem : semaphore;
                 cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
                vec!["x", "sem"],
            ),
        ];
        for (src, highs) in cases {
            let p = parse(src).unwrap();
            let pairs: Vec<_> = highs.iter().map(|n| (*n, TwoPoint::High)).collect();
            let b = StaticBinding::from_pairs(&p.symbols, &TwoPointScheme, pairs).unwrap();
            assert_eq!(
                certify(&p, &b).certified(),
                certify_quadratic(&p, &b),
                "{src}"
            );
        }
    }

    #[test]
    fn vacuous_checks_pass_like_production() {
        let p = parse("var x : integer; begin skip; skip; x := 1 end").unwrap();
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        assert!(certify_quadratic(&p, &b));
    }
}
