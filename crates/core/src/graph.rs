//! The flow-constraint graph, as data and as Graphviz DOT.
//!
//! The atomic constraints of [`crate::constraints`] form a directed graph
//! over the program's variables: an edge `a → b` means Figure 2 requires
//! `sbind(a) ≤ sbind(b)`. The graph is the whole story of a static
//! binding's feasibility — a binding certifies iff every edge respects
//! the order — so rendering it (with violated edges highlighted) is the
//! fastest way to see *why* a policy fails. `secflow flows` exposes this
//! on the command line.

use std::fmt::Write as _;

use secflow_lang::{Program, VarId, VarKind};
use secflow_lattice::Lattice;

use crate::binding::StaticBinding;
use crate::infer::constraints;

/// A rendered summary of the constraint graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlowGraph {
    /// `(from, to)` pairs in deterministic order.
    pub edges: Vec<(VarId, VarId)>,
}

impl FlowGraph {
    /// Builds the graph for `program`.
    pub fn of(program: &Program) -> Self {
        FlowGraph {
            edges: constraints(program)
                .into_iter()
                .map(|c| (c.from, c.to))
                .collect(),
        }
    }

    /// Variables reachable from `start` along constraint edges
    /// (including `start`): everything the policy must classify at or
    /// above `start`'s class.
    pub fn reachable(&self, start: VarId) -> Vec<VarId> {
        let mut seen = vec![start];
        let mut frontier = vec![start];
        while let Some(v) = frontier.pop() {
            for (a, b) in &self.edges {
                if *a == v && !seen.contains(b) {
                    seen.push(*b);
                    frontier.push(*b);
                }
            }
        }
        seen.sort();
        seen
    }

    /// Renders the edge list with names, one `a -> b` per line.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (a, b) in &self.edges {
            let _ = writeln!(
                out,
                "{} -> {}",
                program.symbols.name(*a),
                program.symbols.name(*b)
            );
        }
        out
    }

    /// Renders Graphviz DOT. With a binding, nodes are labelled with
    /// their classes and violated edges (`sbind(from) ≰ sbind(to)`) are
    /// drawn red and bold.
    pub fn to_dot<L: Lattice + std::fmt::Display>(
        &self,
        program: &Program,
        binding: Option<&StaticBinding<L>>,
    ) -> String {
        let mut out = String::from("digraph flows {\n  rankdir=LR;\n");
        for (id, info) in program.symbols.iter() {
            let shape = match info.kind {
                VarKind::Data => "ellipse",
                VarKind::Semaphore => "diamond",
            };
            let label = match binding {
                Some(b) => format!("{}\\n{}", info.name, b.class(id)),
                None => info.name.clone(),
            };
            let _ = writeln!(out, "  v{} [label=\"{label}\", shape={shape}];", id.0);
        }
        for (a, b) in &self.edges {
            let violated = binding
                .map(|bd| !bd.class(*a).leq(bd.class(*b)))
                .unwrap_or(false);
            let attrs = if violated {
                " [color=red, penwidth=2.0]"
            } else {
                ""
            };
            let _ = writeln!(out, "  v{} -> v{}{attrs};", a.0, b.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn sync_program() -> Program {
        parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap()
    }

    #[test]
    fn edges_match_constraints() {
        let p = sync_program();
        let g = FlowGraph::of(&p);
        assert!(g.edges.contains(&(p.var("x"), p.var("sem"))));
        assert!(g.edges.contains(&(p.var("sem"), p.var("y"))));
    }

    #[test]
    fn reachability_transits_the_chain() {
        let p = sync_program();
        let g = FlowGraph::of(&p);
        let r = g.reachable(p.var("x"));
        assert!(r.contains(&p.var("sem")));
        assert!(r.contains(&p.var("y")));
        // y is a sink: nothing downstream.
        assert_eq!(g.reachable(p.var("y")), vec![p.var("y")]);
    }

    #[test]
    fn render_uses_names() {
        let p = sync_program();
        let text = FlowGraph::of(&p).render(&p);
        assert!(text.contains("x -> sem"), "{text}");
        assert!(text.contains("sem -> y"), "{text}");
    }

    #[test]
    fn dot_marks_violations() {
        let p = sync_program();
        let b =
            StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("x"), TwoPoint::High);
        let dot = FlowGraph::of(&p).to_dot(&p, Some(&b));
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("color=red"), "the x->sem edge is violated");
        assert!(dot.contains("shape=diamond"), "semaphores are diamonds");
        assert!(dot.contains("High"), "classes are in the labels");
    }

    #[test]
    fn dot_without_binding_has_no_violations() {
        let p = sync_program();
        let dot = FlowGraph::of(&p).to_dot::<TwoPoint>(&p, None);
        assert!(!dot.contains("color=red"));
        assert!(dot.contains("label=\"x\""));
    }
}
