//! The §2.0 atomicity side-condition.
//!
//! The paper assumes "each assignment and expression must be executed or
//! evaluated as an indivisible action", then remarks (citing Owicki &
//! Gries): *"this requirement may be eliminated if every expression and
//! assignment statement makes at most one reference to a variable that
//! can be changed in another process"* — real hardware only gives
//! per-memory-reference atomicity, and the single-shared-reference
//! condition is what makes the coarse model faithful.
//!
//! This module checks that condition syntactically. For every `cobegin`,
//! a variable is *foreign-writable* for process `i` when a sibling
//! process may modify it; an action of process `i` violates the condition
//! when it makes two or more references to foreign-writable variables
//! (counting the assignment target as a reference when the target itself
//! is foreign-writable, since the read-modify-write of `x := x + 1` is
//! then racy). Programs that pass can be run soundly on
//! per-reference-atomic hardware; for programs that fail, the
//! interpreter's expression-level atomicity is a modelling assumption the
//! report makes explicit.
//!
//! Violations are reported as unified [`Diag`] diagnostics (code
//! `SF040`), so they render identically under `secflow atomicity`,
//! `secflow lint` and the analysis pass manager.

use std::collections::BTreeSet;

use secflow_lang::{Diag, Expr, Program, Span, Stmt, VarId};

/// One violation of the single-shared-reference condition, as a unified
/// diagnostic (code `SF040`, warning severity).
pub type AtomicityViolation = Diag;

/// The outcome of the §2.0 atomicity check.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomicityReport {
    /// Every action referencing more than one foreign-writable variable.
    pub violations: Vec<AtomicityViolation>,
}

impl AtomicityReport {
    /// `true` iff the coarse atomicity model is justified for this
    /// program on per-reference-atomic hardware.
    pub fn single_reference(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report against program source.
    pub fn render(&self, source: &str) -> String {
        if self.single_reference() {
            return "every action makes at most one shared-variable reference\n".into();
        }
        let mut out = format!(
            "{} multi-shared-reference action(s):\n",
            self.violations.len()
        );
        for v in &self.violations {
            out.push_str(&v.render(source));
        }
        out
    }
}

/// Checks the §2.0 single-shared-reference condition for a program.
///
/// # Examples
///
/// ```
/// use secflow_core::check_atomicity;
/// use secflow_lang::parse;
///
/// // `x := x + 1` in both processes: the increment is a racy
/// // read-modify-write of a shared variable.
/// let racy = parse(
///     "var x : integer; cobegin x := x + 1 || x := x + 1 coend",
/// )
/// .unwrap();
/// assert!(!check_atomicity(&racy).single_reference());
///
/// // The same increments guarded by a mutex still *reference* the shared
/// // variable twice, but a handoff through distinct variables passes:
/// let clean = parse(
///     "var a, b : integer; s : semaphore;
///      cobegin begin a := 1; signal(s) end || begin wait(s); b := a end coend",
/// )
/// .unwrap();
/// assert!(check_atomicity(&clean).single_reference());
/// ```
pub fn check_atomicity(program: &Program) -> AtomicityReport {
    let mut report = AtomicityReport::default();
    walk(&program.body, program, &mut report);
    report
}

fn walk(stmt: &Stmt, program: &Program, report: &mut AtomicityReport) {
    if let Stmt::Cobegin { branches, .. } = stmt {
        // Variables each branch may modify.
        let writes: Vec<BTreeSet<VarId>> = branches
            .iter()
            .map(|b| b.modified_vars().into_iter().collect())
            .collect();
        for (i, branch) in branches.iter().enumerate() {
            // Foreign-writable for branch i: anything a sibling writes.
            let foreign: BTreeSet<VarId> = writes
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, w)| w.iter().copied())
                .collect();
            check_branch(branch, &foreign, program, report);
        }
    }
    // Recurse for nested cobegins (each nesting level re-derives its own
    // foreign sets; outer levels already covered inner branches as whole
    // statements).
    match stmt {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk(then_branch, program, report);
            if let Some(e) = else_branch {
                walk(e, program, report);
            }
        }
        Stmt::While { body, .. } => walk(body, program, report),
        Stmt::Seq { stmts, .. } => stmts.iter().for_each(|s| walk(s, program, report)),
        Stmt::Cobegin { branches, .. } => branches.iter().for_each(|s| walk(s, program, report)),
        _ => {}
    }
}

fn shared_refs_in_expr(expr: &Expr, foreign: &BTreeSet<VarId>) -> Vec<VarId> {
    let mut refs = Vec::new();
    expr.for_each_var(&mut |v| {
        if foreign.contains(&v) {
            refs.push(v); // with repetition: x + x is two references
        }
    });
    refs
}

fn check_branch(
    stmt: &Stmt,
    foreign: &BTreeSet<VarId>,
    program: &Program,
    report: &mut AtomicityReport,
) {
    let mut record = |span: Span, refs: Vec<VarId>, what: &str| {
        if refs.len() >= 2 {
            let names: Vec<&str> = refs.iter().map(|v| program.symbols.name(*v)).collect();
            report.violations.push(Diag::warning(
                "SF040",
                format!(
                    "{what} references {} shared variables ({}); per-reference \
                     atomicity would admit interleavings the model hides",
                    refs.len(),
                    names.join(", ")
                ),
                span,
            ));
        }
    };
    match stmt {
        Stmt::Assign { var, expr, span } => {
            let mut refs = shared_refs_in_expr(expr, foreign);
            // A foreign-writable target makes the write part of a
            // read-modify-write race whenever the rhs also touches shared
            // state.
            if foreign.contains(var) {
                refs.push(*var);
            }
            record(*span, refs, "assignment");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => {
            record(*span, shared_refs_in_expr(cond, foreign), "guard");
            check_branch(then_branch, foreign, program, report);
            if let Some(e) = else_branch {
                check_branch(e, foreign, program, report);
            }
        }
        Stmt::While { cond, body, span } => {
            record(*span, shared_refs_in_expr(cond, foreign), "guard");
            check_branch(body, foreign, program, report);
        }
        Stmt::Seq { stmts, .. } => stmts
            .iter()
            .for_each(|s| check_branch(s, foreign, program, report)),
        // A nested cobegin is re-analyzed by `walk` with its own foreign
        // sets; its branches are opaque here.
        Stmt::Cobegin { .. } | Stmt::Skip(_) | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    #[test]
    fn sequential_programs_trivially_pass() {
        let p = parse("var x, y : integer; begin x := y + y; y := x * x end").unwrap();
        assert!(check_atomicity(&p).single_reference());
    }

    #[test]
    fn read_modify_write_race_is_flagged() {
        let p = parse("var x : integer; cobegin x := x + 1 || x := x + 1 coend").unwrap();
        let r = check_atomicity(&p);
        assert_eq!(r.violations.len(), 2, "both increments are racy");
        assert!(r.render("").contains("assignment references 2"));
    }

    #[test]
    fn single_shared_read_passes() {
        // y := x reads one shared variable: per-reference atomic ≡ coarse.
        let p = parse("var x, y : integer; cobegin x := 5 || y := x coend").unwrap();
        assert!(check_atomicity(&p).single_reference());
    }

    #[test]
    fn two_shared_reads_in_one_expression_fail() {
        let p = parse(
            "var x, y, z : integer;
             cobegin begin x := 1; y := 2 end || z := x + y coend",
        )
        .unwrap();
        let r = check_atomicity(&p);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0]
            .message
            .contains("references 2 shared variables"));
    }

    #[test]
    fn double_reference_to_one_shared_variable_fails() {
        // x * x is two references to x (it can change in between).
        let p = parse("var x, y : integer; cobegin x := 1 || y := x * x coend").unwrap();
        let r = check_atomicity(&p);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn guards_are_checked_too() {
        let p = parse(
            "var x, y, l : integer;
             cobegin begin x := 1; y := 1 end || if x = y then l := 1 coend",
        )
        .unwrap();
        let r = check_atomicity(&p);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("guard"));
    }

    #[test]
    fn violations_are_unified_diagnostics() {
        let p = parse("var x : integer; cobegin x := x + 1 || x := 0 coend").unwrap();
        let r = check_atomicity(&p);
        assert_eq!(r.violations[0].code, "SF040");
        assert_eq!(r.violations[0].severity, secflow_lang::Severity::Warning);
    }

    #[test]
    fn variables_private_to_a_process_do_not_count() {
        // Each process hammers its own variable: no sharing at all.
        let p = parse(
            "var a, b : integer;
             cobegin a := a + a * a || b := b + b * b coend",
        )
        .unwrap();
        assert!(check_atomicity(&p).single_reference());
    }

    #[test]
    fn read_only_shared_variables_do_not_count() {
        // Both processes read c, nobody writes it: not foreign-writable.
        let p = parse(
            "var c, a, b : integer;
             cobegin a := c + c || b := c * c coend",
        )
        .unwrap();
        assert!(check_atomicity(&p).single_reference());
    }

    #[test]
    fn fig3_satisfies_the_papers_own_condition() {
        // The paper's flagship example obeys its §2.0 remark: every
        // action touches at most one variable another process can change.
        let p = secflow_lang::parse(secflow_fig3_source()).unwrap();
        assert!(check_atomicity(&p).single_reference());
    }

    fn secflow_fig3_source() -> &'static str {
        "var x, y, m : integer;
         modify, modified, read, done : semaphore initially(0);
         cobegin
           begin
             m := 0;
             if x = 0 then begin signal(modify); wait(modified) end;
             signal(read); wait(done);
             if x # 0 then begin signal(modify); wait(modified) end
           end
         || begin wait(modify); m := 1; signal(modified) end
         || begin wait(read); y := m; signal(done) end
         coend"
    }

    #[test]
    fn nested_cobegin_uses_inner_foreign_sets() {
        // In the inner cobegin, p and q are mutually foreign; q := p + p
        // is a double shared read even though the outer sibling only
        // touches r.
        let p = parse(
            "var p, q, r : integer;
             cobegin
               cobegin p := 1 || q := p + p coend
             ||
               r := 2
             coend",
        )
        .unwrap();
        let rep = check_atomicity(&p);
        assert_eq!(rep.violations.len(), 1);
        assert!(rep.violations[0]
            .message
            .contains("references 2 shared variables"));
    }

    #[test]
    fn render_mentions_locations() {
        let src = "var x : integer; cobegin x := x + 1 || x := 0 coend";
        let p = parse(src).unwrap();
        let r = check_atomicity(&p);
        let text = r.render(src);
        assert!(text.contains("line 1"), "{text}");
        assert!(text.contains("SF040"), "{text}");
    }
}
