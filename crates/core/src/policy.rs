//! Information policies: named class assignments checked against programs.
//!
//! §2.3 of the paper: "An *information policy* is used to indicate which of
//! these flows are acceptable." For static systems the policy *is* the
//! static binding; this module provides the user-facing layer that maps
//! source-level names to classes, validates them against a parsed program,
//! and answers "may information flow from `a` to `b`?" queries.

use std::collections::BTreeMap;

use secflow_lang::Program;
use secflow_lattice::{Lattice, Scheme};

use crate::binding::StaticBinding;
use crate::cfm::certify;
use crate::report::CertReport;

/// A named, program-independent security policy.
///
/// # Examples
///
/// ```
/// use secflow_core::Policy;
/// use secflow_lang::parse;
/// use secflow_lattice::{TwoPoint, TwoPointScheme};
///
/// let p = parse("var secret, public : integer; public := secret").unwrap();
/// let policy = Policy::new(TwoPointScheme)
///     .classify("secret", TwoPoint::High)
///     .classify("public", TwoPoint::Low);
/// let outcome = policy.check(&p).unwrap();
/// assert!(!outcome.certified());
/// ```
#[derive(Clone, Debug)]
pub struct Policy<S: Scheme> {
    scheme: S,
    classes: BTreeMap<String, S::Elem>,
    default: Option<S::Elem>,
}

/// A problem found while binding a policy to a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyError {
    /// The policy classifies a name the program does not declare.
    UnknownName(String),
    /// The program declares a name the policy does not classify and no
    /// default class was given.
    UnclassifiedName(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::UnknownName(n) => {
                write!(
                    f,
                    "policy classifies `{n}`, which the program does not declare"
                )
            }
            PolicyError::UnclassifiedName(n) => {
                write!(
                    f,
                    "program declares `{n}`, which the policy does not classify"
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

impl<S: Scheme> Policy<S>
where
    S::Elem: Lattice,
{
    /// Creates an empty policy over `scheme`.
    pub fn new(scheme: S) -> Self {
        Policy {
            scheme,
            classes: BTreeMap::new(),
            default: None,
        }
    }

    /// Assigns `class` to `name` (builder style; later calls override).
    pub fn classify(mut self, name: &str, class: S::Elem) -> Self {
        self.classes.insert(name.to_string(), class);
        self
    }

    /// Classifies every otherwise-unmentioned name as `class`.
    pub fn default_class(mut self, class: S::Elem) -> Self {
        self.default = Some(class);
        self
    }

    /// The scheme this policy is expressed over.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// `true` iff the policy permits information to flow from class `a` to
    /// class `b` (i.e. `a ≤ b`).
    pub fn permits_flow(&self, a: &S::Elem, b: &S::Elem) -> bool {
        a.leq(b)
    }

    /// The class assigned to `name`, if any.
    pub fn class_of(&self, name: &str) -> Option<&S::Elem> {
        self.classes.get(name)
    }

    /// Builds the static binding this policy induces on `program`.
    ///
    /// # Errors
    ///
    /// - [`PolicyError::UnknownName`] if the policy mentions an undeclared
    ///   name (a misspelled policy should not silently pass);
    /// - [`PolicyError::UnclassifiedName`] if a declared name has no class
    ///   and no [`default_class`](Self::default_class) was set.
    pub fn bind(&self, program: &Program) -> Result<StaticBinding<S::Elem>, PolicyError> {
        for name in self.classes.keys() {
            if program.symbols.lookup(name).is_none() {
                return Err(PolicyError::UnknownName(name.clone()));
            }
        }
        let mut binding = match &self.default {
            Some(d) => StaticBinding::constant(&program.symbols, &self.scheme, d.clone()),
            None => StaticBinding::uniform(&program.symbols, &self.scheme),
        };
        for (id, info) in program.symbols.iter() {
            match self.classes.get(&info.name) {
                Some(c) => binding.set(id, c.clone()),
                None if self.default.is_some() => {}
                None => return Err(PolicyError::UnclassifiedName(info.name.clone())),
            }
        }
        Ok(binding)
    }

    /// Binds the policy to `program` and runs CFM.
    pub fn check(&self, program: &Program) -> Result<CertReport<S::Elem>, PolicyError> {
        let binding = self.bind(program)?;
        Ok(certify(program, &binding))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;
    use secflow_lattice::{Linear, LinearScheme, TwoPoint, TwoPointScheme};

    #[test]
    fn policy_binds_and_checks() {
        let p = parse("var a, b : integer; b := a").unwrap();
        let pol = Policy::new(TwoPointScheme)
            .classify("a", TwoPoint::Low)
            .classify("b", TwoPoint::High);
        assert!(pol.check(&p).unwrap().certified());
    }

    #[test]
    fn unknown_name_is_rejected() {
        let p = parse("var a : integer; a := 1").unwrap();
        let pol = Policy::new(TwoPointScheme)
            .classify("a", TwoPoint::Low)
            .classify("ghost", TwoPoint::High);
        assert_eq!(
            pol.bind(&p).unwrap_err(),
            PolicyError::UnknownName("ghost".into())
        );
    }

    #[test]
    fn unclassified_name_without_default_is_rejected() {
        let p = parse("var a, b : integer; a := 1").unwrap();
        let pol = Policy::new(TwoPointScheme).classify("a", TwoPoint::Low);
        assert_eq!(
            pol.bind(&p).unwrap_err(),
            PolicyError::UnclassifiedName("b".into())
        );
    }

    #[test]
    fn default_class_fills_gaps() {
        let p = parse("var a, b : integer; b := a").unwrap();
        let pol = Policy::new(TwoPointScheme)
            .classify("a", TwoPoint::High)
            .default_class(TwoPoint::High);
        let binding = pol.bind(&p).unwrap();
        assert_eq!(*binding.class(p.var("b")), TwoPoint::High);
        assert!(pol.check(&p).unwrap().certified());
    }

    #[test]
    fn permits_flow_is_the_lattice_order() {
        let pol = Policy::new(LinearScheme::new(3).unwrap());
        assert!(pol.permits_flow(&Linear(0), &Linear(2)));
        assert!(!pol.permits_flow(&Linear(2), &Linear(1)));
    }

    #[test]
    fn later_classify_overrides() {
        let pol = Policy::new(TwoPointScheme)
            .classify("a", TwoPoint::Low)
            .classify("a", TwoPoint::High);
        assert_eq!(pol.class_of("a"), Some(&TwoPoint::High));
    }

    #[test]
    fn errors_render() {
        let e = PolicyError::UnknownName("zz".into());
        assert!(e.to_string().contains("zz"));
        let e = PolicyError::UnclassifiedName("q".into());
        assert!(e.to_string().contains('q'));
    }
}
