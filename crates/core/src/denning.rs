//! The Denning–Denning baseline mechanism (CACM 1977), as characterized in
//! §4.1 of the paper.
//!
//! The original certification mechanism checks *direct* flows
//! (`sbind(e) ≤ sbind(x)` at assignments) and *local indirect* flows
//! (`sbind(e) ≤ mod(S)` at alternation and iteration guards), but
//! **disregards global flows**: it assumes statement relationships are
//! fully captured by nesting, so conditional non-termination and semaphore
//! synchronization leak past it. The paper's §4.1: "Global flows are
//! disregarded by the Dennings' mechanism. … This mechanism is applicable
//! only to sequential programs that are guaranteed to terminate for all
//! inputs."
//!
//! We extend it to the concurrent syntax in the weakest defensible way
//! (it must *parse* the same programs to serve as a baseline): semaphores
//! are treated as ordinary modified variables and `wait`/`signal` certify
//! unconditionally, exactly as in CFM, but no `flow` function exists, so
//! the iteration and composition global checks are absent. The
//! `fig3_channel` benchmark and the E3/E10 experiments quantify what this
//! baseline misses.

use secflow_lang::{print_expr, Program, Stmt, SymbolTable};
use secflow_lattice::{Extended, Lattice};

use crate::binding::StaticBinding;
use crate::report::{CertReport, CheckRule, ModClass, Violation};

/// Runs the Denning–Denning baseline over a whole program.
///
/// The returned report uses the same [`CertReport`] shape as
/// [`crate::certify`]; its `flow` is always `nil` because the baseline does
/// not track global flows.
///
/// # Examples
///
/// The baseline accepts the §4.2 composition `begin wait(sem); y := 1 end`
/// that CFM rejects:
///
/// ```
/// use secflow_core::{certify, denning_certify, StaticBinding};
/// use secflow_lang::parse;
/// use secflow_lattice::{TwoPoint, TwoPointScheme};
///
/// let p = parse("var y : integer; sem : semaphore; begin wait(sem); y := 1 end").unwrap();
/// let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
///     .with(p.var("sem"), TwoPoint::High);
/// assert!(denning_certify(&p, &b).certified()); // misses the global flow
/// assert!(!certify(&p, &b).certified()); // CFM catches it
/// ```
pub fn denning_certify<L: Lattice>(program: &Program, sbind: &StaticBinding<L>) -> CertReport<L> {
    let mut cx = Cx {
        symbols: &program.symbols,
        sbind,
        violations: Vec::new(),
        checks: 0,
    };
    let mod_class = cx.analyze(&program.body);
    CertReport {
        violations: cx.violations,
        mod_class,
        flow: Extended::Nil,
        checks: cx.checks,
    }
}

struct Cx<'a, L> {
    symbols: &'a SymbolTable,
    sbind: &'a StaticBinding<L>,
    violations: Vec<Violation<L>>,
    checks: usize,
}

impl<L: Lattice> Cx<'_, L> {
    fn check(
        &mut self,
        rule: CheckRule,
        stmt: &Stmt,
        found: L,
        limit: &ModClass<L>,
        message: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        let found = Extended::Elem(found);
        if !limit.bounds(&found) {
            self.violations.push(Violation {
                rule,
                span: stmt.span(),
                found,
                limit: limit.clone(),
                message: message(),
            });
        }
    }

    fn analyze(&mut self, stmt: &Stmt) -> ModClass<L> {
        match stmt {
            Stmt::Skip(_) => ModClass::Top,
            Stmt::Assign { var, expr, .. } => {
                let target = ModClass::Class(self.sbind.class(*var).clone());
                let e_class = self.sbind.expr_class(expr);
                self.check(CheckRule::AssignDirect, stmt, e_class, &target, || {
                    format!(
                        "`{}` flows directly into `{}`",
                        print_expr(expr, self.symbols),
                        self.symbols.name(*var)
                    )
                });
                target
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let m1 = self.analyze(then_branch);
                let m2 = match else_branch {
                    Some(e) => self.analyze(e),
                    None => ModClass::Top,
                };
                let m = m1.meet(&m2);
                let e_class = self.sbind.expr_class(cond);
                self.check(CheckRule::IfLocal, stmt, e_class, &m, || {
                    format!(
                        "guard `{}` flows locally into the branches",
                        print_expr(cond, self.symbols)
                    )
                });
                m
            }
            Stmt::While { cond, body, .. } => {
                let m = self.analyze(body);
                // Local check only: the guard flows into the body. The
                // *global* flow out of the loop (conditional termination)
                // is the part the baseline misses.
                let e_class = self.sbind.expr_class(cond);
                self.check(CheckRule::IfLocal, stmt, e_class, &m, || {
                    format!(
                        "guard `{}` flows locally into the loop body",
                        print_expr(cond, self.symbols)
                    )
                });
                m
            }
            Stmt::Seq { stmts, .. }
            | Stmt::Cobegin {
                branches: stmts, ..
            } => {
                let mut m = ModClass::Top;
                for s in stmts {
                    m = m.meet(&self.analyze(s));
                }
                m
            }
            Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => {
                ModClass::Class(self.sbind.class(*sem).clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfm::certify;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn setup(src: &str, highs: &[&str]) -> (Program, StaticBinding<TwoPoint>) {
        let p = parse(src).unwrap();
        // Ignore names not declared in this particular source, so shared
        // high-sets can be swept across several programs.
        let pairs: Vec<_> = highs
            .iter()
            .filter(|n| p.symbols.lookup(n).is_some())
            .map(|n| (*n, TwoPoint::High))
            .collect();
        let b = StaticBinding::from_pairs(&p.symbols, &TwoPointScheme, pairs).unwrap();
        (p, b)
    }

    #[test]
    fn baseline_catches_direct_flows() {
        let (p, b) = setup("var x, y : integer; y := x", &["x"]);
        assert!(!denning_certify(&p, &b).certified());
    }

    #[test]
    fn baseline_catches_local_indirect_flows() {
        let (p, b) = setup("var x, y : integer; if x = 0 then y := 1", &["x"]);
        assert!(!denning_certify(&p, &b).certified());
        let (p, b) = setup("var x, y : integer; while x # 0 do y := 1", &["x"]);
        assert!(!denning_certify(&p, &b).certified());
    }

    #[test]
    fn baseline_misses_loop_termination_flow() {
        // §2.2's global-flow example: z := 1 after a High-guarded loop.
        let (p, b) = setup(
            "var x, y, z : integer; begin while x # 0 do y := 1; z := 1 end",
            &["x", "y"],
        );
        assert!(
            denning_certify(&p, &b).certified(),
            "baseline is blind here"
        );
        assert!(!certify(&p, &b).certified(), "CFM sees the global flow");
    }

    #[test]
    fn baseline_misses_synchronization_flow() {
        let (p, b) = setup(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
            &["x", "sem"],
        );
        assert!(denning_certify(&p, &b).certified());
        assert!(!certify(&p, &b).certified());
    }

    #[test]
    fn baseline_misses_loop_wait_flow() {
        let (p, b) = setup(
            "var y : integer; sem : semaphore;
             while true do begin y := y + 1; wait(sem) end",
            &["sem"],
        );
        assert!(denning_certify(&p, &b).certified());
        assert!(!certify(&p, &b).certified());
    }

    #[test]
    fn baseline_agrees_with_cfm_on_flow_free_programs() {
        // With no loops and no semaphores, every flow is direct or local,
        // so the two mechanisms coincide.
        let srcs = [
            "var x, y : integer; y := x",
            "var x, y : integer; if x = 0 then y := 1 else y := 2",
            "var x, y, z : integer; begin x := 1; if z = 0 then y := x end",
        ];
        for src in srcs {
            for highs in [&[][..], &["x"][..], &["x", "y"][..], &["z"][..]] {
                let (p, b) = setup(src, highs);
                assert_eq!(
                    denning_certify(&p, &b).certified(),
                    certify(&p, &b).certified(),
                    "{src} with {highs:?}"
                );
            }
        }
    }

    #[test]
    fn cfm_accepts_whenever_baseline_and_no_global_flows() {
        // CFM is strictly more conservative: anything it certifies, the
        // baseline certifies too.
        let srcs = [
            "var x, y : integer; s : semaphore; begin wait(s); y := x; signal(s) end",
            "var x : integer; while x > 0 do x := x - 1",
            "var a, b : integer; s : semaphore; cobegin wait(s) || a := b coend",
        ];
        for src in srcs {
            for highs in [&[][..], &["x"][..], &["s"][..], &["a", "s"][..]] {
                let (p, b) = setup(src, highs);
                if certify(&p, &b).certified() {
                    assert!(
                        denning_certify(&p, &b).certified(),
                        "CFM certified but baseline rejected: {src} with {highs:?}"
                    );
                }
            }
        }
    }
}
