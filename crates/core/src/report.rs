//! Certification reports: every Figure 2 check, with explanations.

use std::fmt;

use secflow_lang::span::LineIndex;
use secflow_lang::Span;
use secflow_lattice::{Extended, Lattice};

/// The greatest lower bound of the classes of variables a statement may
/// modify — `mod(S)` of Definition 5a.
///
/// A statement that modifies nothing (only `skip`s) has `mod(S) = ⊤`, the
/// meet over the empty set; [`ModClass::Top`] represents that without
/// needing a `high` element at hand, and makes the vacuous checks
/// `x ≤ mod(S)` pass as the paper intends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModClass<L> {
    /// No variable is modified: the meet over the empty set.
    Top,
    /// The meet of the modified variables' bindings.
    Class(L),
}

impl<L: Lattice> ModClass<L> {
    /// Meet of two `mod` values (`Top` is the identity).
    pub fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (ModClass::Top, x) | (x, ModClass::Top) => x.clone(),
            (ModClass::Class(a), ModClass::Class(b)) => ModClass::Class(a.meet(b)),
        }
    }

    /// Folds in one more modified variable.
    pub fn meet_class(&self, class: &L) -> Self {
        self.meet(&ModClass::Class(class.clone()))
    }

    /// `true` iff `bound ≤ self` — i.e. the check `bound ≤ mod(S)` passes.
    ///
    /// `Top` bounds everything; a `nil` bound is below everything.
    pub fn bounds(&self, bound: &Extended<L>) -> bool {
        match (bound, self) {
            (Extended::Nil, _) => true,
            (_, ModClass::Top) => true,
            (Extended::Elem(b), ModClass::Class(m)) => b.leq(m),
        }
    }

    /// The underlying class, or `None` for `Top`.
    pub fn as_class(&self) -> Option<&L> {
        match self {
            ModClass::Top => None,
            ModClass::Class(l) => Some(l),
        }
    }
}

impl<L: fmt::Display> fmt::Display for ModClass<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModClass::Top => write!(f, "⊤"),
            ModClass::Class(l) => write!(f, "{l}"),
        }
    }
}

/// Which Figure 2 certification check a violation comes from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckRule {
    /// `sbind(e) ≤ sbind(x)` for `x := e` — a direct flow.
    AssignDirect,
    /// `sbind(e) ≤ mod(S)` for `if e …` — a local indirect flow.
    IfLocal,
    /// `flow(S) ≤ mod(S)` for `while e do S1` — a global flow within the
    /// loop (also covers the local flow from `e`, since
    /// `sbind(e) ≤ flow(S)`).
    WhileGlobal,
    /// `flow(Sj) ≤ mod(Si)` for `j < i` in `begin S1; …; Sn end` — a
    /// global flow across sequential composition.
    SeqGlobal,
}

impl CheckRule {
    /// Short name used in rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckRule::AssignDirect => "assignment (direct flow)",
            CheckRule::IfLocal => "alternation (local flow)",
            CheckRule::WhileGlobal => "iteration (global flow)",
            CheckRule::SeqGlobal => "composition (global flow)",
        }
    }
}

impl fmt::Display for CheckRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One violated certification check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation<L> {
    /// The Figure 2 row that generated the check.
    pub rule: CheckRule,
    /// The source span of the offending statement.
    pub span: Span,
    /// The left side of the failed inequality (the flowing class).
    pub found: Extended<L>,
    /// The right side of the failed inequality (the bound it exceeded).
    pub limit: ModClass<L>,
    /// A rendered, human-readable explanation (with variable names).
    pub message: String,
}

impl<L: fmt::Display> fmt::Display for Violation<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (requires {} ≤ {})",
            self.rule, self.message, self.found, self.limit
        )
    }
}

/// The result of running the Concurrent Flow Mechanism over a program.
///
/// `cert(S)` of Definition 5c is [`certified`](Self::certified); unlike
/// the paper's boolean, the report retains *every* failed check so that a
/// rejected program can be explained and repaired.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CertReport<L> {
    /// All violated checks, in source order.
    pub violations: Vec<Violation<L>>,
    /// `mod(S)` of the whole program body.
    pub mod_class: ModClass<L>,
    /// `flow(S)` of the whole program body (`nil` = no global flow).
    pub flow: Extended<L>,
    /// Total number of lattice checks evaluated (certified or not).
    pub checks: usize,
}

impl<L: Lattice> CertReport<L> {
    /// `true` iff the program is certified with respect to the binding.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the full report against the program source.
    pub fn render(&self, source: &str) -> String {
        if self.certified() {
            return format!(
                "certified: mod = {}, flow = {}, {} checks\n",
                self.mod_class, self.flow, self.checks
            );
        }
        let idx = LineIndex::new(source);
        let mut out = format!(
            "NOT certified: {} violation(s), mod = {}, flow = {}\n",
            self.violations.len(),
            self.mod_class,
            self.flow
        );
        for v in &self.violations {
            let (line, col) = idx.line_col(v.span.start);
            out.push_str(&format!(
                "  [{}] line {line}, col {col}: {} — needs {} ≤ {}\n",
                v.rule.name(),
                v.message,
                v.found,
                v.limit
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lattice::TwoPoint;

    #[test]
    fn mod_top_is_meet_identity() {
        let a: ModClass<TwoPoint> = ModClass::Class(TwoPoint::Low);
        assert_eq!(ModClass::Top.meet(&a), a);
        assert_eq!(a.meet(&ModClass::Top), a);
        assert_eq!(
            ModClass::Class(TwoPoint::High).meet(&a),
            ModClass::Class(TwoPoint::Low)
        );
    }

    #[test]
    fn bounds_handles_nil_and_top() {
        let top: ModClass<TwoPoint> = ModClass::Top;
        let low = ModClass::Class(TwoPoint::Low);
        assert!(top.bounds(&Extended::Elem(TwoPoint::High)));
        assert!(low.bounds(&Extended::Nil));
        assert!(low.bounds(&Extended::Elem(TwoPoint::Low)));
        assert!(!low.bounds(&Extended::Elem(TwoPoint::High)));
    }

    #[test]
    fn display_of_mod() {
        assert_eq!(ModClass::<TwoPoint>::Top.to_string(), "⊤");
        assert_eq!(ModClass::Class(TwoPoint::High).to_string(), "High");
    }

    #[test]
    fn rule_names_are_informative() {
        assert!(CheckRule::SeqGlobal.name().contains("composition"));
        assert!(CheckRule::AssignDirect.to_string().contains("direct"));
    }
}
