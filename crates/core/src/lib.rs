//! The Concurrent Flow Mechanism (CFM): compile-time certification of
//! information flow in parallel programs.
//!
//! This crate is the primary contribution of *Reitman, "A Mechanism for
//! Information Control in Parallel Systems", SOSP 1979*: an extension of
//! the Denning–Denning certification mechanism to programs with
//! `cobegin/coend` concurrency, semaphore synchronization and possibly
//! non-terminating loops.
//!
//! - [`StaticBinding`] fixes each variable's security class (Definition 3);
//! - [`certify`] runs the Figure 2 analysis — `mod(S)`, `flow(S)` and the
//!   certification checks — in one linear pass, returning a [`CertReport`]
//!   that explains every violation;
//! - [`denning_certify`] is the sequential baseline of §4.1, blind to
//!   global flows, kept for comparison;
//! - [`Policy`] maps source-level names to classes and re-checks programs;
//! - [`infer_binding`] computes the least binding certifying a program
//!   given pinned input/output classes, or a proof that none exists.
//!
//! # Quick start
//!
//! ```
//! use secflow_core::{certify, StaticBinding};
//! use secflow_lang::parse;
//! use secflow_lattice::{TwoPoint, TwoPointScheme};
//!
//! // The §2.2 synchronization channel: x flows to y through a semaphore.
//! let p = parse(
//!     "var x, y : integer; sem : semaphore;
//!      cobegin
//!        if x = 0 then signal(sem)
//!      ||
//!        begin wait(sem); y := 0 end
//!      coend",
//! )
//! .unwrap();
//!
//! let secret_x = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
//!     .with(p.var("x"), TwoPoint::High);
//! let report = certify(&p, &secret_x);
//! assert!(!report.certified()); // the covert channel is caught
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomicity;
mod binding;
mod cfm;
mod denning;
mod graph;
mod infer;
mod policy;
mod reference;
mod report;

pub use atomicity::{check_atomicity, AtomicityReport, AtomicityViolation};
pub use binding::StaticBinding;
pub use cfm::{certify, mod_flow};
pub use denning::denning_certify;
pub use graph::FlowGraph;
pub use infer::{constraints, infer_binding, Constraint, Unsatisfiable};
pub use policy::{Policy, PolicyError};
pub use reference::certify_quadratic;
pub use report::{CertReport, CheckRule, ModClass, Violation};
