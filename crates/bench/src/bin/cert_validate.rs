//! `cert_validate` — E14: the prove/validate split in numbers. How much
//! cheaper is validating a wire certificate than producing one?
//! Recorded as `BENCH_checkproof.json`.
//!
//! ```bash
//! cargo run --release -p secflow-bench --bin cert_validate [-- --quick]
//! ```
//!
//! Per workload, the prove side runs the full emission pipeline a
//! consumer pays on a cache miss — CFM certification, Theorem 1 proof
//! search, canonical serialization — and the validate side runs exactly
//! what `checkproof` runs: parse the source, decode the certificate,
//! replay the checker's side conditions. Both sides re-parse the source,
//! so the ratio isolates proving against checking. The numbers are
//! recorded as measured, whatever the ratio turns out to be.
//!
//! Do not expect a dramatic speedup: Theorem 1's prover is
//! syntax-directed and linear, so "re-proving" was never the expensive
//! part, and validation must JSON-decode a certificate that is an order
//! of magnitude larger than the source. The point of the split is
//! trust, not CPU — a validator needs no prover, no search fuel, and no
//! faith in the peer that ran them.

use std::time::Instant;

use secflow_cert::{emit_certificate, show_two_class, validate_certificate};
use secflow_core::StaticBinding;
use secflow_lang::{parse, print_program};
use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow_logic::prove;
use secflow_workload::{dining_philosophers, sequential_chain};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 5 } else { 15 };

    let workloads: Vec<(&str, String)> = if quick {
        vec![
            ("sequential_chain", print_program(&sequential_chain(120, 8))),
            (
                "dining_philosophers",
                print_program(&dining_philosophers(3, 3, true)),
            ),
        ]
    } else {
        vec![
            ("sequential_chain", print_program(&sequential_chain(400, 8))),
            (
                "dining_philosophers",
                print_program(&dining_philosophers(5, 3, true)),
            ),
        ]
    };

    println!("# cert_validate — {reps} reps/side\n");
    let mut rows = Vec::new();
    for (name, source) in &workloads {
        let program = parse(source).expect("workload parses");
        let binding = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);

        // The certificate every validation run consumes.
        let proof = prove(&program, &binding, Extended::Nil, Extended::Nil)
            .expect("workload certifies under the constant binding");
        let cert = emit_certificate(&proof, &program.symbols, "two", source, &show_two_class);

        let prove_secs = median(reps, || {
            let program = parse(source).expect("workload parses");
            let proof = prove(&program, &binding, Extended::Nil, Extended::Nil).expect("proves");
            let cert = emit_certificate(&proof, &program.symbols, "two", source, &show_two_class);
            assert!(!cert.digest.is_empty());
        });
        let validate_secs = median(reps, || {
            validate_certificate(source, &cert.text).expect("own certificate validates");
        });
        let ratio = prove_secs / validate_secs;
        println!(
            "{name:22} {:>5} nodes  {:>7} cert bytes  prove {prove_secs:>10.6}s  validate {validate_secs:>10.6}s  {ratio:>6.2}x",
            cert.nodes,
            cert.text.len(),
        );
        rows.push((
            name.to_string(),
            cert.nodes,
            cert.text.len(),
            prove_secs,
            validate_secs,
            ratio,
        ));
    }
    println!();

    let json = render_json(quick, &rows);
    std::fs::write("BENCH_checkproof.json", &json).expect("write BENCH_checkproof.json");
    println!("wrote BENCH_checkproof.json");
}

/// Median wall time of `f` over `reps` runs.
fn median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[allow(clippy::type_complexity)]
fn render_json(quick: bool, rows: &[(String, usize, usize, f64, f64, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cert_validate\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, (name, nodes, bytes, prove_secs, validate_secs, ratio)) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{name}\",\n"));
        out.push_str(&format!("      \"proof_nodes\": {nodes},\n"));
        out.push_str(&format!("      \"cert_bytes\": {bytes},\n"));
        out.push_str(&format!("      \"prove_emit_secs\": {prove_secs:.6},\n"));
        out.push_str(&format!("      \"validate_secs\": {validate_secs:.6},\n"));
        out.push_str(&format!("      \"prove_over_validate\": {ratio:.3}\n"));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"note\": \"the prover is syntax-directed and linear, so validation's win is \
         trust (no prover, no fuel) rather than wall time; decode cost scales with the \
         certificate, which is ~10x the source\"\n",
    );
    out.push_str("}\n");
    out
}
