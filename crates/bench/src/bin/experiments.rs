//! `experiments` — regenerate every paper-vs-measured table in one run.
//!
//! Criterion gives rigorous timings (`cargo bench`); this binary gives the
//! *shape* of every experiment quickly and prints the markdown tables that
//! EXPERIMENTS.md records:
//!
//! ```bash
//! cargo run --release -p secflow-bench --bin experiments
//! ```

use std::time::Instant;

use secflow_core::{certify, certify_quadratic, denning_certify, infer_binding, StaticBinding};
use secflow_lang::{parse, Program};
use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};
use secflow_logic::{build_proof, check_proof};
use secflow_runtime::{
    check_binary_secret, explore, run, ExploreLimits, Machine, RoundRobin, TaintMonitor,
};
use secflow_workload::{
    decode_transmitted, fig3_baseline_gap_binding, fig3_high_x_binding, fig3_program, generate,
    kbit_channel, random_binding, sequential_chain, GenConfig,
};

fn main() {
    println!("# secflow experiment runner\n");
    e3_fig3();
    e5_e6_theorems();
    e7_linearity();
    e10_leak_matrix();
    println!("\nall experiment shapes reproduced; see EXPERIMENTS.md for context");
}

/// Median wall time of `f` over `reps` runs.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn e3_fig3() {
    println!("## E3 — Figure 3\n");
    let p = fig3_program();

    // Exploration claims.
    for x in [0i64, 1] {
        let r = explore(&p, &[(p.var("x"), x)], ExploreLimits::default());
        let ys = r.project(&[p.var("y")]);
        println!(
            "x = {x}: {} states explored, deadlocks = {}, y outcomes = {:?}",
            r.states,
            r.deadlocks,
            ys.iter().map(|v| v[0]).collect::<Vec<_>>()
        );
        assert_eq!(r.deadlocks, 0);
    }

    // Verdict matrix.
    println!("\n| binding | CFM | Denning baseline |");
    println!("|---|---|---|");
    for (name, binding) in [
        ("x High, rest Low", fig3_high_x_binding(&p)),
        ("x + semaphores High", fig3_baseline_gap_binding(&p)),
    ] {
        println!(
            "| {name} | {} | {} |",
            verdict(certify(&p, &binding).certified()),
            verdict(denning_certify(&p, &binding).certified()),
        );
    }

    // Unsatisfiable policy witness.
    let err = infer_binding(
        &p,
        &TwoPointScheme,
        [(p.var("x"), TwoPoint::High), (p.var("y"), TwoPoint::Low)],
    )
    .unwrap_err();
    println!("\nwitness chain for x=High,y=Low: {}", err.render_path(&p));

    // k-bit channel.
    println!("\n| k | value sent | value decoded | machine steps |");
    println!("|---|---|---|---|");
    for k in [2u32, 4, 8] {
        let chan = kbit_channel(k);
        let x = (1i64 << k) - 2;
        let mut m = Machine::with_inputs(&chan, &[(chan.var("x"), x)]);
        assert!(run(&mut m, &mut RoundRobin::new(), 1_000_000).terminated());
        let y = decode_transmitted(m.get(chan.var("y")), k);
        println!("| {k} | {x} | {y} | {} |", m.steps());
        assert_eq!(y, x);
    }
    println!();
}

fn e5_e6_theorems() {
    println!("## E5/E6 — Theorems 1 & 2 sweep\n");
    let cfg = GenConfig {
        target_stmts: 30,
        max_depth: 5,
        n_vars: 4,
        n_sems: 2,
        bounded_loops: true,
    };
    let (mut certified, mut rejected, mut divergent) = (0, 0, 0);
    for seed in 0..300u64 {
        let program = generate(&cfg, seed);
        let sbind = random_binding(&program, &TwoPointScheme, seed ^ 0xABCD);
        let cert = certify(&program, &sbind).certified();
        let proof = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
        let checks = check_proof(&program.body, &proof).is_ok();
        match (cert, checks) {
            (true, true) => certified += 1,
            (false, false) => rejected += 1,
            _ => divergent += 1,
        }
    }
    println!("| corpus | certified ∧ proof checks | rejected ∧ proof fails | divergent |");
    println!("|---|---|---|---|");
    println!("| 300 random (program, binding) pairs | {certified} | {rejected} | {divergent} |");
    assert_eq!(divergent, 0, "Theorem 1/2 equivalence must be exact");
    // Uniform bindings always certify, adding positive-direction coverage.
    let mut uniform_ok = 0;
    for seed in 1_000..1_040u64 {
        let program = generate(&cfg, seed);
        let sbind = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        let proof = build_proof(&program, &sbind, Extended::Nil, Extended::Nil);
        assert!(certify(&program, &sbind).certified());
        assert!(check_proof(&program.body, &proof).is_ok());
        uniform_ok += 1;
    }
    println!("| 40 uniform-binding pairs (all certified) | {uniform_ok} | 0 | 0 |");
    println!();
}

fn e7_linearity() {
    println!("## E7 — §6 linear-time claim (ns per statement)\n");
    println!("| statements | CFM | Denning | quadratic ablation |");
    println!("|---|---|---|---|");
    for &size in &[512usize, 1024, 2048, 4096, 8192] {
        let program = sequential_chain(size, 8);
        let stmts = program.statement_count() as f64;
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        let cfm = time_median(9, || {
            assert!(certify(&program, &binding).certified());
        });
        let denning = time_median(9, || {
            assert!(denning_certify(&program, &binding).certified());
        });
        let quad = time_median(3, || {
            assert!(certify_quadratic(&program, &binding));
        });
        println!(
            "| {} | {:.1} | {:.1} | {:.1} |",
            stmts as usize,
            cfm * 1e9 / stmts,
            denning * 1e9 / stmts,
            quad * 1e9 / stmts,
        );
    }
    println!("\n(flat columns = linear; the ablation column grows with size)\n");
}

fn leak_cases() -> Vec<(&'static str, Program)> {
    [
        ("direct assignment", "var h, l : integer; l := h"),
        (
            "implicit (both arms)",
            "var h, l : integer; if h = 0 then l := 1 else l := 2",
        ),
        (
            "implicit (untaken arm)",
            "var h, l : integer; if h = 0 then l := 1",
        ),
        (
            "loop-carried count",
            "var h, l : integer; while h > 0 do begin l := l + 1; h := h - 1 end",
        ),
        (
            "synchronization",
            "var h, l : integer; sem : semaphore;
             cobegin if h = 0 then signal(sem) || begin wait(sem); l := 0 end coend",
        ),
        ("no flow (constant)", "var h, l : integer; l := 7"),
        (
            "dead store (§5.2)",
            "var h, l : integer; begin h := 0; l := h end",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n, parse(s).unwrap()))
    .collect()
}

fn e10_leak_matrix() {
    println!("## E10 — leak matrix\n");
    println!("(the monitor columns are per run: a leak is only caught if the");
    println!("run that reveals the secret is itself flagged)\n");
    println!("| program | interferes? | CFM | monitor (h=0 run) | monitor (h=1 run) |");
    println!("|---|---|---|---|---|");
    for (name, program) in leak_cases() {
        let h = program.var("h");
        let l = program.var("l");
        let ni = check_binary_secret(&program, h, &[l], ExploreLimits::default());
        let binding =
            StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(h, TwoPoint::High);
        let cfm_rejects = !certify(&program, &binding).certified();
        let labels: Vec<TwoPoint> = program
            .symbols
            .iter()
            .map(|(id, _)| {
                if id == h {
                    TwoPoint::High
                } else {
                    TwoPoint::Low
                }
            })
            .collect();
        let per_run: Vec<&str> = [0i64, 1]
            .iter()
            .map(|&secret| {
                let machine = Machine::with_inputs(&program, &[(h, secret)]);
                let mut mon = TaintMonitor::new(machine, labels.clone(), TwoPoint::Low);
                mon.run(&mut RoundRobin::new(), 100_000);
                if mon.labels()[l.index()] == TwoPoint::High {
                    "flags"
                } else {
                    "silent"
                }
            })
            .collect();
        println!(
            "| {name} | {} | {} | {} | {} |",
            if ni.interferes { "yes" } else { "no" },
            if cfm_rejects { "rejects" } else { "certifies" },
            per_run[0],
            per_run[1],
        );
        if ni.interferes {
            assert!(cfm_rejects, "{name}: soundness violation!");
        }
    }
    println!();
}

fn verdict(certified: bool) -> &'static str {
    if certified {
        "certifies"
    } else {
        "REJECTS"
    }
}
