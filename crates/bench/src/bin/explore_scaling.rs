//! `explore_scaling` — E12: throughput of the work-stealing explorer at
//! 1/2/4/8 threads, recorded as `BENCH_explore.json`.
//!
//! ```bash
//! cargo run --release -p secflow-bench --bin explore_scaling [-- --quick]
//! ```
//!
//! `--quick` shrinks the workloads and repetitions for CI smoke runs.
//! The JSON records the host's core count next to every measurement:
//! speedup is only physically possible up to that count, so a 1-core
//! container legitimately reports flat (or slightly negative) scaling.

use std::time::Instant;

use secflow_lang::Program;
use secflow_runtime::{explore_with, pexplore_with, ExploreLimits};
use secflow_workload::{dining_philosophers, sequential_chain};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let workloads: Vec<(&str, Program)> = if quick {
        vec![
            ("sequential_chain", sequential_chain(200, 8)),
            ("dining_philosophers", dining_philosophers(3, 3, true)),
        ]
    } else {
        vec![
            ("sequential_chain", sequential_chain(600, 8)),
            ("dining_philosophers", dining_philosophers(4, 3, true)),
        ]
    };

    println!("# explore_scaling — {cores} host core(s), {reps} reps/point\n");
    let mut rows = Vec::new();
    for (name, program) in &workloads {
        let limits = ExploreLimits {
            max_states: 2_000_000,
            max_depth: 100_000,
        };
        let mut points = Vec::new();
        let mut states = 0usize;
        for &threads in &THREADS {
            let secs = median(reps, || {
                let report = if threads > 1 {
                    pexplore_with(program, &[], limits, threads, &|| false)
                } else {
                    explore_with(program, &[], limits, &|| false)
                };
                assert!(!report.truncated, "{name}: limits bound");
                states = report.states;
            });
            let rate = states as f64 / secs;
            println!("{name:22} threads={threads}  {states:>8} states  {rate:>12.0} states/s");
            points.push((threads, secs, rate));
        }
        let speedup4 = points[2].2 / points[0].2;
        println!("{name:22} 4-thread speedup: {speedup4:.2}x\n");
        rows.push((name.to_string(), states, points, speedup4));
    }

    let json = render_json(cores, quick, &rows);
    std::fs::write("BENCH_explore.json", &json).expect("write BENCH_explore.json");
    println!("wrote BENCH_explore.json");
}

/// Median wall time of `f` over `reps` runs.
fn median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[allow(clippy::type_complexity)]
fn render_json(
    cores: usize,
    quick: bool,
    rows: &[(String, usize, Vec<(usize, f64, f64)>, f64)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"explore_scaling\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, (name, states, points, speedup4)) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{name}\",\n"));
        out.push_str(&format!("      \"states\": {states},\n"));
        out.push_str(&format!("      \"speedup_4_threads\": {speedup4:.3},\n"));
        out.push_str("      \"points\": [\n");
        for (j, (threads, secs, rate)) in points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {threads}, \"secs\": {secs:.6}, \"states_per_sec\": {rate:.0}}}{}\n",
                if j + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
