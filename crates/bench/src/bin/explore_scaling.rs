//! `explore_scaling` — E12/E15: throughput of the work-stealing explorer
//! at 1/2/4/8 threads plus the partial-order-reduction state counts,
//! recorded as `BENCH_explore.json`.
//!
//! ```bash
//! cargo run --release -p secflow-bench --bin explore_scaling [-- --quick]
//! ```
//!
//! `--quick` shrinks the workloads and repetitions for CI smoke runs.
//! The JSON records the host's core count next to every measurement:
//! speedup is only physically possible up to that count, so a 1-core
//! container legitimately reports flat (or slightly negative) scaling.
//!
//! Thread-scaling points run in matched persistent-only mode (the mode
//! both engines implement identically) so the state count is constant
//! across the row. The POR columns compare the full interleaving search
//! against the sequential default mode (persistent sets + sleep sets);
//! `sequential_chain` is the honest no-win row — one process has
//! nothing to commute with.

use std::time::Instant;

use secflow_lang::Program;
use secflow_runtime::{explore_with, pexplore_with, ExploreLimits};
use secflow_workload::{dining_philosophers, indep, sequential_chain};

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct PorRow {
    full_states: usize,
    full_secs: f64,
    por_states: usize,
    por_pruned: usize,
    por_secs: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let workloads: Vec<(&str, Program)> = if quick {
        vec![
            ("sequential_chain", sequential_chain(200, 8)),
            ("dining_philosophers", dining_philosophers(3, 3, true)),
            ("indep", indep(3, 4)),
        ]
    } else {
        vec![
            ("sequential_chain", sequential_chain(600, 8)),
            ("dining_philosophers", dining_philosophers(4, 3, true)),
            ("indep", indep(4, 4)),
        ]
    };

    println!("# explore_scaling — {cores} host core(s), {reps} reps/point\n");
    let mut rows = Vec::new();
    for (name, program) in &workloads {
        let limits = ExploreLimits {
            max_states: 2_000_000,
            max_depth: 100_000,
            ..ExploreLimits::default()
        };
        let scaling = limits.persistent_only();
        let mut points = Vec::new();
        let mut states = 0usize;
        for &threads in &THREADS {
            let secs = median(reps, || {
                let report = if threads > 1 {
                    pexplore_with(program, &[], scaling, threads, &|| false)
                } else {
                    explore_with(program, &[], scaling, &|| false)
                };
                assert!(!report.truncated, "{name}: limits bound");
                states = report.states;
            });
            let rate = states as f64 / secs;
            println!("{name:22} threads={threads}  {states:>8} states  {rate:>12.0} states/s");
            points.push((threads, secs, rate));
        }
        let speedup4 = points[2].2 / points[0].2;
        println!("{name:22} 4-thread speedup: {speedup4:.2}x");

        let por = por_row(name, program, limits, reps);
        let ratio = por.full_states as f64 / por.por_states.max(1) as f64;
        println!(
            "{name:22} por: {} -> {} states ({ratio:.1}x, {} pruned)\n",
            por.full_states, por.por_states, por.por_pruned
        );
        rows.push((name.to_string(), states, points, speedup4, por));
    }

    let json = render_json(cores, quick, &rows);
    std::fs::write("BENCH_explore.json", &json).expect("write BENCH_explore.json");
    println!("wrote BENCH_explore.json");
}

/// Measures the full search against the sequential default (POR) mode.
fn por_row(name: &str, program: &Program, limits: ExploreLimits, reps: usize) -> PorRow {
    let mut full_states = 0usize;
    let full_secs = median(reps, || {
        let report = explore_with(program, &[], limits.without_por(), &|| false);
        assert!(!report.truncated, "{name}: full search hit the limits");
        full_states = report.states;
    });
    let mut por_states = 0usize;
    let mut por_pruned = 0usize;
    let por_secs = median(reps, || {
        let report = explore_with(program, &[], limits, &|| false);
        assert!(!report.truncated, "{name}: reduced search hit the limits");
        por_states = report.states;
        por_pruned = report.states_pruned;
    });
    PorRow {
        full_states,
        full_secs,
        por_states,
        por_pruned,
        por_secs,
    }
}

/// Median wall time of `f` over `reps` runs.
fn median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[allow(clippy::type_complexity)]
fn render_json(
    cores: usize,
    quick: bool,
    rows: &[(String, usize, Vec<(usize, f64, f64)>, f64, PorRow)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"explore_scaling\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, (name, states, points, speedup4, por)) in rows.iter().enumerate() {
        let ratio = por.full_states as f64 / por.por_states.max(1) as f64;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{name}\",\n"));
        out.push_str(&format!("      \"states\": {states},\n"));
        out.push_str(&format!("      \"speedup_4_threads\": {speedup4:.3},\n"));
        out.push_str("      \"por\": {\n");
        out.push_str(&format!(
            "        \"full_states\": {}, \"full_secs\": {:.6},\n",
            por.full_states, por.full_secs
        ));
        out.push_str(&format!(
            "        \"por_states\": {}, \"por_secs\": {:.6}, \"states_pruned\": {},\n",
            por.por_states, por.por_secs, por.por_pruned
        ));
        out.push_str(&format!("        \"reduction_factor\": {ratio:.2}\n"));
        out.push_str("      },\n");
        out.push_str("      \"points\": [\n");
        for (j, (threads, secs, rate)) in points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {threads}, \"secs\": {secs:.6}, \"states_per_sec\": {rate:.0}}}{}\n",
                if j + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
