//! `serve_bench` — E16: request latency through the two TCP front-ends
//! (readiness-driven poll loop vs legacy thread-per-connection) at
//! several concurrency levels, plus the sharded-cluster path (client →
//! router → 3-node ring, one forward hop per uncached request),
//! recorded as `BENCH_serve.json`.
//!
//! ```bash
//! cargo run --release -p secflow-bench --bin serve_bench [-- --quick]
//! ```
//!
//! Each client owns one connection and plays lockstep request/reply so
//! the numbers isolate front-end overhead (framing, readiness, reply
//! routing), not pipelining throughput. Requests rotate over a small
//! source pool, so after the first pass the result cache answers and
//! the certify cost itself stays out of the measurement. The JSON
//! records the host's core count next to every row: on a 1-core host
//! both front-ends serialize and the poll loop's advantage is bounded
//! to what one core can show.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use secflow_lang::print_program;
use secflow_server::{
    bind_ephemeral, serve_listener, serve_tcp, ClusterConfig, FrontEnd, Op, Request, ServerConfig,
};
use secflow_workload::sequential_chain;

const CLIENTS: [usize; 3] = [1, 8, 64];

struct Point {
    clients: usize,
    requests: usize,
    p50_us: u64,
    p99_us: u64,
    reqs_per_sec: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_client = if quick { 50 } else { 400 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let sources: Vec<String> = (0..16)
        .map(|i| print_program(&sequential_chain(10 + i, 4)))
        .collect();

    println!("# serve_bench — {cores} host core(s), {per_client} reqs/client\n");
    let mut rows = Vec::new();
    for front_end in [FrontEnd::Poll, FrontEnd::Threaded] {
        let name = match front_end {
            FrontEnd::Poll => "poll",
            FrontEnd::Threaded => "threaded",
        };
        let mut points = Vec::new();
        for &clients in &CLIENTS {
            let point = run_level(front_end, clients, per_client, &sources);
            println!(
                "{name:9} clients={clients:<3} {:>6} reqs  p50={:>5}us  p99={:>6}us  {:>8.0} req/s",
                point.requests, point.p50_us, point.p99_us, point.reqs_per_sec
            );
            points.push(point);
        }
        println!();
        rows.push((name, points));
    }

    // The cluster column: same lockstep clients, but every request
    // crosses the router and (when uncached) one forward hop to its
    // ring owner — the price of sharding, next to the direct rows.
    let mut points = Vec::new();
    for &clients in &CLIENTS {
        let point = run_level_router(clients, per_client, &sources);
        println!(
            "{:9} clients={clients:<3} {:>6} reqs  p50={:>5}us  p99={:>6}us  {:>8.0} req/s",
            "router", point.requests, point.p50_us, point.p99_us, point.reqs_per_sec
        );
        points.push(point);
    }
    println!();
    rows.push(("router", points));

    let json = render_json(cores, quick, per_client, &rows);
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

/// One front-end × concurrency cell: fresh server, `clients` lockstep
/// connections, every per-request latency pooled for the percentiles.
fn run_level(front_end: FrontEnd, clients: usize, per_client: usize, sources: &[String]) -> Point {
    let cfg = ServerConfig {
        front_end,
        workers: 4,
        queue_capacity: 512,
        cache_capacity: 4096,
        ..ServerConfig::default()
    };
    let server = serve_tcp("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().to_string();

    let point = drive(&addr, clients, per_client, sources);

    shutdown(&addr);
    server.join().expect("server thread");
    point
}

/// The cluster cell: 3 sharded nodes plus a router, all in-process,
/// clients talking only to the router.
fn run_level_router(clients: usize, per_client: usize, sources: &[String]) -> Point {
    let listeners: Vec<_> = (0..3)
        .map(|_| bind_ephemeral().expect("bind node"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let node_cfg = || ServerConfig {
        workers: 4,
        queue_capacity: 512,
        cache_capacity: 4096,
        ..ServerConfig::default()
    };
    let mut servers = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let mut cluster = ClusterConfig::new(&addrs);
        cluster.self_addr = Some(addrs[i].clone());
        let cfg = ServerConfig {
            cluster: Some(cluster),
            ..node_cfg()
        };
        servers.push(serve_listener(listener, cfg).expect("serve node"));
    }
    let listener = bind_ephemeral().expect("bind router");
    let router_addr = listener.local_addr().unwrap().to_string();
    let cfg = ServerConfig {
        cluster: Some(ClusterConfig::new(&addrs)),
        ..node_cfg()
    };
    let router = serve_listener(listener, cfg).expect("serve router");

    let point = drive(&router_addr, clients, per_client, sources);

    shutdown(&router_addr);
    router.join().expect("router thread");
    for (addr, server) in addrs.iter().zip(servers) {
        shutdown(addr);
        server.join().expect("node thread");
    }
    point
}

/// `clients` lockstep connections against `addr`, every per-request
/// latency pooled for the percentiles.
fn drive(addr: &str, clients: usize, per_client: usize, sources: &[String]) -> Point {
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let lines: Vec<String> = (0..per_client)
            .map(|r| {
                let req = Request::new(Op::Certify, sources[(c + r) % sources.len()].clone());
                format!("{}\n", req.to_line())
            })
            .collect();
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut latencies = Vec::with_capacity(lines.len());
            let mut reply = String::new();
            for line in &lines {
                let t = Instant::now();
                writer.write_all(line.as_bytes()).expect("write");
                reply.clear();
                let n = reader.read_line(&mut reply).expect("read");
                assert!(n > 0, "server closed mid-bench");
                latencies.push(t.elapsed().as_micros() as u64);
            }
            latencies
        }));
    }
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("bench client"))
        .collect();
    let wall = started.elapsed().as_secs_f64();

    latencies.sort_unstable();
    let requests = latencies.len();
    Point {
        clients,
        requests,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        reqs_per_sec: requests as f64 / wall,
    }
}

fn shutdown(addr: &str) {
    let mut ctl = TcpStream::connect(addr).expect("ctl connect");
    writeln!(ctl, r#"{{"op":"shutdown"}}"#).expect("shutdown");
    let mut ack = String::new();
    BufReader::new(&ctl).read_line(&mut ack).expect("ack");
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

fn render_json(
    cores: usize,
    quick: bool,
    per_client: usize,
    rows: &[(&str, Vec<Point>)],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_bench\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"requests_per_client\": {per_client},\n"));
    out.push_str("  \"front_ends\": [\n");
    for (i, (name, points)) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{name}\",\n"));
        out.push_str("      \"points\": [\n");
        for (j, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"clients\": {}, \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \"reqs_per_sec\": {:.0}}}{}\n",
                p.clients,
                p.requests,
                p.p50_us,
                p.p99_us,
                p.reqs_per_sec,
                if j + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
