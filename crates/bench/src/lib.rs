//! Benchmark-only crate; all content lives in `benches/`.
