//! Experiment E5: cost of the Theorem 1 constructive prover and the
//! independent checker, versus program size.
//!
//! The §6 claim covers "both mechanisms"; proof *construction* is also
//! near-linear (the builder computes flows bottom-up), while checking a
//! `cobegin` pays the quadratic interference-freedom obligation — the
//! series here make that split visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use secflow_core::StaticBinding;
use secflow_lattice::{Extended, TwoPointScheme};
use secflow_logic::{build_proof, check_proof};
use secflow_workload::{sequential_chain, sync_heavy};

fn bench_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover/build_chain");
    for &size in &[128usize, 256, 512, 1024, 2048] {
        let program = sequential_chain(size, 8);
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        group.throughput(Throughput::Elements(program.statement_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &program, |b, p| {
            b.iter(|| black_box(build_proof(p, &binding, Extended::Nil, Extended::Nil).size()));
        });
    }
    group.finish();
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover/check_chain");
    for &size in &[128usize, 256, 512, 1024] {
        let program = sequential_chain(size, 8);
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        let proof = build_proof(&program, &binding, Extended::Nil, Extended::Nil);
        group.throughput(Throughput::Elements(program.statement_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &proof, |b, proof| {
            b.iter(|| black_box(check_proof(&program.body, proof).is_ok()));
        });
    }
    group.finish();
}

fn bench_checker_concurrent(c: &mut Criterion) {
    // Interference freedom is O(|assertions| × |atomic actions|): expect
    // super-linear growth here, unlike certification itself.
    let mut group = c.benchmark_group("prover/check_sync");
    group.sample_size(10);
    for &rounds in &[4usize, 8, 16, 32] {
        let program = sync_heavy(rounds);
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        let proof = build_proof(&program, &binding, Extended::Nil, Extended::Nil);
        group.throughput(Throughput::Elements(program.statement_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &proof, |b, proof| {
            b.iter(|| black_box(check_proof(&program.body, proof).is_ok()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_builder, bench_checker, bench_checker_concurrent
}
criterion_main!(benches);
