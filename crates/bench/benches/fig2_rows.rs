//! Experiment E2: per-row cost of the Figure 2 certification functions.
//!
//! Each benchmark certifies a program made (almost) entirely of one
//! statement form, isolating the cost of that row's `mod`/`flow`/`cert`
//! computation. The paper's table has seven rows; `skip` is our
//! harmless extension.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use secflow_core::{certify, StaticBinding};
use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::Program;
use secflow_lattice::TwoPointScheme;

const N: usize = 1000;

fn row_assign() -> Program {
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    b.finish(s::seq(
        (0..N).map(|_| s::assign(x, e::add(e::var(x), e::konst(1)))),
    ))
}

fn row_if() -> Program {
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    b.finish(s::seq((0..N).map(|_| {
        s::if_else(
            e::eq(e::var(x), e::konst(0)),
            s::assign(x, e::konst(1)),
            s::assign(x, e::konst(2)),
        )
    })))
}

fn row_while() -> Program {
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    b.finish(s::seq((0..N).map(|_| {
        s::while_do(
            e::gt(e::var(x), e::konst(0)),
            s::assign(x, e::sub(e::var(x), e::konst(1))),
        )
    })))
}

fn row_cobegin() -> Program {
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    let y = b.data("y");
    b.finish(s::seq((0..N / 2).map(|_| {
        s::cobegin([s::assign(x, e::konst(1)), s::assign(y, e::konst(2))])
    })))
}

fn row_wait_signal() -> Program {
    let mut b = ProgramBuilder::new();
    let sem = b.sem("s", 0);
    b.finish(s::seq(
        (0..N / 2).flat_map(|_| [s::signal(sem), s::wait(sem)]),
    ))
}

fn row_skip() -> Program {
    let mut b = ProgramBuilder::new();
    let _ = b.data("x");
    b.finish(s::seq((0..N).map(|_| s::skip())))
}

fn bench_rows(c: &mut Criterion) {
    let rows: [(&str, Program); 6] = [
        ("assign", row_assign()),
        ("if", row_if()),
        ("while", row_while()),
        ("cobegin", row_cobegin()),
        ("wait_signal", row_wait_signal()),
        ("skip", row_skip()),
    ];
    let mut group = c.benchmark_group("fig2_rows");
    for (name, program) in rows {
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        group.bench_function(name, |b| {
            b.iter(|| black_box(certify(&program, &binding).certified()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
