//! Throughput of the certification service's worker pool and result
//! cache: requests/second through `Service::handle_line` both cold
//! (distinct programs, every request certified from scratch) and warm
//! (one program repeated, served from the content-addressed cache),
//! and end-to-end through the bounded pool at varying worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::mpsc;
use std::sync::Arc;

use secflow_lang::print_program;
use secflow_server::pool::Pool;
use secflow_server::service::{Limits, Service};
use secflow_workload::sequential_chain;

fn certify_request(id: usize, source: &str) -> String {
    let mut escaped = String::with_capacity(source.len() + 16);
    for ch in source.chars() {
        match ch {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            _ => escaped.push(ch),
        }
    }
    format!(r#"{{"id":{id},"op":"certify","source":"{escaped}","classes":{{}}}}"#)
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("server/service");
    let source = print_program(&sequential_chain(512, 8));
    let requests: Vec<String> = (0..64)
        .map(|i| certify_request(i, &print_program(&sequential_chain(480 + i, 8))))
        .collect();

    // Cold path: 64 distinct programs, cache never hits.
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("cold_64_distinct", |b| {
        b.iter(|| {
            let service = Service::new(1024, Limits::default());
            for line in &requests {
                black_box(service.handle_line(line));
            }
        });
    });

    // Warm path: identical request answered from the cache.
    let repeated = certify_request(0, &source);
    let warm = Service::new(1024, Limits::default());
    black_box(warm.handle_line(&repeated));
    group.throughput(Throughput::Elements(1));
    group.bench_function("warm_cache_hit", |b| {
        b.iter(|| black_box(warm.handle_line(&repeated)));
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("server/pool");
    group.sample_size(10);
    let requests: Arc<Vec<String>> = Arc::new(
        (0..256)
            .map(|i| certify_request(i, &print_program(&sequential_chain(200 + (i % 64), 8))))
            .collect(),
    );

    for workers in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(requests.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("certify_256_reqs", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // Cache disabled so every request does real work and
                    // the sweep isolates pool scaling.
                    let service = Arc::new(Service::new(0, Limits::default()));
                    let pool = Pool::new(workers, 512);
                    let (tx, rx) = mpsc::channel::<usize>();
                    for line in requests.iter() {
                        let line = line.clone();
                        let service = Arc::clone(&service);
                        let tx = tx.clone();
                        pool.submit(move || {
                            let reply = service.handle_line(&line);
                            let _ = tx.send(reply.len());
                        })
                        .unwrap();
                    }
                    drop(tx);
                    let total: usize = rx.iter().sum();
                    pool.shutdown();
                    black_box(total)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_service, bench_pool);
criterion_main!(benches);
