//! Experiment E7: the §6 linear-time claim.
//!
//! "The increase in power has been achieved without the loss of
//! computational efficiency; both mechanisms can be computed in time
//! proportional to the length of the program, once the program has been
//! parsed."
//!
//! Sweeps CFM and the Denning baseline over doubling program sizes in
//! four families, each stressing a different Figure 2 row. Criterion's
//! throughput mode reports time/statement; the series is linear iff that
//! number is flat across the sweep (see EXPERIMENTS.md for recorded
//! values).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use secflow_core::{certify, certify_quadratic, denning_certify, StaticBinding};
use secflow_lang::Program;
use secflow_lattice::TwoPointScheme;
use secflow_workload::{branchy, loop_heavy, sequential_chain, sync_heavy};

const SIZES: &[usize] = &[256, 512, 1024, 2048, 4096, 8192];

fn family(name: &str, size: usize) -> Program {
    match name {
        "chain" => sequential_chain(size, 8),
        "loops" => loop_heavy(size / 3),
        "sync" => sync_heavy(size / 7),
        "branchy" => branchy((size.ilog2() as usize).max(4)),
        _ => unreachable!(),
    }
}

fn bench_mechanism(c: &mut Criterion) {
    for fam in ["chain", "loops", "sync", "branchy"] {
        let mut group = c.benchmark_group(format!("cfm_linear/{fam}"));
        for &size in SIZES {
            let program = family(fam, size);
            let stmts = program.statement_count();
            let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
            group.throughput(Throughput::Elements(stmts as u64));
            group.bench_with_input(BenchmarkId::from_parameter(stmts), &program, |b, p| {
                b.iter(|| black_box(certify(p, &binding).certified()));
            });
        }
        group.finish();
    }
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("denning_linear/chain");
    for &size in SIZES {
        let program = sequential_chain(size, 8);
        let stmts = program.statement_count();
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        group.throughput(Throughput::Elements(stmts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &program, |b, p| {
            b.iter(|| black_box(denning_certify(p, &binding).certified()));
        });
    }
    group.finish();
}

fn bench_parsing_for_scale(c: &mut Criterion) {
    // The claim is "once the program has been parsed"; record parsing
    // cost separately so the two are not conflated.
    use secflow_lang::{parse, print_program};
    let mut group = c.benchmark_group("parse_linear/chain");
    for &size in &[256usize, 1024, 4096] {
        let text = print_program(&sequential_chain(size, 8));
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &text, |b, t| {
            b.iter(|| black_box(parse(t).unwrap().statement_count()));
        });
    }
    group.finish();
}

fn bench_quadratic_ablation(c: &mut Criterion) {
    // The ablation arm: the literal pairwise Figure 2 composition check.
    // Its time/statement grows with size; the production series is flat.
    let mut group = c.benchmark_group("cfm_quadratic_ablation/chain");
    group.sample_size(10);
    for &size in &[256usize, 512, 1024, 2048, 4096] {
        let program = sequential_chain(size, 8);
        let stmts = program.statement_count();
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
        group.throughput(Throughput::Elements(stmts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(stmts), &program, |b, p| {
            b.iter(|| black_box(certify_quadratic(p, &binding)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mechanism, bench_baseline, bench_parsing_for_scale, bench_quadratic_ablation
}
criterion_main!(benches);
