//! Experiment E3: Figure 3 end to end, plus the k-bit channel.
//!
//! Measures everything the reproduction does with Figure 3: CFM and
//! baseline certification, binding inference, exhaustive exploration,
//! a concrete run, and the k-bit generalization's transmission cost as
//! k grows (linear in k: each bit is one constant-size handshake round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use secflow_core::{certify, denning_certify, infer_binding};
use secflow_lattice::{TwoPoint, TwoPointScheme};
use secflow_runtime::{explore, run, ExploreLimits, Machine, RoundRobin};
use secflow_workload::{fig3_baseline_gap_binding, fig3_program, kbit_channel};

fn bench_fig3(c: &mut Criterion) {
    let program = fig3_program();
    let binding = fig3_baseline_gap_binding(&program);
    let mut group = c.benchmark_group("fig3");

    group.bench_function("certify_cfm", |b| {
        b.iter(|| black_box(certify(&program, &binding).certified()));
    });
    group.bench_function("certify_baseline", |b| {
        b.iter(|| black_box(denning_certify(&program, &binding).certified()));
    });
    group.bench_function("infer_binding", |b| {
        b.iter(|| {
            black_box(
                infer_binding(
                    &program,
                    &TwoPointScheme,
                    [(program.var("x"), TwoPoint::High)],
                )
                .unwrap(),
            )
        });
    });
    group.bench_function("explore_all_interleavings", |b| {
        b.iter(|| {
            black_box(explore(
                &program,
                &[(program.var("x"), 1)],
                ExploreLimits::default(),
            ))
        });
    });
    group.bench_function("single_run", |b| {
        b.iter(|| {
            let mut m = Machine::with_inputs(&program, &[(program.var("x"), 1)]);
            run(&mut m, &mut RoundRobin::new(), 10_000);
            black_box(m.get(program.var("y")))
        });
    });
    group.finish();
}

fn bench_kbit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kbit_channel");
    for k in [1u32, 2, 4, 8, 16] {
        let program = kbit_channel(k);
        let x = (1i64 << k) - 1;
        group.bench_with_input(BenchmarkId::from_parameter(k), &program, |b, p| {
            b.iter(|| {
                let mut m = Machine::with_inputs(p, &[(p.var("x"), x)]);
                run(&mut m, &mut RoundRobin::new(), 1_000_000);
                black_box(m.get(p.var("y")))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3, bench_kbit);
criterion_main!(benches);
