//! Runtime substrate benchmarks: interpreter step throughput, scheduler
//! overhead, and exploration scaling.
//!
//! Not a paper figure, but the substrate all empirical experiments stand
//! on; recorded so regressions in the machine don't silently distort the
//! E3/E9/E10 measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use secflow_lang::parse;
use secflow_runtime::{explore, run, ExploreLimits, Machine, RandomSched, RoundRobin};
use secflow_workload::{loop_heavy, sync_heavy};

fn bench_step_throughput(c: &mut Criterion) {
    // A countdown loop: (guard + body-seq + assign ×2) per iteration.
    let program = parse(
        "var n, acc : integer;
         while n > 0 do begin acc := acc + n; n := n - 1 end",
    )
    .unwrap();
    let n = program.var("n");
    let mut group = c.benchmark_group("interp/steps");
    for &iters in &[1_000i64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(iters as u64 * 4));
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &iters| {
            b.iter(|| {
                let mut m = Machine::with_inputs(&program, &[(n, iters)]);
                let out = run(&mut m, &mut RoundRobin::new(), usize::MAX);
                black_box((out.terminated(), m.steps()))
            });
        });
    }
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let program = sync_heavy(64);
    let mut group = c.benchmark_group("interp/scheduler");
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            black_box(run(&mut m, &mut RoundRobin::new(), 1_000_000).terminated())
        });
    });
    group.bench_function("seeded_random", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            black_box(run(&mut m, &mut RandomSched::new(7), 1_000_000).terminated())
        });
    });
    group.finish();
}

fn bench_explore_scaling(c: &mut Criterion) {
    // State-space growth with ping-pong rounds (sequenced by semaphores,
    // so growth is linear rather than exponential).
    let mut group = c.benchmark_group("interp/explore_rounds");
    group.sample_size(10);
    for &rounds in &[2usize, 4, 8, 16] {
        let program = sync_heavy(rounds);
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &program, |b, p| {
            b.iter(|| black_box(explore(p, &[], ExploreLimits::default()).states));
        });
    }
    group.finish();
}

fn bench_loop_program_run(c: &mut Criterion) {
    let program = loop_heavy(100);
    let inputs: Vec<_> = (0..100)
        .map(|i| (program.var(&format!("c{i}")), 5i64))
        .collect();
    c.bench_function("interp/loop_heavy_100x5", |b| {
        b.iter(|| {
            let mut m = Machine::with_inputs(&program, &inputs);
            black_box(run(&mut m, &mut RoundRobin::new(), usize::MAX).terminated())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_step_throughput, bench_schedulers, bench_explore_scaling, bench_loop_program_run
}
criterion_main!(benches);
