//! Experiment E10: cost of the three verdict procedures on the leak
//! matrix programs — static CFM certification, one dynamic-monitor run,
//! and the exhaustive noninterference ground truth.
//!
//! The shape the paper implies: certification is microseconds and
//! schedule-independent; a monitor run costs an execution; ground truth
//! costs the whole interleaving space. That ordering (and the orders of
//! magnitude between the columns) is the quantitative argument for
//! compile-time certification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use secflow_core::{certify, StaticBinding};
use secflow_lang::parse;
use secflow_lattice::{TwoPoint, TwoPointScheme};
use secflow_runtime::{check_binary_secret, ExploreLimits, Machine, RoundRobin, TaintMonitor};

const CASES: &[(&str, &str)] = &[
    ("direct", "var h, l : integer; l := h"),
    ("implicit", "var h, l : integer; if h = 0 then l := 1"),
    (
        "loop_term",
        "var h, l : integer; begin while h # 0 do h := 0; l := 1 end",
    ),
    (
        "sync",
        "var h, l : integer; sem : semaphore;
         cobegin if h = 0 then signal(sem) || begin wait(sem); l := 0 end coend",
    ),
    ("dead_store", "var h, l : integer; begin h := 0; l := h end"),
];

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("leak_matrix/cfm");
    for (name, src) in CASES {
        let program = parse(src).unwrap();
        let binding = StaticBinding::uniform(&program.symbols, &TwoPointScheme)
            .with(program.var("h"), TwoPoint::High);
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| black_box(certify(p, &binding).certified()));
        });
    }
    group.finish();
}

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("leak_matrix/monitor_run");
    for (name, src) in CASES {
        let program = parse(src).unwrap();
        let h = program.var("h");
        let labels: Vec<TwoPoint> = program
            .symbols
            .iter()
            .map(|(id, _)| {
                if id == h {
                    TwoPoint::High
                } else {
                    TwoPoint::Low
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| {
                let machine = Machine::with_inputs(p, &[(h, 0)]);
                let mut mon = TaintMonitor::new(machine, labels.clone(), TwoPoint::Low);
                mon.run(&mut RoundRobin::new(), 10_000);
                black_box(mon.labels().to_vec())
            });
        });
    }
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let mut group = c.benchmark_group("leak_matrix/ground_truth");
    group.sample_size(10);
    for (name, src) in CASES {
        let program = parse(src).unwrap();
        let h = program.var("h");
        let l = program.var("l");
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |b, p| {
            b.iter(|| {
                black_box(check_binary_secret(p, h, &[l], ExploreLimits::default()).interferes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static, bench_monitor, bench_ground_truth);
criterion_main!(benches);
