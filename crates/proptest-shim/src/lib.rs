//! A std-only stand-in for the subset of the `proptest` API this
//! workspace's tests use, so `cargo test` works without network access
//! to crates.io.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   in the message instead of a minimised counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (FNV-1a), so runs are reproducible without persistence;
//!   `*.proptest-regressions` files are ignored.
//! - **Pattern strategies for `&str` are minimal**: `.{a,b}` (and the
//!   `.*`/`.+` shorthands) generate arbitrary character soup of the
//!   given length range; any other pattern generates itself verbatim.
//!
//! The surface implemented is exactly what the tests reference:
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`,
//! `ProptestConfig`, `Strategy`, `Just`, ranges as strategies, tuple
//! strategies, `prop_map`, `collection::vec`, `option::of`, and
//! `bits::u8::between`.

/// Deterministic 64-bit RNG (splitmix64) used by all strategies.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds from an arbitrary string, typically the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// How a value is generated. The shim's analogue of proptest's
/// `Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// `&str` patterns: `.{a,b}` / `.*` / `.+` make character soup (ASCII
/// printable, whitespace, controls, and some multibyte); anything else
/// generates itself verbatim.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let (lo, hi) = match parse_repeat_pattern(self) {
            Some(range) => range,
            None => return (*self).to_string(),
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_repeat_pattern(pat: &str) -> Option<(usize, usize)> {
    match pat {
        ".*" => return Some((0, 64)),
        ".+" => return Some((1, 64)),
        _ => {}
    }
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn random_char(rng: &mut Rng) -> char {
    match rng.below(10) {
        // Mostly printable ASCII: the interesting region for a parser.
        0..=6 => (0x20 + rng.below(0x5f) as u8) as char,
        7 => (rng.below(0x20) as u8) as char, // control chars incl. \n \t
        8 => ['λ', 'é', '∧', '≤', '中', '🦀'][rng.below(6) as usize],
        _ => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('?'),
    }
}

/// A boxed generator arm for [`OneOf`] (see [`one_of_arm`]).
pub type OneOfArm<V> = Box<dyn Fn(&mut Rng) -> V>;

/// One-of combinator behind [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Builds from pre-boxed arms (see [`one_of_arm`]).
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut Rng) -> V {
        self.arms[rng.below(self.arms.len() as u64) as usize](rng)
    }
}

/// Boxes a strategy into a [`OneOf`] arm (macro plumbing).
pub fn one_of_arm<S>(s: S) -> OneOfArm<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| s.generate(rng))
}

/// `proptest::collection`: sized containers of generated values.
pub mod collection {
    use super::{Rng, Strategy};

    /// Strategy for `Vec`s whose length is drawn from `range`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// A `Vec` of `elem` values with length in `range`.
    pub fn vec<S: Strategy>(elem: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            lo: range.start,
            hi: range.end.max(range.start + 1) - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::option`: optional values.
pub mod option {
    use super::{Rng, Strategy};

    /// Strategy yielding `None` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(inner)` with probability 1/2, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `proptest::bits`: integers as bit masks.
pub mod bits {
    /// Bit-mask strategies over `u8`.
    pub mod u8 {
        use crate::{Rng, Strategy};

        /// Strategy for `u8` masks confined to bits `[lo, hi)`.
        pub struct Between {
            mask: u8,
        }

        /// A `u8` whose set bits all lie in `[lo, hi)`.
        pub fn between(lo: u32, hi: u32) -> Between {
            let hi_mask = if hi >= 8 { 0xffu8 } else { (1u8 << hi) - 1 };
            let lo_mask = if lo >= 8 { 0xffu8 } else { (1u8 << lo) - 1 };
            Between {
                mask: hi_mask & !lo_mask,
            }
        }

        impl Strategy for Between {
            type Value = u8;
            fn generate(&self, rng: &mut Rng) -> u8 {
                (rng.below(256) as u8) & self.mask
            }
        }
    }
}

/// Test-runner configuration (`cases` is the only knob the shim reads).
pub mod test_runner {
    /// Soft failure a property body may return with `Err(..)` (the
    /// shim's `prop_assert!` macros panic instead, but bodies still
    /// `return Ok(())` to skip uninteresting cases).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Mirror of `proptest::test_runner::ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines `#[test]` functions that run a property over many generated
/// cases. Mirrors `proptest::proptest!` (without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal: expands each `fn` in a `proptest!` block.
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Bodies follow proptest's convention of returning
                // `Result<(), TestCaseError>` (e.g. `return Ok(())` to
                // skip a case), so run each case inside a closure.
                #[allow(unreachable_code)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::one_of_arm($s)),+])
    };
}
