//! Consistency of the three execution modes: every outcome a sampled
//! schedule produces must be in the exhaustive explorer's outcome set,
//! and deterministic (fully sequenced) programs agree everywhere.

use proptest::prelude::*;

use secflow_lang::parse;
use secflow_runtime::{explore, run, ExploreLimits, Machine, RandomSched, RoundRobin, RunOutcome};
use secflow_workload::{generate, GenConfig};

fn cfg() -> GenConfig {
    GenConfig {
        target_stmts: 15,
        max_depth: 4,
        n_vars: 3,
        n_sems: 1,
        bounded_loops: true,
    }
}

fn limits() -> ExploreLimits {
    ExploreLimits {
        max_states: 80_000,
        max_depth: 5_000,
        ..ExploreLimits::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sampled outcomes ⊆ explored outcomes; sampled deadlocks imply
    /// explored deadlocks.
    #[test]
    fn sampling_is_contained_in_exploration(seed in 0u64..50_000, sched in 0u64..64) {
        let program = generate(&cfg(), seed);
        let report = explore(&program, &[], limits());
        if report.truncated {
            return Ok(()); // containment only meaningful on complete sets
        }
        let mut machine = Machine::new(&program);
        match run(&mut machine, &mut RandomSched::new(sched), 50_000) {
            RunOutcome::Terminated => {
                prop_assert!(
                    report.outcomes.contains(machine.store()),
                    "sampled outcome missing from exploration (seed {}, sched {})",
                    seed,
                    sched
                );
            }
            RunOutcome::Deadlocked => {
                prop_assert!(report.can_deadlock());
            }
            RunOutcome::Faulted(_) => {
                prop_assert!(report.faults > 0);
            }
            RunOutcome::FuelExhausted => {}
        }
    }

    /// Round-robin is one of the explored schedules too.
    #[test]
    fn round_robin_is_contained(seed in 0u64..50_000) {
        let program = generate(&cfg(), seed);
        let report = explore(&program, &[], limits());
        if report.truncated {
            return Ok(());
        }
        let mut machine = Machine::new(&program);
        if run(&mut machine, &mut RoundRobin::new(), 50_000) == RunOutcome::Terminated {
            prop_assert!(report.outcomes.contains(machine.store()));
        }
    }
}

#[test]
fn sequenced_program_agrees_across_all_modes() {
    // Fully semaphore-sequenced: exactly one outcome everywhere.
    let p = parse(
        "var a, b : integer; s, t : semaphore;
         cobegin
           begin a := 1; signal(s); wait(t); a := a + 10 end
         ||
           begin wait(s); b := a * 2; signal(t) end
         coend",
    )
    .unwrap();
    let report = explore(&p, &[], ExploreLimits::default());
    assert_eq!(report.outcomes.len(), 1);
    let reference = report.outcomes.iter().next().unwrap().clone();
    for seed in 0..25u64 {
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RandomSched::new(seed), 10_000).terminated());
        assert_eq!(m.store(), &reference[..], "seed {seed}");
    }
    assert_eq!(reference[p.var("a").index()], 11);
    assert_eq!(reference[p.var("b").index()], 2);
}

#[test]
fn explorer_finds_outcomes_sampling_misses() {
    // A 3-way race has 3 outcomes; a single schedule sees only one —
    // the reason ground truth needs exhaustive search.
    let p = parse("var x : integer; cobegin x := 1 || x := 2 || x := 3 coend").unwrap();
    let report = explore(&p, &[], ExploreLimits::default());
    assert_eq!(report.project(&[p.var("x")]).len(), 3);
    let mut m = Machine::new(&p);
    run(&mut m, &mut RoundRobin::new(), 1_000);
    // One concrete run yields exactly one of them.
    assert!(report.outcomes.contains(m.store()));
}
