//! Execution traces: a recorded schedule with its actions.

use std::fmt;

use secflow_lang::Program;

use crate::machine::{Action, Machine, ProcId};
use crate::sched::{RunOutcome, Scheduler};

/// One recorded step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Which process stepped.
    pub pid: ProcId,
    /// What it did.
    pub action: Action,
}

/// A full recorded execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// The steps, in schedule order.
    pub events: Vec<TraceEvent>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The final store.
    pub final_store: Vec<i64>,
}

impl Trace {
    /// Renders the trace with variable names from `program`.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        for (i, ev) in self.events.iter().enumerate() {
            let desc = match &ev.action {
                Action::Assign { var, value } => {
                    format!("{} := {}", program.symbols.name(*var), value)
                }
                Action::Guard { taken } => format!("guard -> {taken}"),
                Action::Wait { sem } => format!("wait({})", program.symbols.name(*sem)),
                Action::Signal { sem } => format!("signal({})", program.symbols.name(*sem)),
                Action::Control => "control".to_string(),
                Action::Spawn { children } => format!("spawn {} processes", children.len()),
                Action::Finished => "finished".to_string(),
            };
            out.push_str(&format!("{i:4}  P{}  {desc}\n", ev.pid.0));
        }
        out.push_str(&format!("outcome: {:?}\n", self.outcome));
        out
    }
}

/// Runs `machine` under `scheduler`, recording a [`Trace`].
pub fn run_traced(machine: &mut Machine<'_>, scheduler: &mut impl Scheduler, fuel: usize) -> Trace {
    // Re-run with explicit stepping so actions are captured faithfully.
    let mut events = Vec::new();
    let outcome = loop {
        if events.len() >= fuel {
            break match machine.status() {
                crate::machine::Status::Terminated => RunOutcome::Terminated,
                crate::machine::Status::Deadlocked => RunOutcome::Deadlocked,
                crate::machine::Status::Running => RunOutcome::FuelExhausted,
            };
        }
        match machine.status() {
            crate::machine::Status::Terminated => break RunOutcome::Terminated,
            crate::machine::Status::Deadlocked => break RunOutcome::Deadlocked,
            crate::machine::Status::Running => {
                let enabled = machine.enabled();
                let pid = scheduler.pick(&enabled);
                match machine.step(pid) {
                    Ok(action) => events.push(TraceEvent { pid, action }),
                    Err(f) => break RunOutcome::Faulted(f),
                }
            }
        }
    };
    Trace {
        events,
        outcome,
        final_store: machine.store().to_vec(),
    }
}

/// Replays a recorded pick sequence (deterministic re-execution).
pub struct Replay {
    picks: std::vec::IntoIter<ProcId>,
}

impl Replay {
    /// Creates a replay scheduler from a pick sequence.
    pub fn new(picks: Vec<ProcId>) -> Self {
        Replay {
            picks: picks.into_iter(),
        }
    }

    /// Extracts the pick sequence of a trace.
    pub fn of_trace(trace: &Trace) -> Self {
        Self::new(trace.events.iter().map(|e| e.pid).collect())
    }
}

impl Scheduler for Replay {
    fn pick(&mut self, enabled: &[ProcId]) -> ProcId {
        match self.picks.next() {
            Some(pid) if enabled.contains(&pid) => pid,
            // Past the recorded prefix (or diverged): fall back to the
            // first enabled process.
            _ => enabled[0],
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace of {} events ({:?})",
            self.events.len(),
            self.outcome
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{RandomSched, RoundRobin};
    use secflow_lang::parse;

    #[test]
    fn traces_record_assignments() {
        let p = parse("var x : integer; begin x := 1; x := x + 1 end").unwrap();
        let mut m = Machine::new(&p);
        let t = run_traced(&mut m, &mut RoundRobin::new(), 100);
        assert!(t.outcome.terminated());
        let assigns: Vec<_> = t
            .events
            .iter()
            .filter(|e| matches!(e.action, Action::Assign { .. }))
            .collect();
        assert_eq!(assigns.len(), 2);
        let rendered = t.render(&p);
        assert!(rendered.contains("x := 1"), "{rendered}");
        assert!(rendered.contains("x := 2"), "{rendered}");
    }

    #[test]
    fn replay_reproduces_the_same_outcome() {
        let p = parse("var x : integer; cobegin x := 1 || x := 2 coend").unwrap();
        for seed in 0..10 {
            let mut m1 = Machine::new(&p);
            let t1 = run_traced(&mut m1, &mut RandomSched::new(seed), 100);
            let mut m2 = Machine::new(&p);
            let t2 = run_traced(&mut m2, &mut Replay::of_trace(&t1), 100);
            assert_eq!(t1.final_store, t2.final_store, "seed {seed}");
        }
    }

    #[test]
    fn trace_display_summarizes() {
        let p = parse("var x : integer; x := 1").unwrap();
        let mut m = Machine::new(&p);
        let t = run_traced(&mut m, &mut RoundRobin::new(), 10);
        assert!(t.to_string().contains("events"));
    }
}
