//! Static per-statement footprints and the independence relation.
//!
//! Every atomic action of the machine (§2.0: one assignment, one guard
//! evaluation, one semaphore operation) reads and writes a statically
//! known set of variables. Two actions of *different* processes commute
//! — executing them in either order reaches the same state — iff their
//! footprints do not conflict: no write/write or read/write overlap on a
//! data variable and no operations on a shared semaphore (a `signal` can
//! enable a blocked `wait`, so any two ops on the same semaphore are
//! ordered observably).
//!
//! The [`FootprintTable`] precomputes, for every statement of a program,
//!
//! - the **action footprint**: what the single atomic step of executing
//!   that statement's head touches, and
//! - the **region footprint**: the union of action footprints over the
//!   whole subtree — an over-approximation of everything a process can
//!   ever touch while its continuation stack still contains that
//!   statement.
//!
//! Both are keyed by statement identity (`&Stmt` address, the same
//! scheme [`Machine::fingerprint`](crate::Machine::fingerprint) uses),
//! so the explorer's hot loop does O(1) lookups and O(1) bitmask
//! conflict tests.
//!
//! On top of the table, [`FootprintTable::persistent_singleton`] picks a
//! singleton *persistent set* at a machine state when one exists: an
//! enabled process whose next action is independent of every action any
//! *other* live process can ever take. Exploring only that process from
//! the state preserves every reachable sink state — all deadlocks and
//! all terminal outcomes — which is exactly what the explorer's verdicts
//! are built from (see DESIGN §12 for the soundness argument).

use std::collections::{HashMap, HashSet};

use secflow_lang::{BinOp, Expr, Program, Stmt, VarId};

use crate::machine::{Machine, ProcId};

/// A set of variables as a fixed-width bitmask. Variable indices at or
/// above [`VarSet::CAPACITY`] collapse into a *universal* bit that
/// conflicts with everything — a sound (if total) over-approximation
/// for the rare program with more than 127 variables.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VarSet {
    bits: u128,
}

impl VarSet {
    /// Highest variable index representable exactly.
    pub const CAPACITY: usize = 127;

    const UNIVERSAL: u128 = 1 << 127;

    /// The empty set.
    pub const EMPTY: VarSet = VarSet { bits: 0 };

    /// A set that intersects every set, including the empty one (used
    /// for "conflicts with anything" footprints).
    pub const UNIVERSE: VarSet = VarSet { bits: u128::MAX };

    /// Adds a variable.
    pub fn insert(&mut self, v: VarId) {
        if v.index() >= Self::CAPACITY {
            self.bits |= Self::UNIVERSAL;
        } else {
            self.bits |= 1 << v.index();
        }
    }

    /// `true` iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// `true` iff `v` is in the set (always `true` once the universal
    /// overflow bit is set).
    pub fn contains(self, v: VarId) -> bool {
        if self.bits & Self::UNIVERSAL != 0 {
            return true;
        }
        v.index() < Self::CAPACITY && self.bits & (1 << v.index()) != 0
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: VarSet) {
        self.bits |= other.bits;
    }

    /// `true` iff the sets share a variable. The universal bit
    /// intersects everything, even the empty set — conservative in
    /// exactly the direction soundness needs.
    pub fn intersects(self, other: VarSet) -> bool {
        if (self.bits | other.bits) & Self::UNIVERSAL != 0 {
            return true;
        }
        self.bits & other.bits != 0
    }

    /// Exact member count (counts the overflow bit as one).
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates the exactly-represented members, ascending.
    pub fn iter(self) -> impl Iterator<Item = VarId> {
        (0..Self::CAPACITY as u32)
            .filter(move |i| self.bits & (1u128 << i) != 0)
            .map(VarId)
    }
}

/// What one atomic action (or a whole statement subtree) reads, writes,
/// and synchronizes on.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Footprint {
    /// Variables read (guard and right-hand-side operands).
    pub reads: VarSet,
    /// Variables written (assignment targets).
    pub writes: VarSet,
    /// Semaphores operated on by `wait`/`signal`. Any two operations on
    /// a shared semaphore are dependent regardless of direction.
    pub sems: VarSet,
}

impl Footprint {
    /// The empty footprint (control-only actions: `skip`, `begin`
    /// unfolding, `cobegin` spawn).
    pub const EMPTY: Footprint = Footprint {
        reads: VarSet::EMPTY,
        writes: VarSet::EMPTY,
        sems: VarSet::EMPTY,
    };

    /// A footprint that conflicts with everything (used when a lookup
    /// misses, so an incomplete table degrades to no reduction, never
    /// to an unsound one).
    pub const UNIVERSE: Footprint = Footprint {
        reads: VarSet::UNIVERSE,
        writes: VarSet::UNIVERSE,
        sems: VarSet::UNIVERSE,
    };

    /// Union, in place.
    pub fn union_with(&mut self, other: &Footprint) {
        self.reads.union_with(other.reads);
        self.writes.union_with(other.writes);
        self.sems.union_with(other.sems);
    }

    /// `true` iff the two footprints conflict: write/write overlap,
    /// read/write overlap (either direction), or a shared semaphore.
    /// Two actions of different processes are *independent* iff their
    /// footprints do not conflict.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.writes.intersects(other.writes)
            || self.writes.intersects(other.reads)
            || other.writes.intersects(self.reads)
            || self.sems.intersects(other.sems)
    }

    /// `true` iff nothing is touched.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.sems.is_empty()
    }
}

/// The footprint of the single atomic step that executes `stmt`'s head
/// (not its subtree): evaluating a guard reads its variables, an
/// assignment reads its right-hand side and writes its target, a
/// semaphore op touches its semaphore, and control unfolding (`skip`,
/// `begin`, `cobegin` spawn) touches nothing.
pub fn action_footprint(stmt: &Stmt) -> Footprint {
    let mut fp = Footprint::EMPTY;
    match stmt {
        Stmt::Skip(_) | Stmt::Seq { .. } | Stmt::Cobegin { .. } => {}
        Stmt::Assign { var, expr, .. } => {
            fp.writes.insert(*var);
            expr.for_each_var(&mut |v| fp.reads.insert(v));
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => {
            cond.for_each_var(&mut |v| fp.reads.insert(v));
        }
        Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => {
            fp.sems.insert(*sem);
        }
    }
    fp
}

/// Statement identity: the borrowed program is immutable for the
/// machine's lifetime, so addresses are stable keys (the same scheme
/// the state fingerprint uses).
fn key(stmt: &Stmt) -> usize {
    stmt as *const Stmt as usize
}

/// How a variable's value evolves over the whole program, for the
/// monotone-counter loop certificate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mono {
    /// Never assigned and never a semaphore operand.
    Unused,
    /// Every update is `v := v + c` / `v := v - c` with a constant
    /// `c` of one fixed sign: the value only moves one way.
    Step {
        /// `true` = strictly increasing, `false` = strictly decreasing.
        inc: bool,
    },
    /// Some update is not a fixed-sign constant step (arbitrary
    /// assignment, or a `wait`/`signal`, which moves a semaphore both
    /// ways).
    Other,
}

/// Recognizes the constant-step update `v := v + c`, `v := c + v` or
/// `v := v - c` (constant `c ≠ 0`) and returns the stepped variable and
/// direction. Anything else — including `c = 0`, which makes no
/// progress — is `None`.
fn const_step(stmt: &Stmt) -> Option<(VarId, bool)> {
    let Stmt::Assign { var, expr, .. } = stmt else {
        return None;
    };
    let Expr::Binary { op, lhs, rhs, .. } = expr else {
        return None;
    };
    let (read, c) = match (&**lhs, &**rhs) {
        (Expr::Var(v, _), Expr::Const(c, _)) => (*v, *c),
        (Expr::Const(c, _), Expr::Var(v, _)) if *op == BinOp::Add => (*v, *c),
        _ => return None,
    };
    if read != *var || c == 0 {
        return None;
    }
    match op {
        BinOp::Add => Some((*var, c > 0)),
        BinOp::Sub => Some((*var, c < 0)),
        _ => None,
    }
}

/// Folds one statement's effect on every variable's [`Mono`] state,
/// recursing over the whole subtree.
fn scan_mono(stmt: &Stmt, mono: &mut [Mono]) {
    let mut touch = |v: VarId, dir: Option<bool>| {
        let slot = &mut mono[v.index()];
        *slot = match (*slot, dir) {
            (Mono::Unused, Some(inc)) => Mono::Step { inc },
            (Mono::Step { inc }, Some(d)) if inc == d => Mono::Step { inc },
            _ => Mono::Other,
        };
    };
    match stmt {
        Stmt::Assign { var, .. } => touch(*var, const_step(stmt).map(|(_, inc)| inc)),
        // `wait` decrements and `signal` increments: both directions.
        Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => touch(*sem, None),
        Stmt::Skip(_) => {}
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            scan_mono(then_branch, mono);
            if let Some(eb) = else_branch {
                scan_mono(eb, mono);
            }
        }
        Stmt::While { body, .. } => scan_mono(body, mono),
        Stmt::Seq { stmts, .. } => {
            for s in stmts {
                scan_mono(s, mono);
            }
        }
        Stmt::Cobegin { branches, .. } => {
            for b in branches {
                scan_mono(b, mono);
            }
        }
    }
}

/// Calls `f` on every statement a loop body executes unconditionally on
/// each complete iteration: the body itself and, through nested `Seq`,
/// all their children — but nothing under an `if`, an inner `while`, or
/// a `cobegin` branch.
fn for_each_spine_stmt<'p>(stmt: &'p Stmt, f: &mut impl FnMut(&'p Stmt)) {
    f(stmt);
    if let Stmt::Seq { stmts, .. } = stmt {
        for s in stmts {
            for_each_spine_stmt(s, f);
        }
    }
}

/// Precomputed action and region footprints for every statement of one
/// program, plus the derived independence tests the explorers consume.
pub struct FootprintTable {
    actions: HashMap<usize, Footprint>,
    regions: HashMap<usize, Footprint>,
    /// `while` statements certified as *monotone-progress loops*: every
    /// complete body iteration takes a constant step on a variable that
    /// moves in that one direction everywhere in the program, so the
    /// store can never return across the loop's back edge and the back
    /// edge can never lie on a state-graph cycle. Only these loops'
    /// guard re-tests may be persistent singletons (the cycle proviso).
    progress_loops: HashSet<usize>,
}

impl FootprintTable {
    /// Walks the program once and tabulates every statement.
    pub fn new(program: &Program) -> FootprintTable {
        let count = program.body.statement_count();
        let mut table = FootprintTable {
            actions: HashMap::with_capacity(count),
            regions: HashMap::with_capacity(count),
            progress_loops: HashSet::new(),
        };
        table.build(&program.body);
        let mut mono = vec![Mono::Unused; program.symbols.len()];
        scan_mono(&program.body, &mut mono);
        table.certify_loops(&program.body, &mono);
        table
    }

    /// Marks every `while` whose body spine takes a constant step on a
    /// program-wide monotone variable (see [`FootprintTable::progress_loops`]).
    fn certify_loops(&mut self, stmt: &Stmt, mono: &[Mono]) {
        match stmt {
            Stmt::While { body, .. } => {
                let mut certified = false;
                for_each_spine_stmt(body, &mut |s| {
                    if let Some((v, inc)) = const_step(s) {
                        certified |= mono[v.index()] == (Mono::Step { inc });
                    }
                });
                if certified {
                    self.progress_loops.insert(key(stmt));
                }
                self.certify_loops(body, mono);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.certify_loops(then_branch, mono);
                if let Some(eb) = else_branch {
                    self.certify_loops(eb, mono);
                }
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts {
                    self.certify_loops(s, mono);
                }
            }
            Stmt::Cobegin { branches, .. } => {
                for b in branches {
                    self.certify_loops(b, mono);
                }
            }
            Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
        }
    }

    /// `true` iff `stmt` is a `while` certified as a monotone-progress
    /// loop (its back edge can never close a state-graph cycle).
    pub fn is_progress_loop(&self, stmt: &Stmt) -> bool {
        self.progress_loops.contains(&key(stmt))
    }

    fn build(&mut self, stmt: &Stmt) -> Footprint {
        let action = action_footprint(stmt);
        let mut region = action;
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                region.union_with(&self.build(then_branch));
                if let Some(eb) = else_branch {
                    region.union_with(&self.build(eb));
                }
            }
            Stmt::While { body, .. } => {
                region.union_with(&self.build(body));
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts {
                    region.union_with(&self.build(s));
                }
            }
            Stmt::Cobegin { branches, .. } => {
                for b in branches {
                    region.union_with(&self.build(b));
                }
            }
            Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
        }
        self.actions.insert(key(stmt), action);
        self.regions.insert(key(stmt), region);
        region
    }

    /// Footprint of the atomic step executing `stmt`'s head. A miss
    /// (statement from a different program) degrades to the universal
    /// footprint: no reduction, never an unsound one.
    pub fn action(&self, stmt: &Stmt) -> Footprint {
        self.actions
            .get(&key(stmt))
            .copied()
            .unwrap_or(Footprint::UNIVERSE)
    }

    /// Union footprint of `stmt`'s whole subtree — everything a process
    /// whose continuation contains `stmt` can ever touch.
    pub fn region(&self, stmt: &Stmt) -> Footprint {
        self.regions
            .get(&key(stmt))
            .copied()
            .unwrap_or(Footprint::UNIVERSE)
    }

    /// Everything process `pid` can still touch: the union of region
    /// footprints over its continuation stack. Spawned-but-unspawned
    /// children live inside those subtrees, so they are covered too.
    pub fn proc_region(&self, m: &Machine<'_>, pid: ProcId) -> Footprint {
        let mut region = Footprint::EMPTY;
        for s in m.frame_stmts(pid) {
            region.union_with(&self.region(s));
        }
        region
    }

    /// `true` iff the pending actions of two distinct processes at this
    /// state are independent (footprints do not conflict). Processes
    /// without a pending action are vacuously independent.
    pub fn independent_at(&self, m: &Machine<'_>, p: ProcId, q: ProcId) -> bool {
        match (m.pending_stmt(p), m.pending_stmt(q)) {
            (Some(a), Some(b)) => !self.action(a).conflicts(&self.action(b)),
            _ => true,
        }
    }

    /// Picks the lowest-id enabled process forming a singleton
    /// persistent set at `m`'s state, if any: its next action must be
    /// independent of the *entire remaining region* of every other live
    /// process, and must not be a loop-guard re-test (the cycle
    /// proviso, below). Returns `None` when fewer than two processes
    /// are enabled (nothing to prune) or no process qualifies (the
    /// caller then expands the full enabled set).
    ///
    /// **Cycle proviso.** Persistent sets alone suffer the classical
    /// *ignoring problem*: around a state-graph cycle the reducer can
    /// pick the same starvation-free singleton forever (`while 1 = 1 do
    /// skip` beside a faulting sibling), so a transition enabled at
    /// every state of the cycle is never explored. The fix must be a
    /// pure function of the state — both engines share it, and the
    /// work-stealing explorer cannot consult a DFS stack or a racy
    /// visited set without losing its deterministic merge — so the
    /// proviso is static, in the spirit of SPIN's safe-transition rule:
    /// a process whose next step is a loop-guard re-test
    /// ([`Machine::at_loop_head`], the machine's only back edge) is
    /// never the singleton — unless the loop carries a monotone-progress
    /// certificate ([`FootprintTable::is_progress_loop`]) proving its
    /// back edge can never lie on a state-graph cycle in the first
    /// place. Every cycle of the reduced graph then contains a fully
    /// expanded state, so nothing is ignored forever (DESIGN §12 has
    /// the full argument).
    ///
    /// Completion and spawn steps are fine candidates even though they
    /// *enable* other processes (waking a parent, spawning children):
    /// the preservation argument only needs that no transition
    /// executable while avoiding the candidate can disable it or fail
    /// to commute with it, and a parent can never move before the
    /// candidate's own process finishes — which it can only do through
    /// the candidate (see DESIGN §12).
    pub fn persistent_singleton(&self, m: &Machine<'_>, enabled: &[ProcId]) -> Option<ProcId> {
        if enabled.len() < 2 {
            return None;
        }
        'candidates: for &pid in enabled {
            let stmt = match m.pending_stmt(pid) {
                Some(s) => s,
                None => continue,
            };
            if m.at_loop_head(pid) && !self.progress_loops.contains(&key(stmt)) {
                // Cycle proviso: an uncertified back-edge step never
                // forms the singleton. First entry into a loop, and
                // re-tests of certified monotone-progress loops, stay
                // eligible.
                continue;
            }
            let action = self.action(stmt);
            for q in 0..m.proc_count() {
                let q = ProcId(q);
                if q == pid || m.is_done(q) {
                    continue;
                }
                if action.conflicts(&self.proc_region(m, q)) {
                    continue 'candidates;
                }
            }
            return Some(pid);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    #[test]
    fn assign_reads_rhs_writes_target() {
        let p = parse("var x, y : integer; x := y + 1").unwrap();
        let t = FootprintTable::new(&p);
        let fp = t.action(&p.body);
        assert!(fp.writes.contains(p.var("x")));
        assert!(fp.reads.contains(p.var("y")));
        assert!(!fp.reads.contains(p.var("x")));
        assert!(fp.sems.is_empty());
    }

    #[test]
    fn disjoint_assignments_are_independent() {
        let a = parse("var a, b : integer; a := 1").unwrap();
        let b = parse("var a, b : integer; b := a").unwrap();
        let fa = action_footprint(&a.body);
        let fb = action_footprint(&b.body);
        // a := 1 writes {a}; b := a reads {a}: read/write conflict.
        assert!(fa.conflicts(&fb));
        let c = parse("var a, b, c : integer; c := 2").unwrap();
        let fc = action_footprint(&c.body);
        assert!(!fa.conflicts(&fc));
        assert!(!fb.conflicts(&fc));
    }

    #[test]
    fn semaphore_ops_on_same_sem_conflict_both_ways() {
        let p = parse("var s : semaphore; begin wait(s); signal(s) end").unwrap();
        let Stmt::Seq { stmts, .. } = &p.body else {
            panic!("expected seq");
        };
        let w = action_footprint(&stmts[0]);
        let s = action_footprint(&stmts[1]);
        assert!(w.conflicts(&s));
        assert!(s.conflicts(&w));
        assert!(w.conflicts(&w));
    }

    #[test]
    fn region_covers_the_whole_subtree() {
        let p = parse(
            "var x, y : integer; s : semaphore;
             while x < 3 do begin x := x + 1; wait(s); y := 0 end",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let r = t.region(&p.body);
        assert!(r.reads.contains(p.var("x")));
        assert!(r.writes.contains(p.var("x")));
        assert!(r.writes.contains(p.var("y")));
        assert!(r.sems.contains(p.var("s")));
    }

    #[test]
    fn persistent_singleton_found_for_disjoint_processes() {
        // Each branch is a begin/end with two statements, so after the
        // spawn every process has ≥ 2 frames and touches disjoint vars.
        let p = parse(
            "var a, b : integer;
             cobegin begin a := 1; a := 2 end || begin b := 1; b := 2 end coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap(); // spawn
        m.step(crate::ProcId(1)).unwrap(); // unfold begin of branch 1
        m.step(crate::ProcId(2)).unwrap(); // unfold begin of branch 2
        let enabled = m.enabled();
        assert_eq!(enabled.len(), 2);
        assert_eq!(t.persistent_singleton(&m, &enabled), Some(crate::ProcId(1)));
    }

    #[test]
    fn shared_variable_blocks_the_singleton() {
        let p = parse(
            "var a : integer;
             cobegin begin a := 1; a := 2 end || begin a := 3; a := 4 end coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap();
        m.step(crate::ProcId(1)).unwrap();
        m.step(crate::ProcId(2)).unwrap();
        let enabled = m.enabled();
        assert_eq!(t.persistent_singleton(&m, &enabled), None);
    }

    #[test]
    fn monotone_counter_loops_are_certified() {
        let p = parse(
            "var n, r : integer;
             while r < 3 do begin n := n + 1; r := r + 1 end",
        )
        .unwrap();
        assert!(FootprintTable::new(&p).is_progress_loop(&p.body));
        // Countdown direction too (the generator's bounded-loop shape).
        let q = parse("var v : integer; while v > 0 do v := v - 1").unwrap();
        assert!(FootprintTable::new(&q).is_progress_loop(&q.body));
    }

    #[test]
    fn live_and_nonmonotone_loops_are_not_certified() {
        // No progress at all: a state-preserving cycle.
        let live = parse("var x : integer; while 1 = 1 do skip").unwrap();
        assert!(!FootprintTable::new(&live).is_progress_loop(&live.body));
        // The counter is assigned non-monotonically elsewhere.
        let reset = parse(
            "var r : integer;
             cobegin while r < 3 do r := r + 1 || r := 0 coend",
        )
        .unwrap();
        let t = FootprintTable::new(&reset);
        let Stmt::Cobegin { branches, .. } = &reset.body else {
            panic!("expected cobegin");
        };
        assert!(!t.is_progress_loop(&branches[0]));
        // The increment is conditional — not on every iteration.
        let cond = parse("var r, g : integer; while r < 3 do if g = 1 then r := r + 1").unwrap();
        assert!(!FootprintTable::new(&cond).is_progress_loop(&cond.body));
        // Zero step makes no progress.
        let zero = parse("var r : integer; while r < 3 do r := r + 0").unwrap();
        assert!(!FootprintTable::new(&zero).is_progress_loop(&zero.body));
    }

    #[test]
    fn uncertified_loop_head_never_forms_the_singleton() {
        // Cycle proviso: at the loop's back edge the looping process
        // must not be the singleton, or the sibling is starved forever.
        let p = parse(
            "var y, z : integer;
             cobegin while 1 = 1 do skip || y := z + 1 coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap(); // spawn
        m.step(crate::ProcId(1)).unwrap(); // guard: enter the loop
        m.step(crate::ProcId(1)).unwrap(); // skip: back at the loop head
        assert!(m.at_loop_head(crate::ProcId(1)));
        let enabled = m.enabled();
        assert_eq!(enabled.len(), 2);
        // Both are footprint-independent of everything, but only the
        // non-looping process may be picked.
        assert_eq!(t.persistent_singleton(&m, &enabled), Some(crate::ProcId(2)));
    }

    #[test]
    fn certified_loop_head_may_form_the_singleton() {
        let p = parse(
            "var r, b : integer;
             cobegin while r < 2 do r := r + 1 || begin b := 1; b := 2 end coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap(); // spawn
        m.step(crate::ProcId(1)).unwrap(); // guard: enter the loop
        m.step(crate::ProcId(1)).unwrap(); // r := r + 1
        assert!(m.at_loop_head(crate::ProcId(1)));
        let enabled = m.enabled();
        assert_eq!(enabled.len(), 2);
        assert_eq!(t.persistent_singleton(&m, &enabled), Some(crate::ProcId(1)));
    }

    #[test]
    fn varset_overflow_is_conservative() {
        let mut s = VarSet::EMPTY;
        s.insert(VarId(500));
        assert!(s.intersects(VarSet::EMPTY));
        assert!(s.contains(VarId(3)));
    }
}
