//! Static per-statement footprints and the independence relation.
//!
//! Every atomic action of the machine (§2.0: one assignment, one guard
//! evaluation, one semaphore operation) reads and writes a statically
//! known set of variables. Two actions of *different* processes commute
//! — executing them in either order reaches the same state — iff their
//! footprints do not conflict: no write/write or read/write overlap on a
//! data variable and no operations on a shared semaphore (a `signal` can
//! enable a blocked `wait`, so any two ops on the same semaphore are
//! ordered observably).
//!
//! The [`FootprintTable`] precomputes, for every statement of a program,
//!
//! - the **action footprint**: what the single atomic step of executing
//!   that statement's head touches, and
//! - the **region footprint**: the union of action footprints over the
//!   whole subtree — an over-approximation of everything a process can
//!   ever touch while its continuation stack still contains that
//!   statement.
//!
//! Both are keyed by statement identity (`&Stmt` address, the same
//! scheme [`Machine::fingerprint`](crate::Machine::fingerprint) uses),
//! so the explorer's hot loop does O(1) lookups and O(1) bitmask
//! conflict tests.
//!
//! On top of the table, [`FootprintTable::persistent_singleton`] picks a
//! singleton *persistent set* at a machine state when one exists: an
//! enabled process whose next action is independent of every action any
//! *other* live process can ever take. Exploring only that process from
//! the state preserves every reachable sink state — all deadlocks and
//! all terminal outcomes — which is exactly what the explorer's verdicts
//! are built from (see DESIGN §12 for the soundness argument).

use std::collections::HashMap;

use secflow_lang::{Program, Stmt, VarId};

use crate::machine::{Machine, ProcId};

/// A set of variables as a fixed-width bitmask. Variable indices at or
/// above [`VarSet::CAPACITY`] collapse into a *universal* bit that
/// conflicts with everything — a sound (if total) over-approximation
/// for the rare program with more than 127 variables.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VarSet {
    bits: u128,
}

impl VarSet {
    /// Highest variable index representable exactly.
    pub const CAPACITY: usize = 127;

    const UNIVERSAL: u128 = 1 << 127;

    /// The empty set.
    pub const EMPTY: VarSet = VarSet { bits: 0 };

    /// A set that intersects every set, including the empty one (used
    /// for "conflicts with anything" footprints).
    pub const UNIVERSE: VarSet = VarSet { bits: u128::MAX };

    /// Adds a variable.
    pub fn insert(&mut self, v: VarId) {
        if v.index() >= Self::CAPACITY {
            self.bits |= Self::UNIVERSAL;
        } else {
            self.bits |= 1 << v.index();
        }
    }

    /// `true` iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// `true` iff `v` is in the set (always `true` once the universal
    /// overflow bit is set).
    pub fn contains(self, v: VarId) -> bool {
        if self.bits & Self::UNIVERSAL != 0 {
            return true;
        }
        v.index() < Self::CAPACITY && self.bits & (1 << v.index()) != 0
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: VarSet) {
        self.bits |= other.bits;
    }

    /// `true` iff the sets share a variable. The universal bit
    /// intersects everything, even the empty set — conservative in
    /// exactly the direction soundness needs.
    pub fn intersects(self, other: VarSet) -> bool {
        if (self.bits | other.bits) & Self::UNIVERSAL != 0 {
            return true;
        }
        self.bits & other.bits != 0
    }

    /// Exact member count (counts the overflow bit as one).
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates the exactly-represented members, ascending.
    pub fn iter(self) -> impl Iterator<Item = VarId> {
        (0..Self::CAPACITY as u32)
            .filter(move |i| self.bits & (1u128 << i) != 0)
            .map(VarId)
    }
}

/// What one atomic action (or a whole statement subtree) reads, writes,
/// and synchronizes on.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Footprint {
    /// Variables read (guard and right-hand-side operands).
    pub reads: VarSet,
    /// Variables written (assignment targets).
    pub writes: VarSet,
    /// Semaphores operated on by `wait`/`signal`. Any two operations on
    /// a shared semaphore are dependent regardless of direction.
    pub sems: VarSet,
}

impl Footprint {
    /// The empty footprint (control-only actions: `skip`, `begin`
    /// unfolding, `cobegin` spawn).
    pub const EMPTY: Footprint = Footprint {
        reads: VarSet::EMPTY,
        writes: VarSet::EMPTY,
        sems: VarSet::EMPTY,
    };

    /// A footprint that conflicts with everything (used when a lookup
    /// misses, so an incomplete table degrades to no reduction, never
    /// to an unsound one).
    pub const UNIVERSE: Footprint = Footprint {
        reads: VarSet::UNIVERSE,
        writes: VarSet::UNIVERSE,
        sems: VarSet::UNIVERSE,
    };

    /// Union, in place.
    pub fn union_with(&mut self, other: &Footprint) {
        self.reads.union_with(other.reads);
        self.writes.union_with(other.writes);
        self.sems.union_with(other.sems);
    }

    /// `true` iff the two footprints conflict: write/write overlap,
    /// read/write overlap (either direction), or a shared semaphore.
    /// Two actions of different processes are *independent* iff their
    /// footprints do not conflict.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.writes.intersects(other.writes)
            || self.writes.intersects(other.reads)
            || other.writes.intersects(self.reads)
            || self.sems.intersects(other.sems)
    }

    /// `true` iff nothing is touched.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty() && self.sems.is_empty()
    }
}

/// The footprint of the single atomic step that executes `stmt`'s head
/// (not its subtree): evaluating a guard reads its variables, an
/// assignment reads its right-hand side and writes its target, a
/// semaphore op touches its semaphore, and control unfolding (`skip`,
/// `begin`, `cobegin` spawn) touches nothing.
pub fn action_footprint(stmt: &Stmt) -> Footprint {
    let mut fp = Footprint::EMPTY;
    match stmt {
        Stmt::Skip(_) | Stmt::Seq { .. } | Stmt::Cobegin { .. } => {}
        Stmt::Assign { var, expr, .. } => {
            fp.writes.insert(*var);
            expr.for_each_var(&mut |v| fp.reads.insert(v));
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => {
            cond.for_each_var(&mut |v| fp.reads.insert(v));
        }
        Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } => {
            fp.sems.insert(*sem);
        }
    }
    fp
}

/// Statement identity: the borrowed program is immutable for the
/// machine's lifetime, so addresses are stable keys (the same scheme
/// the state fingerprint uses).
fn key(stmt: &Stmt) -> usize {
    stmt as *const Stmt as usize
}

/// Precomputed action and region footprints for every statement of one
/// program, plus the derived independence tests the explorers consume.
pub struct FootprintTable {
    actions: HashMap<usize, Footprint>,
    regions: HashMap<usize, Footprint>,
}

impl FootprintTable {
    /// Walks the program once and tabulates every statement.
    pub fn new(program: &Program) -> FootprintTable {
        let count = program.body.statement_count();
        let mut table = FootprintTable {
            actions: HashMap::with_capacity(count),
            regions: HashMap::with_capacity(count),
        };
        table.build(&program.body);
        table
    }

    fn build(&mut self, stmt: &Stmt) -> Footprint {
        let action = action_footprint(stmt);
        let mut region = action;
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                region.union_with(&self.build(then_branch));
                if let Some(eb) = else_branch {
                    region.union_with(&self.build(eb));
                }
            }
            Stmt::While { body, .. } => {
                region.union_with(&self.build(body));
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts {
                    region.union_with(&self.build(s));
                }
            }
            Stmt::Cobegin { branches, .. } => {
                for b in branches {
                    region.union_with(&self.build(b));
                }
            }
            Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
        }
        self.actions.insert(key(stmt), action);
        self.regions.insert(key(stmt), region);
        region
    }

    /// Footprint of the atomic step executing `stmt`'s head. A miss
    /// (statement from a different program) degrades to the universal
    /// footprint: no reduction, never an unsound one.
    pub fn action(&self, stmt: &Stmt) -> Footprint {
        self.actions
            .get(&key(stmt))
            .copied()
            .unwrap_or(Footprint::UNIVERSE)
    }

    /// Union footprint of `stmt`'s whole subtree — everything a process
    /// whose continuation contains `stmt` can ever touch.
    pub fn region(&self, stmt: &Stmt) -> Footprint {
        self.regions
            .get(&key(stmt))
            .copied()
            .unwrap_or(Footprint::UNIVERSE)
    }

    /// Everything process `pid` can still touch: the union of region
    /// footprints over its continuation stack. Spawned-but-unspawned
    /// children live inside those subtrees, so they are covered too.
    pub fn proc_region(&self, m: &Machine<'_>, pid: ProcId) -> Footprint {
        let mut region = Footprint::EMPTY;
        for s in m.frame_stmts(pid) {
            region.union_with(&self.region(s));
        }
        region
    }

    /// `true` iff the pending actions of two distinct processes at this
    /// state are independent (footprints do not conflict). Processes
    /// without a pending action are vacuously independent.
    pub fn independent_at(&self, m: &Machine<'_>, p: ProcId, q: ProcId) -> bool {
        match (m.pending_stmt(p), m.pending_stmt(q)) {
            (Some(a), Some(b)) => !self.action(a).conflicts(&self.action(b)),
            _ => true,
        }
    }

    /// Picks the lowest-id enabled process forming a singleton
    /// persistent set at `m`'s state, if any: its next action must be
    /// independent of the *entire remaining region* of every other live
    /// process. Returns `None` when fewer than two processes are
    /// enabled (nothing to prune) or no process qualifies (the caller
    /// then expands the full enabled set).
    ///
    /// Completion and spawn steps are fine candidates even though they
    /// *enable* other processes (waking a parent, spawning children):
    /// the preservation argument only needs that no transition
    /// executable while avoiding the candidate can disable it or fail
    /// to commute with it, and a parent can never move before the
    /// candidate's own process finishes — which it can only do through
    /// the candidate (see DESIGN §12).
    pub fn persistent_singleton(&self, m: &Machine<'_>, enabled: &[ProcId]) -> Option<ProcId> {
        if enabled.len() < 2 {
            return None;
        }
        'candidates: for &pid in enabled {
            let stmt = match m.pending_stmt(pid) {
                Some(s) => s,
                None => continue,
            };
            let action = self.action(stmt);
            for q in 0..m.proc_count() {
                let q = ProcId(q);
                if q == pid || m.is_done(q) {
                    continue;
                }
                if action.conflicts(&self.proc_region(m, q)) {
                    continue 'candidates;
                }
            }
            return Some(pid);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    #[test]
    fn assign_reads_rhs_writes_target() {
        let p = parse("var x, y : integer; x := y + 1").unwrap();
        let t = FootprintTable::new(&p);
        let fp = t.action(&p.body);
        assert!(fp.writes.contains(p.var("x")));
        assert!(fp.reads.contains(p.var("y")));
        assert!(!fp.reads.contains(p.var("x")));
        assert!(fp.sems.is_empty());
    }

    #[test]
    fn disjoint_assignments_are_independent() {
        let a = parse("var a, b : integer; a := 1").unwrap();
        let b = parse("var a, b : integer; b := a").unwrap();
        let fa = action_footprint(&a.body);
        let fb = action_footprint(&b.body);
        // a := 1 writes {a}; b := a reads {a}: read/write conflict.
        assert!(fa.conflicts(&fb));
        let c = parse("var a, b, c : integer; c := 2").unwrap();
        let fc = action_footprint(&c.body);
        assert!(!fa.conflicts(&fc));
        assert!(!fb.conflicts(&fc));
    }

    #[test]
    fn semaphore_ops_on_same_sem_conflict_both_ways() {
        let p = parse("var s : semaphore; begin wait(s); signal(s) end").unwrap();
        let Stmt::Seq { stmts, .. } = &p.body else {
            panic!("expected seq");
        };
        let w = action_footprint(&stmts[0]);
        let s = action_footprint(&stmts[1]);
        assert!(w.conflicts(&s));
        assert!(s.conflicts(&w));
        assert!(w.conflicts(&w));
    }

    #[test]
    fn region_covers_the_whole_subtree() {
        let p = parse(
            "var x, y : integer; s : semaphore;
             while x < 3 do begin x := x + 1; wait(s); y := 0 end",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let r = t.region(&p.body);
        assert!(r.reads.contains(p.var("x")));
        assert!(r.writes.contains(p.var("x")));
        assert!(r.writes.contains(p.var("y")));
        assert!(r.sems.contains(p.var("s")));
    }

    #[test]
    fn persistent_singleton_found_for_disjoint_processes() {
        // Each branch is a begin/end with two statements, so after the
        // spawn every process has ≥ 2 frames and touches disjoint vars.
        let p = parse(
            "var a, b : integer;
             cobegin begin a := 1; a := 2 end || begin b := 1; b := 2 end coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap(); // spawn
        m.step(crate::ProcId(1)).unwrap(); // unfold begin of branch 1
        m.step(crate::ProcId(2)).unwrap(); // unfold begin of branch 2
        let enabled = m.enabled();
        assert_eq!(enabled.len(), 2);
        assert_eq!(t.persistent_singleton(&m, &enabled), Some(crate::ProcId(1)));
    }

    #[test]
    fn shared_variable_blocks_the_singleton() {
        let p = parse(
            "var a : integer;
             cobegin begin a := 1; a := 2 end || begin a := 3; a := 4 end coend",
        )
        .unwrap();
        let t = FootprintTable::new(&p);
        let mut m = crate::Machine::new(&p);
        m.step(crate::ProcId(0)).unwrap();
        m.step(crate::ProcId(1)).unwrap();
        m.step(crate::ProcId(2)).unwrap();
        let enabled = m.enabled();
        assert_eq!(t.persistent_singleton(&m, &enabled), None);
    }

    #[test]
    fn varset_overflow_is_conservative() {
        let mut s = VarSet::EMPTY;
        s.insert(VarId(500));
        assert!(s.intersects(VarSet::EMPTY));
        assert!(s.contains(VarId(3)));
    }
}
