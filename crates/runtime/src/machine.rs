//! The small-step abstract machine for the parallel language.
//!
//! Atomicity follows §2.0 of the paper: each assignment (with its
//! right-hand side), each guard evaluation, and each `wait`/`signal` is an
//! indivisible action. Control unfolding (`begin`, `cobegin`, `skip`) also
//! counts as one machine step, which keeps step counts finite and
//! deterministic for a fixed schedule.
//!
//! A [`Machine`] holds a shared store plus a tree of processes. `cobegin`
//! spawns child processes and parks the parent until all children finish;
//! `wait(sem)` is *enabled* only when the semaphore is positive, so a
//! process stuck at `wait` simply is not schedulable — when no process is
//! enabled and some are alive, the machine is deadlocked.

use std::fmt;

use secflow_lang::{BinOp, Expr, Program, Span, Stmt, UnOp, VarId};

/// Identifies a process within a machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// A runtime fault (the only ones possible: division/remainder by zero).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// What happened.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime fault: {} (at {})", self.message, self.span)
    }
}

impl std::error::Error for Fault {}

/// Evaluates an expression over a store (wrapping arithmetic; comparisons
/// and logical operators yield 1/0; `not 0 = 1`).
pub fn eval(expr: &Expr, store: &[i64]) -> Result<i64, Fault> {
    Ok(match expr {
        Expr::Const(n, _) => *n,
        Expr::Var(v, _) => store[v.index()],
        Expr::Unary { op, arg, .. } => {
            let a = eval(arg, store)?;
            match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => i64::from(a == 0),
            }
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let a = eval(lhs, store)?;
            let b = eval(rhs, store)?;
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(Fault {
                            message: "division by zero".into(),
                            span: *span,
                        });
                    }
                    a.wrapping_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(Fault {
                            message: "remainder by zero".into(),
                            span: *span,
                        });
                    }
                    a.wrapping_rem(b)
                }
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::And => i64::from(a != 0 && b != 0),
                BinOp::Or => i64::from(a != 0 || b != 0),
            }
        }
    })
}

/// One continuation frame of a process.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Frame<'p> {
    /// Execute a statement.
    Stmt(&'p Stmt),
    /// Re-test a loop guard after its body ran.
    LoopHead(&'p Stmt),
}

impl Frame<'_> {
    /// A stable fingerprint for state hashing (statement addresses are
    /// stable for the lifetime of the borrowed program).
    pub(crate) fn fingerprint(&self) -> u64 {
        match self {
            Frame::Stmt(s) => (*s as *const Stmt as u64) << 1,
            Frame::LoopHead(s) => ((*s as *const Stmt as u64) << 1) | 1,
        }
    }
}

/// What a process is currently doing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    /// Can take a step (possibly a blocked `wait` — enabledness is
    /// re-checked against the store).
    Runnable,
    /// Parked until `remaining` children finish.
    Waiting { remaining: usize },
    /// Finished.
    Done,
}

#[derive(Clone, Debug)]
pub(crate) struct Proc<'p> {
    pub(crate) frames: Vec<Frame<'p>>,
    pub(crate) state: ProcState,
    pub(crate) parent: Option<ProcId>,
}

/// What one machine step did (for traces and the taint monitor).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// `x := e` executed; the new value is recorded.
    Assign {
        /// Target variable.
        var: VarId,
        /// Value written.
        value: i64,
    },
    /// A guard was evaluated.
    Guard {
        /// The guard's value (0 = false).
        taken: bool,
    },
    /// `wait(sem)` completed (the semaphore was positive).
    Wait {
        /// The semaphore.
        sem: VarId,
    },
    /// `signal(sem)` executed.
    Signal {
        /// The semaphore.
        sem: VarId,
    },
    /// Control-only step (`skip`, `begin` unfolding).
    Control,
    /// A `cobegin` spawned child processes.
    Spawn {
        /// Ids of the children.
        children: Vec<ProcId>,
    },
    /// The process ran out of frames and finished.
    Finished,
}

/// Overall machine status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// At least one process is enabled.
    Running,
    /// Every process finished.
    Terminated,
    /// Live processes exist but none is enabled (all stuck at `wait`).
    Deadlocked,
}

/// The abstract machine: shared store + process tree.
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    store: Vec<i64>,
    pub(crate) procs: Vec<Proc<'p>>,
    steps: usize,
}

impl<'p> Machine<'p> {
    /// Boots a machine with declared initial values.
    pub fn new(program: &'p Program) -> Self {
        let store = program.symbols.iter().map(|(_, v)| v.init).collect();
        Machine {
            program,
            store,
            procs: vec![Proc {
                frames: vec![Frame::Stmt(&program.body)],
                state: ProcState::Runnable,
                parent: None,
            }],
            steps: 0,
        }
    }

    /// Boots a machine, overriding some initial values (program inputs).
    pub fn with_inputs(program: &'p Program, inputs: &[(VarId, i64)]) -> Self {
        let mut m = Self::new(program);
        for (v, val) in inputs {
            m.store[v.index()] = *val;
        }
        m
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current value of a variable.
    pub fn get(&self, var: VarId) -> i64 {
        self.store[var.index()]
    }

    /// The whole store, indexed by [`VarId`].
    pub fn store(&self) -> &[i64] {
        &self.store
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// `true` iff `pid` can take a step right now.
    pub fn is_enabled(&self, pid: ProcId) -> bool {
        let p = &self.procs[pid.0];
        if p.state != ProcState::Runnable {
            return false;
        }
        match p.frames.last() {
            None => false,
            Some(Frame::Stmt(Stmt::Wait { sem, .. })) => self.store[sem.index()] > 0,
            Some(_) => true,
        }
    }

    /// Ids of all currently enabled processes, ascending.
    pub fn enabled(&self) -> Vec<ProcId> {
        (0..self.procs.len())
            .map(ProcId)
            .filter(|&pid| self.is_enabled(pid))
            .collect()
    }

    /// Total processes ever created (including finished ones; process
    /// ids are never reused).
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// `true` iff the process has finished.
    pub fn is_done(&self, pid: ProcId) -> bool {
        self.procs[pid.0].state == ProcState::Done
    }

    /// The statement whose head `pid` would execute next — its pending
    /// atomic action — or `None` if the process has no frames. A loop
    /// re-test reports its `while` statement (the action is the same
    /// guard evaluation either way).
    pub fn pending_stmt(&self, pid: ProcId) -> Option<&'p Stmt> {
        self.procs[pid.0].frames.last().map(|f| match f {
            Frame::Stmt(s) | Frame::LoopHead(s) => *s,
        })
    }

    /// Number of continuation frames on `pid`'s stack.
    pub fn frame_count(&self, pid: ProcId) -> usize {
        self.procs[pid.0].frames.len()
    }

    /// `true` iff `pid`'s next step is a loop-guard *re-test*
    /// ([`Frame::LoopHead`]). Re-testing a guard is the machine's only
    /// back edge — every other step executes a not-yet-executed node of
    /// the program tree — so any cycle in the state graph contains at
    /// least one such step by every process that moves along it. The
    /// partial-order reducer uses this as its cycle proviso (DESIGN
    /// §12).
    pub fn at_loop_head(&self, pid: ProcId) -> bool {
        matches!(self.procs[pid.0].frames.last(), Some(Frame::LoopHead(_)))
    }

    /// The statements of every continuation frame of `pid`, innermost
    /// (next to execute) first. Their subtrees jointly over-approximate
    /// everything the process can still do.
    pub fn frame_stmts(&self, pid: ProcId) -> impl Iterator<Item = &'p Stmt> + '_ {
        self.procs[pid.0].frames.iter().rev().map(|f| match f {
            Frame::Stmt(s) | Frame::LoopHead(s) => *s,
        })
    }

    /// Machine status.
    pub fn status(&self) -> Status {
        if self.procs.iter().all(|p| p.state == ProcState::Done) {
            return Status::Terminated;
        }
        if self.enabled().is_empty() {
            Status::Deadlocked
        } else {
            Status::Running
        }
    }

    /// A fingerprint of the full machine state (store + process
    /// continuations), used by the interleaving explorer.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the store and continuation fingerprints.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for v in &self.store {
            mix(*v as u64);
        }
        for p in &self.procs {
            mix(match p.state {
                ProcState::Runnable => 1,
                ProcState::Waiting { remaining } => 0x1000 + remaining as u64,
                ProcState::Done => 2,
            });
            for f in &p.frames {
                mix(f.fingerprint());
            }
        }
        h
    }

    /// Takes one atomic step of process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not enabled (callers must schedule only enabled
    /// processes).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] for division/remainder by zero; the machine is
    /// left unchanged except for the step counter.
    pub fn step(&mut self, pid: ProcId) -> Result<Action, Fault> {
        assert!(self.is_enabled(pid), "process {pid:?} is not enabled");
        self.steps += 1;
        let frame = self.procs[pid.0]
            .frames
            .pop()
            .expect("enabled process has a frame");
        let action = match frame {
            Frame::Stmt(stmt) => self.exec(pid, stmt)?,
            Frame::LoopHead(stmt) => {
                let Stmt::While { cond, body, .. } = stmt else {
                    unreachable!("LoopHead always wraps a while statement");
                };
                let taken = match eval(cond, &self.store) {
                    Ok(v) => v != 0,
                    Err(e) => {
                        self.procs[pid.0].frames.push(frame);
                        return Err(e);
                    }
                };
                if taken {
                    self.procs[pid.0].frames.push(Frame::LoopHead(stmt));
                    self.procs[pid.0].frames.push(Frame::Stmt(body));
                }
                Action::Guard { taken }
            }
        };
        // Process completion bubbles up the parent chain.
        let mut cur = pid;
        while self.procs[cur.0].frames.is_empty() && self.procs[cur.0].state == ProcState::Runnable
        {
            self.procs[cur.0].state = ProcState::Done;
            match self.procs[cur.0].parent {
                Some(parent) => {
                    let ProcState::Waiting { remaining } = &mut self.procs[parent.0].state else {
                        break;
                    };
                    *remaining -= 1;
                    if *remaining == 0 {
                        self.procs[parent.0].state = ProcState::Runnable;
                    }
                    if self.procs[parent.0].state == ProcState::Runnable
                        && self.procs[parent.0].frames.is_empty()
                    {
                        cur = parent;
                        continue;
                    }
                    break;
                }
                None => break,
            }
        }
        Ok(action)
    }

    fn exec(&mut self, pid: ProcId, stmt: &'p Stmt) -> Result<Action, Fault> {
        match stmt {
            Stmt::Skip(_) => Ok(Action::Control),
            Stmt::Assign { var, expr, .. } => {
                let value = match eval(expr, &self.store) {
                    Ok(v) => v,
                    Err(e) => {
                        self.procs[pid.0].frames.push(Frame::Stmt(stmt));
                        return Err(e);
                    }
                };
                self.store[var.index()] = value;
                Ok(Action::Assign { var: *var, value })
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let taken = match eval(cond, &self.store) {
                    Ok(v) => v != 0,
                    Err(e) => {
                        self.procs[pid.0].frames.push(Frame::Stmt(stmt));
                        return Err(e);
                    }
                };
                if taken {
                    self.procs[pid.0].frames.push(Frame::Stmt(then_branch));
                } else if let Some(eb) = else_branch {
                    self.procs[pid.0].frames.push(Frame::Stmt(eb));
                }
                Ok(Action::Guard { taken })
            }
            Stmt::While { cond, body, .. } => {
                let taken = match eval(cond, &self.store) {
                    Ok(v) => v != 0,
                    Err(e) => {
                        self.procs[pid.0].frames.push(Frame::Stmt(stmt));
                        return Err(e);
                    }
                };
                if taken {
                    self.procs[pid.0].frames.push(Frame::LoopHead(stmt));
                    self.procs[pid.0].frames.push(Frame::Stmt(body));
                }
                Ok(Action::Guard { taken })
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts.iter().rev() {
                    self.procs[pid.0].frames.push(Frame::Stmt(s));
                }
                Ok(Action::Control)
            }
            Stmt::Cobegin { branches, .. } => {
                let mut children = Vec::with_capacity(branches.len());
                for b in branches {
                    let id = ProcId(self.procs.len());
                    self.procs.push(Proc {
                        frames: vec![Frame::Stmt(b)],
                        state: ProcState::Runnable,
                        parent: Some(pid),
                    });
                    children.push(id);
                }
                self.procs[pid.0].state = ProcState::Waiting {
                    remaining: children.len(),
                };
                Ok(Action::Spawn { children })
            }
            Stmt::Wait { sem, .. } => {
                debug_assert!(self.store[sem.index()] > 0, "wait scheduled while blocked");
                self.store[sem.index()] -= 1;
                Ok(Action::Wait { sem: *sem })
            }
            Stmt::Signal { sem, .. } => {
                self.store[sem.index()] += 1;
                Ok(Action::Signal { sem: *sem })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    /// Steps the single enabled process until termination (works for
    /// deterministic schedules where one process is always picked first).
    fn run_first(m: &mut Machine<'_>, fuel: usize) -> Status {
        for _ in 0..fuel {
            match m.status() {
                Status::Running => {
                    let pid = m.enabled()[0];
                    m.step(pid).unwrap();
                }
                other => return other,
            }
        }
        m.status()
    }

    #[test]
    fn executes_straight_line_code() {
        let p = parse("var x, y : integer; begin x := 2; y := x * 3 + 1 end").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(run_first(&mut m, 100), Status::Terminated);
        assert_eq!(m.get(p.var("x")), 2);
        assert_eq!(m.get(p.var("y")), 7);
    }

    #[test]
    fn executes_branches_both_ways() {
        let src = "var x, y : integer; if x = 0 then y := 1 else y := 2";
        let p = parse(src).unwrap();
        let mut m = Machine::with_inputs(&p, &[(p.var("x"), 0)]);
        run_first(&mut m, 100);
        assert_eq!(m.get(p.var("y")), 1);
        let mut m = Machine::with_inputs(&p, &[(p.var("x"), 5)]);
        run_first(&mut m, 100);
        assert_eq!(m.get(p.var("y")), 2);
    }

    #[test]
    fn executes_loops() {
        let p = parse("var x, acc : integer; while x > 0 do begin acc := acc + x; x := x - 1 end")
            .unwrap();
        let mut m = Machine::with_inputs(&p, &[(p.var("x"), 4)]);
        assert_eq!(run_first(&mut m, 1000), Status::Terminated);
        assert_eq!(m.get(p.var("acc")), 10);
        assert_eq!(m.get(p.var("x")), 0);
    }

    #[test]
    fn semaphores_block_and_release() {
        let p = parse(
            "var x : integer; s : semaphore;
             cobegin begin wait(s); x := 1 end || signal(s) coend",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        // Unfold the cobegin.
        let root = m.enabled()[0];
        m.step(root).unwrap();
        // Process 1 (the waiter) first unfolds its begin/end, then blocks.
        let waiter = ProcId(1);
        let signaler = ProcId(2);
        m.step(waiter).unwrap(); // unfold the sequence
        assert!(!m.is_enabled(waiter));
        assert!(m.is_enabled(signaler));
        m.step(signaler).unwrap();
        assert!(m.is_enabled(waiter));
        m.step(waiter).unwrap(); // wait completes
        m.step(waiter).unwrap(); // x := 1
        assert_eq!(m.get(p.var("x")), 1);
        assert_eq!(m.status(), Status::Terminated);
    }

    #[test]
    fn deadlock_is_detected() {
        let p = parse("var s : semaphore; wait(s)").unwrap();
        let m = Machine::new(&p);
        assert_eq!(m.status(), Status::Deadlocked);
    }

    #[test]
    fn semaphore_initial_values_matter() {
        let p = parse("var s : semaphore initially(1); wait(s)").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.status(), Status::Running);
        m.step(ProcId(0)).unwrap();
        assert_eq!(m.status(), Status::Terminated);
        assert_eq!(m.get(p.var("s")), 0);
    }

    #[test]
    fn division_by_zero_faults_without_corrupting_state() {
        let p = parse("var x, y : integer; y := 1 / x").unwrap();
        let mut m = Machine::new(&p);
        let err = m.step(ProcId(0)).unwrap_err();
        assert!(err.message.contains("division"));
        // The statement is still pending; the store is untouched.
        assert_eq!(m.get(p.var("y")), 0);
        assert_eq!(m.status(), Status::Running);
    }

    #[test]
    fn nested_cobegin_parks_parent() {
        let p = parse(
            "var a, b, c : integer;
             cobegin
               cobegin a := 1 || b := 2 coend
             ||
               c := 3
             coend",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        let mut guard = 0;
        while m.status() == Status::Running {
            let pid = *m.enabled().first().unwrap();
            m.step(pid).unwrap();
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(m.status(), Status::Terminated);
        assert_eq!(m.get(p.var("a")), 1);
        assert_eq!(m.get(p.var("b")), 2);
        assert_eq!(m.get(p.var("c")), 3);
    }

    #[test]
    fn fingerprints_distinguish_stores() {
        let p = parse("var x : integer; x := 1").unwrap();
        let m1 = Machine::new(&p);
        let m2 = Machine::with_inputs(&p, &[(p.var("x"), 42)]);
        assert_ne!(m1.fingerprint(), m2.fingerprint());
    }

    #[test]
    fn eval_covers_all_operators() {
        let p = parse(
            "var a, b : integer;
             a := ((3 + 4 * 2 - 1) / 2) % 4 + (1 = 1) + (1 # 2) + (1 < 2) + (1 <= 1) +
                  (2 > 1) + (2 >= 3) + (1 and 1) + (0 or 1) + not 0 + -(0 - 1)",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        run_first(&mut m, 10);
        // ((3+8-1)/2)%4 = 5%4 = 1; plus 1+1+1+1+1+0+1+1+1+1 = 9 → 10.
        assert_eq!(m.get(p.var("a")), 10);
    }
}
