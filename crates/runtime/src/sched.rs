//! Schedulers and the run loop.
//!
//! The paper treats scheduling as adversarial: a flow exists if it occurs
//! under *some* interleaving ("Although in this case the flow would not
//! always occur, it could occur and would be considered by CFM", §4.3).
//! The harness therefore runs programs under multiple schedulers: a
//! deterministic round-robin, a seeded uniformly-random scheduler for
//! schedule sweeps, and (in [`crate::explore`](mod@crate::explore)) an exhaustive enumerator.

use crate::machine::{Fault, Machine, ProcId, Status};
use crate::rng::SplitMix64;

/// Picks the next process to step among the enabled ones.
pub trait Scheduler {
    /// Chooses one of `enabled` (guaranteed non-empty, ascending order).
    fn pick(&mut self, enabled: &[ProcId]) -> ProcId;
}

/// Deterministic round-robin over process ids.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, enabled: &[ProcId]) -> ProcId {
        // First enabled pid ≥ next, else wrap to the smallest.
        let pid = enabled
            .iter()
            .find(|p| p.0 >= self.next)
            .or_else(|| enabled.first())
            .copied()
            .expect("enabled is non-empty");
        self.next = pid.0 + 1;
        pid
    }
}

/// Uniformly-random scheduling from a fixed seed (reproducible sweeps).
#[derive(Clone, Copy, Debug)]
pub struct RandomSched {
    rng: SplitMix64,
}

impl RandomSched {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        RandomSched {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for RandomSched {
    fn pick(&mut self, enabled: &[ProcId]) -> ProcId {
        enabled[self.rng.index(enabled.len())]
    }
}

/// How a run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// All processes finished; the final store is in the machine.
    Terminated,
    /// Live processes remained but none was enabled.
    Deadlocked,
    /// The step budget ran out (e.g. a non-terminating loop).
    FuelExhausted,
    /// A runtime fault occurred.
    Faulted(Fault),
}

impl RunOutcome {
    /// `true` for [`RunOutcome::Terminated`].
    pub fn terminated(&self) -> bool {
        matches!(self, RunOutcome::Terminated)
    }
}

/// Runs `machine` to completion under `scheduler`, with a step budget.
pub fn run(machine: &mut Machine<'_>, scheduler: &mut impl Scheduler, fuel: usize) -> RunOutcome {
    for _ in 0..fuel {
        match machine.status() {
            Status::Terminated => return RunOutcome::Terminated,
            Status::Deadlocked => return RunOutcome::Deadlocked,
            Status::Running => {
                let enabled = machine.enabled();
                let pid = scheduler.pick(&enabled);
                debug_assert!(
                    enabled.contains(&pid),
                    "scheduler picked a disabled process"
                );
                if let Err(f) = machine.step(pid) {
                    return RunOutcome::Faulted(f);
                }
            }
        }
    }
    match machine.status() {
        Status::Terminated => RunOutcome::Terminated,
        Status::Deadlocked => RunOutcome::Deadlocked,
        Status::Running => RunOutcome::FuelExhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    #[test]
    fn round_robin_terminates_simple_programs() {
        let p = parse("var x : integer; begin x := 1; x := x + 1 end").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 100),
            RunOutcome::Terminated
        );
        assert_eq!(m.get(p.var("x")), 2);
    }

    #[test]
    fn round_robin_alternates_processes() {
        let p = parse(
            "var a, b : integer;
             cobegin begin a := 1; a := a + 1 end || begin b := 1; b := b + 1 end coend",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 100),
            RunOutcome::Terminated
        );
        assert_eq!(m.get(p.var("a")), 2);
        assert_eq!(m.get(p.var("b")), 2);
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let p = parse(
            "var x : integer;
             cobegin x := 1 || x := 2 || x := 3 coend",
        )
        .unwrap();
        let run_with = |seed: u64| {
            let mut m = Machine::new(&p);
            run(&mut m, &mut RandomSched::new(seed), 100);
            m.get(p.var("x"))
        };
        assert_eq!(run_with(7), run_with(7));
        // Different seeds explore different interleavings (not guaranteed
        // to differ, but over 32 seeds we must see at least two winners).
        let distinct: std::collections::BTreeSet<i64> = (0..32).map(run_with).collect();
        assert!(distinct.len() >= 2, "race never observed: {distinct:?}");
    }

    #[test]
    fn fuel_exhaustion_on_infinite_loop() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 50),
            RunOutcome::FuelExhausted
        );
    }

    #[test]
    fn deadlock_outcome() {
        let p = parse("var s : semaphore; begin signal(s); wait(s); wait(s) end").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 100),
            RunOutcome::Deadlocked
        );
    }

    #[test]
    fn fault_outcome() {
        let p = parse("var x : integer; x := 1 / 0").unwrap();
        let mut m = Machine::new(&p);
        assert!(matches!(
            run(&mut m, &mut RoundRobin::new(), 10),
            RunOutcome::Faulted(_)
        ));
    }

    #[test]
    fn paper_2_2_wait_example_deadlocks_iff_x_nonzero() {
        // cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        let mut m = Machine::with_inputs(&p, &[(p.var("x"), 0)]);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 100),
            RunOutcome::Terminated
        );
        assert_eq!(m.get(p.var("y")), 0);

        let mut m = Machine::with_inputs(&p, &[(p.var("x"), 1)]);
        assert_eq!(
            run(&mut m, &mut RoundRobin::new(), 100),
            RunOutcome::Deadlocked
        );
    }
}
