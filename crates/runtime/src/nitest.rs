//! The noninterference harness: empirical ground truth for information
//! flow.
//!
//! A program is *possibilistically noninterfering* for an observer who
//! sees the variables `low_vars` iff the set of observable outcomes —
//! final low-variable values of terminating schedules, plus whether any
//! schedule can deadlock — is the same for every value of the secret
//! inputs. This harness computes those observation sets exactly (via
//! [`crate::explore`](mod@crate::explore)) and reports the first pair of secret inputs whose
//! observations differ, i.e. a concrete interference witness.
//!
//! This is experiment E10's ground truth: CFM must never certify a
//! program that interferes (soundness), while the paper's §5.2 example
//! shows the converse direction is conservative.

use std::collections::BTreeSet;

use secflow_lang::{Program, VarId};

use crate::explore::{explore, ExploreLimits};

/// What one secret-input assignment makes observable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Observation {
    /// Final low-variable values across all terminating schedules.
    pub low_outcomes: BTreeSet<Vec<i64>>,
    /// Whether some schedule deadlocks (observable as hanging).
    pub can_deadlock: bool,
    /// Whether some schedule faults.
    pub can_fault: bool,
}

/// A concrete interference witness.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    /// First secret assignment.
    pub inputs_a: Vec<(VarId, i64)>,
    /// Second secret assignment.
    pub inputs_b: Vec<(VarId, i64)>,
    /// What the observer sees under `inputs_a`.
    pub observed_a: Observation,
    /// What the observer sees under `inputs_b`.
    pub observed_b: Observation,
}

/// The harness verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NiReport {
    /// `true` iff some pair of secret inputs is distinguishable.
    pub interferes: bool,
    /// The distinguishing pair, when one exists.
    pub witness: Option<Witness>,
    /// `true` if any exploration hit its limits (verdict is then only a
    /// lower bound: undiscovered interference may remain).
    pub truncated: bool,
}

/// Computes the observation set for one secret assignment.
pub fn observe(
    program: &Program,
    inputs: &[(VarId, i64)],
    low_vars: &[VarId],
    limits: ExploreLimits,
) -> (Observation, bool) {
    let r = explore(program, inputs, limits);
    (
        Observation {
            low_outcomes: r.project(low_vars),
            can_deadlock: r.can_deadlock(),
            can_fault: r.faults > 0,
        },
        r.truncated,
    )
}

/// Tests noninterference across the given secret-input variants.
///
/// `variants` lists complete secret assignments (each a vector of
/// `(secret var, value)` pairs); all other variables keep their declared
/// initial values. The observer sees exactly `low_vars`.
///
/// # Examples
///
/// ```
/// use secflow_lang::parse;
/// use secflow_runtime::{check_noninterference, ExploreLimits};
///
/// // Direct leak: y := x.
/// let p = parse("var x, y : integer; y := x").unwrap();
/// let x = p.var("x");
/// let report = check_noninterference(
///     &p,
///     &[vec![(x, 0)], vec![(x, 1)]],
///     &[p.var("y")],
///     ExploreLimits::default(),
/// );
/// assert!(report.interferes);
/// ```
pub fn check_noninterference(
    program: &Program,
    variants: &[Vec<(VarId, i64)>],
    low_vars: &[VarId],
    limits: ExploreLimits,
) -> NiReport {
    let mut truncated = false;
    let observations: Vec<(Vec<(VarId, i64)>, Observation)> = variants
        .iter()
        .map(|inputs| {
            let (obs, trunc) = observe(program, inputs, low_vars, limits);
            truncated |= trunc;
            (inputs.clone(), obs)
        })
        .collect();
    for i in 0..observations.len() {
        for j in i + 1..observations.len() {
            if observations[i].1 != observations[j].1 {
                return NiReport {
                    interferes: true,
                    witness: Some(Witness {
                        inputs_a: observations[i].0.clone(),
                        inputs_b: observations[j].0.clone(),
                        observed_a: observations[i].1.clone(),
                        observed_b: observations[j].1.clone(),
                    }),
                    truncated,
                };
            }
        }
    }
    NiReport {
        interferes: false,
        witness: None,
        truncated,
    }
}

/// Convenience: tests a single binary secret (`0` vs `1`).
pub fn check_binary_secret(
    program: &Program,
    secret: VarId,
    low_vars: &[VarId],
    limits: ExploreLimits,
) -> NiReport {
    check_noninterference(
        program,
        &[vec![(secret, 0)], vec![(secret, 1)]],
        low_vars,
        limits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn lim() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn direct_flow_interferes() {
        let p = parse("var x, y : integer; y := x").unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(r.interferes);
        let w = r.witness.unwrap();
        assert_ne!(w.observed_a.low_outcomes, w.observed_b.low_outcomes);
    }

    #[test]
    fn implicit_flow_interferes() {
        let p = parse("var x, y : integer; if x = 0 then y := 1").unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(r.interferes);
    }

    #[test]
    fn independent_variable_does_not_interfere() {
        let p = parse("var x, y : integer; y := 7").unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(!r.interferes);
    }

    #[test]
    fn deadlock_is_observable() {
        // §2.2: the wait example deadlocks iff x ≠ 0 — interference even
        // though no low variable differs among *terminating* runs… and y
        // differs too (it is only written when x = 0).
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(r.interferes);
        let w = r.witness.unwrap();
        assert_ne!(w.observed_a.can_deadlock, w.observed_b.can_deadlock);
    }

    #[test]
    fn synchronization_only_channel_interferes_without_deadlock() {
        // A deadlock-free ordering channel: x chooses which of two
        // orderings happens, and y records it.
        let p = parse(
            "var x, y, m : integer; a, b : semaphore;
             cobegin
               begin
                 if x = 0 then begin signal(a); wait(b) end
                 else begin m := 1; signal(a); wait(b) end;
                 y := m
               end
             ||
               begin wait(a); signal(b) end
             coend",
        )
        .unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(r.interferes);
        let w = r.witness.unwrap();
        assert!(!w.observed_a.can_deadlock && !w.observed_b.can_deadlock);
    }

    #[test]
    fn race_nondeterminism_is_not_interference() {
        // y is racy but the race is identical for every secret value.
        let p = parse("var x, y : integer; cobegin y := 1 || y := 2 coend").unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(!r.interferes);
    }

    #[test]
    fn multi_variant_sweep_finds_the_distinguishing_value() {
        // Leaks only whether x = 3.
        let p = parse("var x, y : integer; if x = 3 then y := 1").unwrap();
        let x = p.var("x");
        let variants: Vec<Vec<(VarId, i64)>> = (0..5).map(|v| vec![(x, v)]).collect();
        let r = check_noninterference(&p, &variants, &[p.var("y")], lim());
        assert!(r.interferes);
        let w = r.witness.unwrap();
        // One side of the witness must be x = 3.
        assert!(w.inputs_a == vec![(x, 3)] || w.inputs_b == vec![(x, 3)]);
    }

    #[test]
    fn fault_observability() {
        let p = parse("var x, y : integer; y := 1 / x").unwrap();
        let r = check_binary_secret(&p, p.var("x"), &[p.var("y")], lim());
        assert!(r.interferes);
        let w = r.witness.unwrap();
        assert_ne!(w.observed_a.can_fault, w.observed_b.can_fault);
    }
}
