//! Exhaustive interleaving exploration (bounded model checking).
//!
//! §4.3 argues about *all* interleavings: Figure 3 "cannot deadlock", and
//! the §2.2 example "will \[deadlock\] if x is not equal to zero". This
//! module enumerates every schedule of a program (up to the configured
//! limits) by depth-first search over machine states, memoizing visited
//! state fingerprints, and reports:
//!
//! - every distinct terminal store (the possibilistic outcome set),
//! - whether any schedule deadlocks or faults,
//! - whether the search was truncated by its limits.
//!
//! The outcome sets ground the noninterference experiments: a program is
//! (possibilistically) interference-free for an observer iff the observed
//! projection of the outcome set is independent of the secret inputs.

use std::collections::{BTreeSet, HashSet};

use secflow_lang::{Program, VarId};

use crate::machine::{Machine, Status};

/// Search limits.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum distinct states to expand.
    pub max_states: usize,
    /// Maximum schedule depth (steps along one path).
    pub max_depth: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_depth: 10_000,
        }
    }
}

/// What exhaustive exploration found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExploreReport {
    /// Distinct final stores of terminating schedules.
    pub outcomes: BTreeSet<Vec<i64>>,
    /// Distinct stores observed in deadlocked states — a sorted witness
    /// set, schedule-independent (several deadlocked states may share a
    /// store, so this can be smaller than `deadlocks`).
    pub deadlock_witnesses: BTreeSet<Vec<i64>>,
    /// Number of distinct deadlocked states reached.
    pub deadlocks: usize,
    /// Number of distinct faulting transitions observed.
    pub faults: usize,
    /// Distinct states expanded.
    pub states: usize,
    /// `true` if a limit stopped the search (results are then a subset).
    pub truncated: bool,
    /// `true` if the caller's `should_stop` hook stopped the search
    /// (implies `truncated`).
    pub cancelled: bool,
}

impl ExploreReport {
    /// `true` iff some schedule deadlocks.
    pub fn can_deadlock(&self) -> bool {
        self.deadlocks > 0
    }

    /// Projects the outcome set onto the given variables.
    pub fn project(&self, vars: &[VarId]) -> BTreeSet<Vec<i64>> {
        self.outcomes
            .iter()
            .map(|store| vars.iter().map(|v| store[v.index()]).collect())
            .collect()
    }
}

/// Exhaustively explores all interleavings of `program` from the given
/// inputs.
pub fn explore(program: &Program, inputs: &[(VarId, i64)], limits: ExploreLimits) -> ExploreReport {
    explore_with(program, inputs, limits, &|| false)
}

/// How many states to expand between `should_stop` polls. Small enough
/// that a deadline overrun is noticed within a fraction of the typical
/// per-state cost budget, large enough that the hook is off the hot path.
const CANCEL_POLL_STATES: usize = 256;

/// [`explore`] with a cooperative cancellation hook: `should_stop` is
/// polled every [`CANCEL_POLL_STATES`] expanded states, and a `true`
/// return abandons the search with `cancelled` (and `truncated`) set.
pub fn explore_with(
    program: &Program,
    inputs: &[(VarId, i64)],
    limits: ExploreLimits,
    should_stop: &dyn Fn() -> bool,
) -> ExploreReport {
    let machine = Machine::with_inputs(program, inputs);
    let mut report = ExploreReport {
        outcomes: BTreeSet::new(),
        deadlock_witnesses: BTreeSet::new(),
        deadlocks: 0,
        faults: 0,
        states: 0,
        truncated: false,
        cancelled: false,
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack: Vec<(Machine<'_>, usize)> = vec![(machine, 0)];
    while let Some((m, depth)) = stack.pop() {
        if !seen.insert(m.fingerprint()) {
            continue;
        }
        if report.states >= limits.max_states {
            report.truncated = true;
            break;
        }
        if report.states.is_multiple_of(CANCEL_POLL_STATES) && should_stop() {
            report.truncated = true;
            report.cancelled = true;
            break;
        }
        report.states += 1;
        match m.status() {
            Status::Terminated => {
                report.outcomes.insert(m.store().to_vec());
                continue;
            }
            Status::Deadlocked => {
                report.deadlocks += 1;
                report.deadlock_witnesses.insert(m.store().to_vec());
                continue;
            }
            Status::Running => {}
        }
        if depth >= limits.max_depth {
            report.truncated = true;
            continue;
        }
        for pid in m.enabled() {
            let mut next = m.clone();
            match next.step(pid) {
                Ok(_) => stack.push((next, depth + 1)),
                Err(_) => report.faults += 1,
            }
        }
    }
    report
}

/// `true` iff some interleaving of `program` deadlocks (within limits).
pub fn can_deadlock(program: &Program, inputs: &[(VarId, i64)], limits: ExploreLimits) -> bool {
    explore(program, inputs, limits).can_deadlock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn lim() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn sequential_program_has_one_outcome() {
        let p = parse("var x : integer; begin x := 1; x := x + 1 end").unwrap();
        let r = explore(&p, &[], lim());
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.deadlocks, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn racy_program_has_multiple_outcomes() {
        let p = parse("var x : integer; cobegin x := 1 || x := 2 coend").unwrap();
        let r = explore(&p, &[], lim());
        let x = p.var("x");
        let xs = r.project(&[x]);
        assert_eq!(xs, [vec![1], vec![2]].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn read_write_race_is_fully_enumerated() {
        // y := x can see x before or after x := 5.
        let p = parse("var x, y : integer; cobegin x := 5 || y := x coend").unwrap();
        let r = explore(&p, &[], lim());
        let ys = r.project(&[p.var("y")]);
        assert_eq!(ys, [vec![0], vec![5]].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn semaphore_ordering_removes_nondeterminism() {
        let p = parse(
            "var x, y : integer; s : semaphore;
             cobegin begin x := 5; signal(s) end || begin wait(s); y := x end coend",
        )
        .unwrap();
        let r = explore(&p, &[], lim());
        let ys = r.project(&[p.var("y")]);
        assert_eq!(ys, [vec![5]].into_iter().collect::<BTreeSet<_>>());
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn paper_2_2_example_deadlocks_exactly_when_x_nonzero() {
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        assert!(!can_deadlock(&p, &[(p.var("x"), 0)], lim()));
        assert!(can_deadlock(&p, &[(p.var("x"), 1)], lim()));
        // Deadlocked schedules leave a witness store; clean ones do not.
        let r = explore(&p, &[(p.var("x"), 1)], lim());
        assert!(!r.deadlock_witnesses.is_empty());
        assert!(r.deadlock_witnesses.len() <= r.deadlocks);
        let clean = explore(&p, &[(p.var("x"), 0)], lim());
        assert!(clean.deadlock_witnesses.is_empty());
    }

    #[test]
    fn faults_are_counted_not_fatal() {
        let p = parse("var x, y : integer; cobegin x := 1 / x || x := 1 coend").unwrap();
        // One ordering divides by zero, the other by one.
        let r = explore(&p, &[], lim());
        assert!(r.faults > 0);
        assert!(!r.outcomes.is_empty());
    }

    #[test]
    fn truncation_is_reported_for_infinite_loops() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let r = explore(
            &p,
            &[],
            ExploreLimits {
                max_states: 100,
                max_depth: 50,
            },
        );
        assert!(r.truncated);
    }

    #[test]
    fn cancellation_hook_stops_the_search() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let r = explore_with(&p, &[], lim(), &|| true);
        assert!(r.cancelled);
        assert!(r.truncated);
        assert!(r.states <= super::CANCEL_POLL_STATES);
    }

    #[test]
    fn memoization_collapses_commuting_steps() {
        // Two independent assignments: 2 interleavings, but the state
        // space after both is shared.
        let p = parse("var a, b : integer; cobegin a := 1 || b := 1 coend").unwrap();
        let r = explore(&p, &[], lim());
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.states <= 8, "states = {}", r.states);
    }
}
