//! Exhaustive interleaving exploration (bounded model checking).
//!
//! §4.3 argues about *all* interleavings: Figure 3 "cannot deadlock", and
//! the §2.2 example "will \[deadlock\] if x is not equal to zero". This
//! module enumerates every schedule of a program (up to the configured
//! limits) by depth-first search over machine states, memoizing visited
//! state fingerprints, and reports:
//!
//! - every distinct terminal store (the possibilistic outcome set),
//! - whether any schedule deadlocks or faults,
//! - whether the search was truncated by its limits.
//!
//! The outcome sets ground the noninterference experiments: a program is
//! (possibilistically) interference-free for an observer iff the observed
//! projection of the outcome set is independent of the secret inputs.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use secflow_lang::{Program, VarId};

use crate::footprint::FootprintTable;
use crate::machine::{Machine, ProcId, Status};

/// Search limits and reduction switches.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum distinct states to expand.
    pub max_states: usize,
    /// Maximum schedule depth (steps along one path).
    pub max_depth: usize,
    /// Partial-order reduction (persistent sets): at states where one
    /// enabled process is statically independent of everything the
    /// others can still do, expand only that process. Preserves every
    /// sink state — all outcomes, deadlocks, and witnesses — and,
    /// through the cycle proviso (no uncertified loop back edge is ever
    /// the singleton; see `FootprintTable::persistent_singleton`),
    /// fault *reachability* across live cycles, while visiting (often
    /// far) fewer states. On by default; `false` is the exhaustive
    /// escape hatch.
    pub por: bool,
    /// Sleep sets on top of persistent sets (sequential DFS only; the
    /// work-stealing explorer ignores this switch because sleep sets
    /// are traversal-order-dependent). Prunes commuting siblings the
    /// DFS already explores on a brother branch. Only meaningful with
    /// `por`.
    pub sleep_sets: bool,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_depth: 10_000,
            por: true,
            sleep_sets: true,
        }
    }
}

impl ExploreLimits {
    /// These limits with both reductions switched off (full search).
    pub fn without_por(self) -> ExploreLimits {
        ExploreLimits {
            por: false,
            sleep_sets: false,
            ..self
        }
    }

    /// These limits with persistent sets only (the deterministic
    /// reduction shared by the sequential and parallel engines).
    pub fn persistent_only(self) -> ExploreLimits {
        ExploreLimits {
            por: true,
            sleep_sets: false,
            ..self
        }
    }
}

/// What exhaustive exploration found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExploreReport {
    /// Distinct final stores of terminating schedules.
    pub outcomes: BTreeSet<Vec<i64>>,
    /// Distinct stores observed in deadlocked states — a sorted witness
    /// set, schedule-independent (several deadlocked states may share a
    /// store, so this can be smaller than `deadlocks`).
    pub deadlock_witnesses: BTreeSet<Vec<i64>>,
    /// Number of distinct deadlocked states reached.
    pub deadlocks: usize,
    /// Number of distinct faulting transitions observed.
    pub faults: usize,
    /// Distinct states expanded.
    pub states: usize,
    /// Transitions partial-order reduction declined to expand (each one
    /// a successor the full search would have scheduled). Zero when POR
    /// is off.
    pub states_pruned: usize,
    /// `true` if a limit stopped the search (results are then a subset).
    pub truncated: bool,
    /// `true` if the caller's `should_stop` hook stopped the search
    /// (implies `truncated`).
    pub cancelled: bool,
}

impl ExploreReport {
    /// `true` iff some schedule deadlocks.
    pub fn can_deadlock(&self) -> bool {
        self.deadlocks > 0
    }

    /// Projects the outcome set onto the given variables.
    pub fn project(&self, vars: &[VarId]) -> BTreeSet<Vec<i64>> {
        self.outcomes
            .iter()
            .map(|store| vars.iter().map(|v| store[v.index()]).collect())
            .collect()
    }
}

/// Exhaustively explores all interleavings of `program` from the given
/// inputs.
pub fn explore(program: &Program, inputs: &[(VarId, i64)], limits: ExploreLimits) -> ExploreReport {
    explore_with(program, inputs, limits, &|| false)
}

/// How many states to expand between `should_stop` polls. Small enough
/// that a deadline overrun is noticed within a fraction of the typical
/// per-state cost budget, large enough that the hook is off the hot path.
const CANCEL_POLL_STATES: usize = 256;

/// [`explore`] with a cooperative cancellation hook: `should_stop` is
/// polled every [`CANCEL_POLL_STATES`] expanded states, and a `true`
/// return abandons the search with `cancelled` (and `truncated`) set.
pub fn explore_with(
    program: &Program,
    inputs: &[(VarId, i64)],
    limits: ExploreLimits,
    should_stop: &dyn Fn() -> bool,
) -> ExploreReport {
    let machine = Machine::with_inputs(program, inputs);
    let table = limits.por.then(|| FootprintTable::new(program));
    let mut report = ExploreReport {
        outcomes: BTreeSet::new(),
        deadlock_witnesses: BTreeSet::new(),
        deadlocks: 0,
        faults: 0,
        states: 0,
        states_pruned: 0,
        truncated: false,
        cancelled: false,
    };
    // Visited fingerprints, each remembering the sleep set it was
    // expanded under (always 0 when sleep sets are off). Re-reaching a
    // state with a *smaller* sleep set must re-expand exactly the
    // transitions slept before but awake now, else the reduction could
    // miss sink states hiding behind a previously-slept move.
    let mut seen: HashMap<u64, u64> = HashMap::new();
    let mut stack: Vec<(Machine<'_>, usize, u64)> = vec![(machine, 0, 0)];
    while let Some((m, depth, sleep)) = stack.pop() {
        // Sleep sets need one bit per process id; past 64 processes the
        // state ignores its sleep mask (exploring more — still sound).
        let sleep_ok = limits.sleep_sets && limits.por && m.proc_count() <= 64;
        let sleep = if sleep_ok { sleep } else { 0 };
        // `None` = expand everything (first visit); `Some(mask)` = only
        // the newly woken transitions of a revisited state.
        let wake: Option<u64> = match seen.entry(m.fingerprint()) {
            Entry::Vacant(e) => {
                e.insert(sleep);
                None
            }
            Entry::Occupied(mut e) => {
                let woken = *e.get() & !sleep;
                if woken == 0 {
                    continue;
                }
                *e.get_mut() &= sleep;
                Some(woken)
            }
        };
        let fresh = wake.is_none();
        if fresh {
            if report.states >= limits.max_states {
                report.truncated = true;
                break;
            }
            if report.states.is_multiple_of(CANCEL_POLL_STATES) && should_stop() {
                report.truncated = true;
                report.cancelled = true;
                break;
            }
            report.states += 1;
            match m.status() {
                Status::Terminated => {
                    report.outcomes.insert(m.store().to_vec());
                    continue;
                }
                Status::Deadlocked => {
                    report.deadlocks += 1;
                    report.deadlock_witnesses.insert(m.store().to_vec());
                    continue;
                }
                Status::Running => {}
            }
        }
        if depth >= limits.max_depth {
            report.truncated = true;
            continue;
        }
        let enabled = m.enabled();
        // Persistent sets: the selection is a pure function of the
        // state, so first visits and revisits agree on the candidates.
        let candidates: &[ProcId] = match table
            .as_ref()
            .and_then(|t| t.persistent_singleton(&m, &enabled))
        {
            Some(p) => {
                if fresh {
                    report.states_pruned += enabled.len() - 1;
                }
                let idx = enabled.iter().position(|&q| q == p).expect("enabled");
                &enabled[idx..=idx]
            }
            None => &enabled,
        };
        let mut cur: u64 = sleep;
        for &pid in candidates {
            let bit = 1u64 << pid.0.min(63);
            if sleep_ok && cur & bit != 0 {
                // A sibling branch of the DFS already explores this
                // commuting move from an equivalent point.
                if fresh {
                    report.states_pruned += 1;
                }
                continue;
            }
            if wake.is_none_or(|w| w & bit != 0) {
                let mut next = m.clone();
                match next.step(pid) {
                    Ok(_) => {
                        let child_sleep = if sleep_ok {
                            // Keep only the slept moves that commute
                            // with this step; dependent ones wake up.
                            let (mut kept, mut rest) = (0u64, cur);
                            while rest != 0 {
                                let q = ProcId(rest.trailing_zeros() as usize);
                                rest &= rest - 1;
                                let t = table.as_ref().expect("sleep_ok implies table");
                                if t.independent_at(&m, q, pid) {
                                    kept |= 1 << q.0;
                                }
                            }
                            kept
                        } else {
                            0
                        };
                        stack.push((next, depth + 1, child_sleep));
                    }
                    Err(_) => report.faults += 1,
                }
            }
            if sleep_ok {
                cur |= bit;
            }
        }
    }
    report
}

/// `true` iff some interleaving of `program` deadlocks (within limits).
pub fn can_deadlock(program: &Program, inputs: &[(VarId, i64)], limits: ExploreLimits) -> bool {
    explore(program, inputs, limits).can_deadlock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn lim() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn sequential_program_has_one_outcome() {
        let p = parse("var x : integer; begin x := 1; x := x + 1 end").unwrap();
        let r = explore(&p, &[], lim());
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.deadlocks, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn racy_program_has_multiple_outcomes() {
        let p = parse("var x : integer; cobegin x := 1 || x := 2 coend").unwrap();
        let r = explore(&p, &[], lim());
        let x = p.var("x");
        let xs = r.project(&[x]);
        assert_eq!(xs, [vec![1], vec![2]].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn read_write_race_is_fully_enumerated() {
        // y := x can see x before or after x := 5.
        let p = parse("var x, y : integer; cobegin x := 5 || y := x coend").unwrap();
        let r = explore(&p, &[], lim());
        let ys = r.project(&[p.var("y")]);
        assert_eq!(ys, [vec![0], vec![5]].into_iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn semaphore_ordering_removes_nondeterminism() {
        let p = parse(
            "var x, y : integer; s : semaphore;
             cobegin begin x := 5; signal(s) end || begin wait(s); y := x end coend",
        )
        .unwrap();
        let r = explore(&p, &[], lim());
        let ys = r.project(&[p.var("y")]);
        assert_eq!(ys, [vec![5]].into_iter().collect::<BTreeSet<_>>());
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn paper_2_2_example_deadlocks_exactly_when_x_nonzero() {
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        assert!(!can_deadlock(&p, &[(p.var("x"), 0)], lim()));
        assert!(can_deadlock(&p, &[(p.var("x"), 1)], lim()));
        // Deadlocked schedules leave a witness store; clean ones do not.
        let r = explore(&p, &[(p.var("x"), 1)], lim());
        assert!(!r.deadlock_witnesses.is_empty());
        assert!(r.deadlock_witnesses.len() <= r.deadlocks);
        let clean = explore(&p, &[(p.var("x"), 0)], lim());
        assert!(clean.deadlock_witnesses.is_empty());
    }

    #[test]
    fn faults_are_counted_not_fatal() {
        let p = parse("var x, y : integer; cobegin x := 1 / x || x := 1 coend").unwrap();
        // One ordering divides by zero, the other by one.
        let r = explore(&p, &[], lim());
        assert!(r.faults > 0);
        assert!(!r.outcomes.is_empty());
    }

    #[test]
    fn truncation_is_reported_for_infinite_loops() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let r = explore(
            &p,
            &[],
            ExploreLimits {
                max_states: 100,
                max_depth: 50,
                ..ExploreLimits::default()
            },
        );
        assert!(r.truncated);
    }

    #[test]
    fn cancellation_hook_stops_the_search() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let r = explore_with(&p, &[], lim(), &|| true);
        assert!(r.cancelled);
        assert!(r.truncated);
        assert!(r.states <= super::CANCEL_POLL_STATES);
    }

    /// Projects a report onto the mode-independent verdict: POR changes
    /// how many states are visited (and how many faulting transitions
    /// are attempted), never what is reachable.
    fn verdict(r: &ExploreReport) -> (BTreeSet<Vec<i64>>, BTreeSet<Vec<i64>>, usize, bool, bool) {
        (
            r.outcomes.clone(),
            r.deadlock_witnesses.clone(),
            r.deadlocks,
            r.faults > 0,
            r.truncated,
        )
    }

    #[test]
    fn por_preserves_verdicts_and_prunes_disjoint_processes() {
        let p = parse(
            "var a, b, c : integer;
             cobegin begin a := 1; a := a + 1 end
                  || begin b := 1; b := b + 1 end
                  || begin c := 1; c := c + 1 end coend",
        )
        .unwrap();
        let full = explore(&p, &[], lim().without_por());
        let por = explore(&p, &[], lim());
        assert_eq!(verdict(&full), verdict(&por));
        assert!(por.states_pruned > 0);
        assert!(
            por.states < full.states,
            "por {} vs full {}",
            por.states,
            full.states
        );
        assert_eq!(full.states_pruned, 0);
    }

    #[test]
    fn por_preserves_deadlocks_and_witnesses() {
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        for inputs in [vec![(p.var("x"), 0)], vec![(p.var("x"), 1)]] {
            let full = explore(&p, &inputs, lim().without_por());
            let por = explore(&p, &inputs, lim());
            assert_eq!(verdict(&full), verdict(&por));
        }
    }

    #[test]
    fn persistent_only_mode_matches_full_verdicts_too() {
        let p = parse(
            "var a, b : integer; s : semaphore initially(1);
             cobegin begin wait(s); a := a + 1; signal(s) end
                  || begin wait(s); a := a + 2; signal(s) end
                  || begin b := 1; b := 2 end coend",
        )
        .unwrap();
        let full = explore(&p, &[], lim().without_por());
        let pers = explore(&p, &[], lim().persistent_only());
        let both = explore(&p, &[], lim());
        assert_eq!(verdict(&full), verdict(&pers));
        assert_eq!(verdict(&full), verdict(&both));
        assert!(both.states <= pers.states);
        assert!(pers.states <= full.states);
    }

    #[test]
    fn por_cannot_starve_a_fault_behind_a_live_loop() {
        // The ignoring-problem regression: without the cycle proviso
        // the lower-id live loop is the singleton at every state of its
        // cycle and the sibling's fault is never attempted (POR
        // reported faults: 0 against the full search's 3).
        let p =
            parse("var y, z : integer; cobegin while 1 = 1 do skip || y := z / 0 coend").unwrap();
        let full = explore(&p, &[], lim().without_por());
        assert!(full.faults > 0);
        assert!(!full.truncated);
        for (name, l) in [("default", lim()), ("persistent", lim().persistent_only())] {
            let r = explore(&p, &[], l);
            assert_eq!(verdict(&full), verdict(&r), "{name}");
            assert!(r.faults > 0, "{name}: POR starved the fault");
        }
    }

    #[test]
    fn memoization_collapses_commuting_steps() {
        // Two independent assignments: 2 interleavings, but the state
        // space after both is shared.
        let p = parse("var a, b : integer; cobegin a := 1 || b := 1 coend").unwrap();
        let r = explore(&p, &[], lim());
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.states <= 8, "states = {}", r.states);
    }
}
