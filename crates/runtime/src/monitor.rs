//! A classic run-time taint monitor, as an empirical comparator to CFM.
//!
//! The monitor shadows an execution with security labels: an assignment
//! relabels its target with the join of the right-hand side's labels and
//! the current *program-counter label* (the join of the guards that
//! dynamically dominate the step). Semaphore operations relabel the
//! semaphore the same way.
//!
//! This is the textbook *purely dynamic* monitor, and it has the textbook
//! blind spots the paper's compile-time mechanism exists to close:
//!
//! - **implicit flows through untaken branches**: `if h = 0 then y := 1`
//!   run with `h ≠ 0` never executes the assignment, so `y` keeps its
//!   label even though its *value* now reveals `h`;
//! - **synchronization flows**: after `wait(sem)` the mere fact of
//!   resuming carries information about whoever signalled, but the
//!   monitor's pc is unchanged (it only tracks guards).
//!
//! Experiment E10 (`tests/noninterference.rs`, bench `leak_matrix`)
//! quantifies both gaps against CFM and ground-truth interference.

use secflow_lang::{Expr, Stmt, VarId};
use secflow_lattice::Lattice;

use crate::machine::{Action, Fault, Machine, ProcId, Status};
use crate::sched::{RunOutcome, Scheduler};

/// A taint-tracking execution: a [`Machine`] plus shadow labels.
#[derive(Clone, Debug)]
pub struct TaintMonitor<'p, L> {
    machine: Machine<'p>,
    labels: Vec<L>,
    /// Per-process stack of (frame-depth threshold, guard label): the
    /// entry is live while the process's frame stack is deeper than the
    /// threshold.
    pc: Vec<Vec<(usize, L)>>,
    /// Per-process inherited pc (from the spawning `cobegin`).
    base: Vec<L>,
    low: L,
}

impl<'p, L: Lattice> TaintMonitor<'p, L> {
    /// Creates a monitor over `machine` with the given initial labels
    /// (indexed by [`VarId`]) and the lattice's `low` (for constants).
    pub fn new(machine: Machine<'p>, initial_labels: Vec<L>, low: L) -> Self {
        assert_eq!(
            initial_labels.len(),
            machine.program().symbols.len(),
            "one label per declared name"
        );
        let procs = 1; // machines start with a single root process
        TaintMonitor {
            machine,
            labels: initial_labels,
            pc: vec![Vec::new(); procs],
            base: vec![low.clone(); procs],
            low,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<'p> {
        &self.machine
    }

    /// Current shadow labels.
    pub fn labels(&self) -> &[L] {
        &self.labels
    }

    fn expr_label(&self, expr: &Expr) -> L {
        let mut acc = self.low.clone();
        expr.for_each_var(&mut |v| acc = acc.join(&self.labels[v.index()]));
        acc
    }

    fn depth(&self, pid: ProcId) -> usize {
        self.machine.procs[pid.0].frames.len()
    }

    fn prune_pc(&mut self, pid: ProcId) {
        let depth = self.depth(pid);
        self.pc[pid.0].retain(|(threshold, _)| depth > *threshold);
    }

    fn pc_label(&self, pid: ProcId) -> L {
        let mut acc = self.base[pid.0].clone();
        for (_, l) in &self.pc[pid.0] {
            acc = acc.join(l);
        }
        acc
    }

    /// Steps process `pid`, updating shadow labels.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not enabled (same contract as
    /// [`Machine::step`]).
    pub fn step(&mut self, pid: ProcId) -> Result<Action, Fault> {
        self.prune_pc(pid);
        let pc = self.pc_label(pid);
        let depth_before = self.depth(pid);

        // Peek the next frame to know what label updates the action needs.
        enum Planned<L> {
            Relabel(VarId, L),
            PushGuard(L),
            None,
        }
        let planned = {
            use crate::machine::Frame;
            match self.machine.procs[pid.0].frames.last() {
                Some(Frame::Stmt(Stmt::Assign { var, expr, .. })) => {
                    Planned::Relabel(*var, self.expr_label(expr).join(&pc))
                }
                Some(Frame::Stmt(Stmt::Wait { sem, .. }))
                | Some(Frame::Stmt(Stmt::Signal { sem, .. })) => {
                    Planned::Relabel(*sem, self.labels[sem.index()].join(&pc))
                }
                Some(Frame::Stmt(Stmt::If { cond, .. }))
                | Some(Frame::Stmt(Stmt::While { cond, .. })) => {
                    Planned::PushGuard(self.expr_label(cond).join(&pc))
                }
                Some(Frame::LoopHead(Stmt::While { cond, .. })) => {
                    Planned::PushGuard(self.expr_label(cond).join(&pc))
                }
                _ => Planned::None,
            }
        };

        let action = self.machine.step(pid)?;

        match (planned, &action) {
            (Planned::Relabel(var, label), _) => {
                self.labels[var.index()] = label;
            }
            (Planned::PushGuard(label), Action::Guard { .. }) => {
                // The guard's scope lasts while the process stays deeper
                // than the statement that introduced it.
                self.pc[pid.0].push((depth_before - 1, label));
            }
            (_, Action::Spawn { children }) => {
                for c in children {
                    debug_assert_eq!(c.0, self.pc.len());
                    self.pc.push(Vec::new());
                    self.base.push(pc.clone());
                }
            }
            _ => {}
        }
        Ok(action)
    }

    /// Runs to completion under `scheduler`, with a step budget.
    pub fn run(&mut self, scheduler: &mut impl Scheduler, fuel: usize) -> RunOutcome {
        for _ in 0..fuel {
            match self.machine.status() {
                Status::Terminated => return RunOutcome::Terminated,
                Status::Deadlocked => return RunOutcome::Deadlocked,
                Status::Running => {
                    let enabled = self.machine.enabled();
                    let pid = scheduler.pick(&enabled);
                    if let Err(f) = self.step(pid) {
                        return RunOutcome::Faulted(f);
                    }
                }
            }
        }
        match self.machine.status() {
            Status::Terminated => RunOutcome::Terminated,
            Status::Deadlocked => RunOutcome::Deadlocked,
            Status::Running => RunOutcome::FuelExhausted,
        }
    }

    /// Variables whose final label exceeds `allowed` (their declared
    /// clearance): the monitor's per-run verdict.
    pub fn polluted(&self, allowed: &[L]) -> Vec<VarId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(i, l)| !l.leq(&allowed[*i]))
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RoundRobin;
    use secflow_lang::parse;
    use secflow_lattice::TwoPoint;

    fn labels_for(p: &secflow_lang::Program, highs: &[&str]) -> Vec<TwoPoint> {
        p.symbols
            .iter()
            .map(|(_, info)| {
                if highs.contains(&info.name.as_str()) {
                    TwoPoint::High
                } else {
                    TwoPoint::Low
                }
            })
            .collect()
    }

    fn monitor_run<'p>(
        p: &'p secflow_lang::Program,
        highs: &[&str],
        inputs: &[(secflow_lang::VarId, i64)],
    ) -> TaintMonitor<'p, TwoPoint> {
        let m = Machine::with_inputs(p, inputs);
        let mut t = TaintMonitor::new(m, labels_for(p, highs), TwoPoint::Low);
        t.run(&mut RoundRobin::new(), 10_000);
        t
    }

    #[test]
    fn direct_flow_is_caught() {
        let p = parse("var h, l : integer; l := h").unwrap();
        let t = monitor_run(&p, &["h"], &[]);
        assert_eq!(t.labels()[p.var("l").index()], TwoPoint::High);
        assert_eq!(t.polluted(&labels_for(&p, &["h"])), vec![p.var("l")]);
    }

    #[test]
    fn taken_branch_implicit_flow_is_caught() {
        let p = parse("var h, l : integer; if h = 0 then l := 1").unwrap();
        // h = 0: the branch runs under a High pc, so l is relabelled.
        let t = monitor_run(&p, &["h"], &[]);
        assert_eq!(t.labels()[p.var("l").index()], TwoPoint::High);
    }

    #[test]
    fn untaken_branch_implicit_flow_is_missed() {
        // The classic blind spot: with h ≠ 0 the assignment never runs,
        // yet l's final value (0, not 1) still reveals h.
        let p = parse("var h, l : integer; if h = 0 then l := 1").unwrap();
        let t = monitor_run(&p, &["h"], &[(p.var("h"), 1)]);
        assert_eq!(t.labels()[p.var("l").index()], TwoPoint::Low);
        assert!(t.polluted(&labels_for(&p, &["h"])).is_empty());
    }

    #[test]
    fn guard_scope_ends_after_the_branch() {
        // The statement after the if must NOT inherit the guard's label.
        let p = parse("var h, a, b : integer; begin if h = 0 then a := 1 else a := 2; b := 1 end")
            .unwrap();
        let t = monitor_run(&p, &["h"], &[]);
        assert_eq!(t.labels()[p.var("a").index()], TwoPoint::High);
        assert_eq!(t.labels()[p.var("b").index()], TwoPoint::Low);
    }

    #[test]
    fn loop_guard_taints_body_assignments() {
        let p =
            parse("var h, l : integer; while h > 0 do begin l := l + 1; h := h - 1 end").unwrap();
        let t = monitor_run(&p, &["h"], &[(p.var("h"), 3)]);
        assert_eq!(t.labels()[p.var("l").index()], TwoPoint::High);
    }

    #[test]
    fn statement_after_loop_is_not_tainted_by_guard() {
        let p = parse("var h, l : integer; begin while h > 0 do h := h - 1; l := 1 end").unwrap();
        let t = monitor_run(&p, &["h"], &[(p.var("h"), 2)]);
        // Dynamic monitors miss the termination channel (CFM does not).
        assert_eq!(t.labels()[p.var("l").index()], TwoPoint::Low);
    }

    #[test]
    fn synchronization_flow_is_missed() {
        // Figure-3-style: the monitor sees no guard around `y := m`, so y
        // never picks up x's label even though the schedule encodes x.
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        let m = Machine::with_inputs(&p, &[(p.var("x"), 0)]);
        let mut t = TaintMonitor::new(m, labels_for(&p, &["x"]), TwoPoint::Low);
        let outcome = t.run(&mut RoundRobin::new(), 10_000);
        assert!(outcome.terminated());
        assert_eq!(t.labels()[p.var("y").index()], TwoPoint::Low, "blind spot");
        // The semaphore itself is tainted (signalled under a High guard)…
        assert_eq!(t.labels()[p.var("sem").index()], TwoPoint::High);
        // …but the flow into y is invisible to a purely dynamic pc.
    }

    #[test]
    fn cobegin_children_inherit_pc() {
        let p = parse(
            "var h, a, b : integer;
             if h = 0 then cobegin a := 1 || b := 2 coend",
        )
        .unwrap();
        let t = monitor_run(&p, &["h"], &[]);
        assert_eq!(t.labels()[p.var("a").index()], TwoPoint::High);
        assert_eq!(t.labels()[p.var("b").index()], TwoPoint::High);
    }

    #[test]
    #[should_panic(expected = "one label per declared name")]
    fn label_count_is_validated() {
        let p = parse("var x : integer; x := 1").unwrap();
        let _ = TaintMonitor::new(Machine::new(&p), Vec::<TwoPoint>::new(), TwoPoint::Low);
    }
}
