//! Runtime substrate: a small-step interpreter for the paper's parallel
//! language, schedulers, an exhaustive interleaving explorer, a dynamic
//! taint monitor, and a noninterference test harness.
//!
//! The paper's claims are about *all* executions of a program — a flow
//! exists if some interleaving realizes it, Figure 3 "cannot deadlock",
//! and certification is meant to imply the absence of observable
//! interference. This crate supplies the machinery to check those claims
//! empirically:
//!
//! - [`machine`] — the abstract machine (per-§2.0 atomicity: assignments,
//!   guard evaluations and semaphore operations are indivisible);
//! - [`sched`] — round-robin and seeded-random schedulers plus the run
//!   loop;
//! - [`trace`] — recorded executions and deterministic replay;
//! - [`explore`](mod@explore) — exhaustive bounded interleaving enumeration with state
//!   memoization (possibilistic outcome sets, deadlock detection);
//! - [`pexplore`](mod@pexplore) — the same search on N work-stealing
//!   workers with a sharded visited set and commutative result merging;
//! - [`monitor`] — a classic purely-dynamic taint monitor, kept as a
//!   comparator whose blind spots (untaken branches, synchronization)
//!   CFM closes;
//! - [`nitest`] — possibilistic noninterference checking with concrete
//!   witnesses.
//!
//! # Examples
//!
//! ```
//! use secflow_lang::parse;
//! use secflow_runtime::{Machine, RoundRobin, run};
//!
//! let p = parse("var x : integer; while x < 10 do x := x + 1").unwrap();
//! let mut m = Machine::new(&p);
//! let outcome = run(&mut m, &mut RoundRobin::new(), 1_000);
//! assert!(outcome.terminated());
//! assert_eq!(m.get(p.var("x")), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod footprint;
pub mod machine;
pub mod monitor;
pub mod nitest;
pub mod pexplore;
pub mod rng;
pub mod sched;
pub mod trace;

pub use explore::{can_deadlock, explore, explore_with, ExploreLimits, ExploreReport};
pub use footprint::{action_footprint, Footprint, FootprintTable, VarSet};
pub use machine::{eval, Action, Fault, Machine, ProcId, Status};
pub use monitor::TaintMonitor;
pub use nitest::{
    check_binary_secret, check_noninterference, observe, NiReport, Observation, Witness,
};
pub use pexplore::{
    fnv64_of, parallel_search, pexplore, pexplore_with, Expansion, Fnv64, SearchOutcome, ShardedSet,
};
pub use rng::SplitMix64;
pub use sched::{run, RandomSched, RoundRobin, RunOutcome, Scheduler};
pub use trace::{run_traced, Replay, Trace, TraceEvent};
