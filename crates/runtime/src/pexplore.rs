//! Work-stealing parallel interleaving exploration.
//!
//! [`explore`](mod@crate::explore) enumerates every schedule depth-first
//! on one thread; this module runs the same search on N workers and is
//! the engine behind `explore --threads N` and the server's `threads`
//! request field. The moving parts:
//!
//! - **Per-thread work deques.** Each worker owns a mutex-protected
//!   deque. The owner pushes and pops at the back (LIFO, preserving the
//!   cache locality of depth-first search); an idle worker steals half
//!   of a victim's deque from the *front* — the oldest entries, which
//!   sit closest to the root and therefore head the largest unexplored
//!   subtrees.
//! - **Sharded visited set.** State keys are deduplicated in a
//!   lock-striped [`ShardedSet`]: the state's FNV-1a hash picks one of
//!   [`VISITED_SHARDS`] shards, so concurrent insertions of different
//!   states almost never contend on the same lock.
//! - **Dedup on push.** A successor is claimed in the visited set
//!   *before* it is enqueued, so no state ever sits in two deques. The
//!   sequential explorer dedups at pop instead; both expand every
//!   reachable state exactly once, so whenever no limit truncates the
//!   search the two visit identical state sets.
//! - **Cooperative termination.** A shared `pending` counter tracks
//!   states that are enqueued or mid-expansion. It is incremented
//!   before a push and decremented only after the owning worker has
//!   pushed all successors, so it can only reach zero when no work
//!   exists *and* none can appear — at which point every worker exits.
//! - **Deterministic reduction.** Each worker accumulates a private
//!   partial result; the partials are merged with commutative,
//!   associative operations only (set union, addition, boolean or).
//!   Which worker expands which state varies run to run, but the merged
//!   report — outcome set, deadlock witnesses, counts — does not, so
//!   the answer is schedule-independent.
//!
//! The caller's `should_stop` hook is polled every
//! [`CANCEL_POLL_STATES`] expanded states *per worker* (the same
//! quantum as the sequential explorer), so deadline overruns are
//! bounded by one quantum per worker.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use secflow_lang::Program;

use crate::explore::{ExploreLimits, ExploreReport};
use crate::footprint::FootprintTable;
use crate::machine::{Machine, Status};

/// States to expand between `should_stop` polls, per worker. Matches
/// the sequential explorer's quantum so cancellation latency does not
/// regress when `--threads` is enabled.
pub const CANCEL_POLL_STATES: usize = 256;

/// Lock stripes in a [`ShardedSet`]. 64 stripes keep the probability of
/// two workers colliding on one lock low even at 8 threads, while the
/// per-set overhead (64 mutexes + empty tables) stays trivial.
pub const VISITED_SHARDS: usize = 64;

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit [`Hasher`]: the same function [`Machine::fingerprint`]
/// uses, exposed so callers can hash arbitrary `Hash` state (the
/// deadlock analyzer caches one FNV hash per abstract state and reuses
/// it for both set probes and shard selection).
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The FNV-1a 64-bit hash of any hashable value.
pub fn fnv64_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::default();
    value.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Sharded visited set
// ---------------------------------------------------------------------------

/// A lock-striped hash set: the caller supplies each key's hash, which
/// selects the stripe, so insertions of different states contend only
/// when their hashes collide modulo the stripe count.
pub struct ShardedSet<K> {
    shards: Vec<Mutex<HashSet<K>>>,
    mask: usize,
}

impl<K: Hash + Eq> ShardedSet<K> {
    /// A set striped over `shards` locks (rounded up to a power of
    /// two so stripe selection is a mask, not a division).
    pub fn new(shards: usize) -> ShardedSet<K> {
        let n = shards.max(1).next_power_of_two();
        ShardedSet {
            shards: (0..n).map(|_| Mutex::new(HashSet::new())).collect(),
            mask: n - 1,
        }
    }

    /// Inserts `key` into the stripe selected by `hash`. Returns `true`
    /// iff the key was not already present — the caller that gets
    /// `true` owns the (unique) right to expand that state.
    pub fn insert(&self, hash: u64, key: K) -> bool {
        self.shards[(hash as usize) & self.mask]
            .lock()
            .expect("visited-set stripe poisoned")
            .insert(key)
    }

    /// Total keys across all stripes (O(stripes); reporting only).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// `true` iff no stripe holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Generic work-stealing search engine
// ---------------------------------------------------------------------------

/// What one expansion asks the engine to do next.
pub enum Expansion {
    /// Keep searching.
    Continue,
    /// Stop the whole search now and mark it truncated (a caller-side
    /// resource cap, e.g. the deadlock analyzer's task-count overflow).
    Abort,
}

/// What [`parallel_search`] produced: one partial result per worker
/// (merge them with commutative operations) plus the engine's global
/// counters.
pub struct SearchOutcome<R> {
    /// Per-worker partial results, in worker order. The order carries
    /// no meaning; a correct caller merges commutatively.
    pub partials: Vec<R>,
    /// Distinct states expanded across all workers.
    pub states: usize,
    /// `true` if `max_states` or an [`Expansion::Abort`] stopped the
    /// search early (results are then a subset).
    pub truncated: bool,
    /// `true` if the `should_stop` hook stopped the search (implies
    /// `truncated`).
    pub cancelled: bool,
}

/// Explores the graph reachable from `roots` with `threads` workers.
///
/// `key_of` maps a state to `(fnv_hash, dedup_key)`; the hash selects
/// the visited-set stripe and the key decides uniqueness (use the hash
/// itself as the key only when collisions are acceptable, as the
/// fingerprint-based machine explorer already does). `expand` consumes
/// one claimed state, records whatever it learned in the worker's
/// partial result, and pushes successors; the engine claims each
/// successor in the visited set before enqueueing it, so `expand` runs
/// exactly once per distinct key.
pub fn parallel_search<T, K, R, KeyFn, ExpandFn>(
    roots: Vec<T>,
    threads: usize,
    max_states: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
    key_of: KeyFn,
    expand: ExpandFn,
) -> SearchOutcome<R>
where
    T: Send,
    K: Hash + Eq + Send,
    R: Default + Send,
    KeyFn: Fn(&T) -> (u64, K) + Sync,
    ExpandFn: Fn(T, &mut R, &mut Vec<T>) -> Expansion + Sync,
{
    let threads = threads.max(1);
    let visited: ShardedSet<K> = ShardedSet::new(VISITED_SHARDS);
    let deques: Vec<Mutex<VecDeque<T>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let pending = AtomicUsize::new(0);
    let expanded = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let truncated = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);

    {
        let mut q0 = deques[0].lock().expect("root deque poisoned");
        for root in roots {
            let (hash, key) = key_of(&root);
            if visited.insert(hash, key) {
                pending.fetch_add(1, Ordering::SeqCst);
                q0.push_back(root);
            }
        }
    }

    let mut partials: Vec<R> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|wid| {
                let (deques, visited) = (&deques, &visited);
                let (pending, expanded) = (&pending, &expanded);
                let (stop, truncated, cancelled) = (&stop, &truncated, &cancelled);
                let (key_of, expand) = (&key_of, &expand);
                scope.spawn(move || {
                    let mut partial = R::default();
                    let mut succs: Vec<T> = Vec::new();
                    let mut polls = 0usize;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Some(item) = pop_or_steal(deques, wid) else {
                            if pending.load(Ordering::SeqCst) == 0 {
                                break;
                            }
                            // Idle workers also watch the hook, so a
                            // deadline fires even while starved of work.
                            if should_stop() {
                                cancelled.store(true, Ordering::Relaxed);
                                truncated.store(true, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            thread::yield_now();
                            continue;
                        };
                        if polls.is_multiple_of(CANCEL_POLL_STATES) && should_stop() {
                            cancelled.store(true, Ordering::Relaxed);
                            truncated.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            pending.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                        polls += 1;
                        if expanded.fetch_add(1, Ordering::Relaxed) >= max_states {
                            truncated.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            pending.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                        succs.clear();
                        let control = expand(item, &mut partial, &mut succs);
                        if !succs.is_empty() {
                            let mut mine = deques[wid].lock().expect("own deque poisoned");
                            for succ in succs.drain(..) {
                                let (hash, key) = key_of(&succ);
                                if visited.insert(hash, key) {
                                    pending.fetch_add(1, Ordering::SeqCst);
                                    mine.push_back(succ);
                                }
                            }
                        }
                        pending.fetch_sub(1, Ordering::SeqCst);
                        if matches!(control, Expansion::Abort) {
                            truncated.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    partial
                })
            })
            .collect();
        for handle in handles {
            partials.push(handle.join().expect("search worker panicked"));
        }
    });

    SearchOutcome {
        partials,
        // `fetch_add` tickets past the cap were not expanded; clamp them
        // back out so `states` counts actual expansions.
        states: expanded.load(Ordering::SeqCst).min(max_states),
        truncated: truncated.load(Ordering::SeqCst),
        cancelled: cancelled.load(Ordering::SeqCst),
    }
}

/// Pops from the worker's own deque (back — LIFO), or steals half of
/// the first non-empty victim's deque from the front.
fn pop_or_steal<T>(deques: &[Mutex<VecDeque<T>>], wid: usize) -> Option<T> {
    if let Some(item) = deques[wid].lock().expect("own deque poisoned").pop_back() {
        return Some(item);
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (wid + offset) % n;
        let stolen: Vec<T> = {
            let mut v = deques[victim].lock().expect("victim deque poisoned");
            let take = v.len().div_ceil(2);
            v.drain(..take).collect()
        };
        if stolen.is_empty() {
            continue;
        }
        let mut mine = deques[wid].lock().expect("own deque poisoned");
        mine.extend(stolen);
        return mine.pop_back();
    }
    None
}

// ---------------------------------------------------------------------------
// Parallel machine exploration
// ---------------------------------------------------------------------------

/// Per-worker partial of an [`ExploreReport`]; merged commutatively.
#[derive(Default)]
struct Partial {
    outcomes: BTreeSet<Vec<i64>>,
    witnesses: BTreeSet<Vec<i64>>,
    deadlocks: usize,
    faults: usize,
    pruned: usize,
    truncated: bool,
}

/// [`explore`](crate::explore::explore) on `threads` workers. Honors
/// `limits.por` (persistent sets — the selection is a pure function of
/// the state, so the reduced graph is identical across thread counts)
/// but ignores `limits.sleep_sets`: sleep sets are meaningful only
/// under the sequential depth-first order. Produces the same report as
/// the sequential explorer *in persistent-only mode*
/// ([`ExploreLimits::persistent_only`]) whenever neither `max_states`
/// nor `max_depth` truncates the search (truncated subsets are
/// schedule-dependent in both explorers).
pub fn pexplore(
    program: &Program,
    inputs: &[(secflow_lang::VarId, i64)],
    limits: ExploreLimits,
    threads: usize,
) -> ExploreReport {
    pexplore_with(program, inputs, limits, threads, &|| false)
}

/// [`pexplore`] with a cooperative cancellation hook, polled every
/// [`CANCEL_POLL_STATES`] expanded states per worker.
pub fn pexplore_with(
    program: &Program,
    inputs: &[(secflow_lang::VarId, i64)],
    limits: ExploreLimits,
    threads: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> ExploreReport {
    let root = Machine::with_inputs(program, inputs);
    let table = limits.por.then(|| FootprintTable::new(program));
    let outcome = parallel_search(
        vec![(root, 0usize)],
        threads,
        limits.max_states,
        should_stop,
        |(m, _): &(Machine<'_>, usize)| {
            let h = m.fingerprint();
            (h, h)
        },
        |(m, depth), partial: &mut Partial, succs: &mut Vec<(Machine<'_>, usize)>| {
            match m.status() {
                Status::Terminated => {
                    partial.outcomes.insert(m.store().to_vec());
                    return Expansion::Continue;
                }
                Status::Deadlocked => {
                    partial.deadlocks += 1;
                    partial.witnesses.insert(m.store().to_vec());
                    return Expansion::Continue;
                }
                Status::Running => {}
            }
            if depth >= limits.max_depth {
                partial.truncated = true;
                return Expansion::Continue;
            }
            let enabled = m.enabled();
            let candidates = match table
                .as_ref()
                .and_then(|t| t.persistent_singleton(&m, &enabled))
            {
                Some(p) => {
                    partial.pruned += enabled.len() - 1;
                    let idx = enabled.iter().position(|&q| q == p).expect("enabled");
                    &enabled[idx..=idx]
                }
                None => &enabled[..],
            };
            for &pid in candidates {
                let mut next = m.clone();
                match next.step(pid) {
                    Ok(_) => succs.push((next, depth + 1)),
                    Err(_) => partial.faults += 1,
                }
            }
            Expansion::Continue
        },
    );
    let mut report = ExploreReport {
        outcomes: BTreeSet::new(),
        deadlock_witnesses: BTreeSet::new(),
        deadlocks: 0,
        faults: 0,
        states: outcome.states,
        states_pruned: 0,
        truncated: outcome.truncated,
        cancelled: outcome.cancelled,
    };
    for partial in outcome.partials {
        report.outcomes.extend(partial.outcomes);
        report.deadlock_witnesses.extend(partial.witnesses);
        report.deadlocks += partial.deadlocks;
        report.faults += partial.faults;
        report.states_pruned += partial.pruned;
        report.truncated |= partial.truncated;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use secflow_lang::parse;

    fn lim() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn fnv_hasher_matches_reference_vectors() {
        // FNV-1a 64 test vectors from the reference implementation.
        assert_eq!(Fnv64::default().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn sharded_set_dedups_across_stripes() {
        let set: ShardedSet<u64> = ShardedSet::new(VISITED_SHARDS);
        assert!(set.is_empty());
        for k in 0..1000u64 {
            assert!(set.insert(fnv64_of(&k), k));
        }
        for k in 0..1000u64 {
            assert!(!set.insert(fnv64_of(&k), k), "{k} inserted twice");
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn parallel_report_matches_sequential_on_races() {
        let p = parse(
            "var x, y : integer; s : semaphore;
             cobegin begin x := 5; signal(s) end || begin wait(s); y := x end
             || y := y + x coend",
        )
        .unwrap();
        // Sleep sets are sequential-only, so the engines are compared
        // in the persistent-only mode they share.
        let seq = explore(&p, &[], lim().persistent_only());
        for threads in [1, 2, 4] {
            let par = pexplore(&p, &[], lim().persistent_only(), threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_prunes_with_persistent_sets() {
        let p = parse(
            "var a, b : integer;
             cobegin begin a := 1; a := a + 1 end || begin b := 1; b := b + 1 end coend",
        )
        .unwrap();
        let full = pexplore(&p, &[], lim().without_por(), 2);
        let por = pexplore(&p, &[], lim(), 2);
        assert_eq!(por.outcomes, full.outcomes);
        assert!(por.states_pruned > 0);
        assert!(por.states < full.states, "{} / {}", por.states, full.states);
    }

    #[test]
    fn parallel_finds_the_paper_2_2_deadlock() {
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        let x = p.var("x");
        let seq = explore(&p, &[(x, 1)], lim().persistent_only());
        let par = pexplore(&p, &[(x, 1)], lim(), 4);
        assert!(par.can_deadlock());
        assert_eq!(par.deadlock_witnesses, seq.deadlock_witnesses);
        assert!(!par.deadlock_witnesses.is_empty());
    }

    #[test]
    fn cancellation_stops_within_one_quantum_per_worker() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let report = pexplore_with(&p, &[], lim(), 4, &|| true);
        assert!(report.cancelled);
        assert!(report.truncated);
        assert!(report.states <= 4 * CANCEL_POLL_STATES, "{}", report.states);
    }

    #[test]
    fn state_budget_truncates_the_parallel_search() {
        let p = parse("var x : integer; while true do x := x + 1").unwrap();
        let limits = ExploreLimits {
            max_states: 100,
            max_depth: 50,
            ..ExploreLimits::default()
        };
        let report = pexplore(&p, &[], limits, 2);
        assert!(report.truncated);
        assert!(report.states <= 100);
    }
}
