//! A tiny deterministic PRNG (SplitMix64) for reproducible schedules and
//! workloads.
//!
//! The experiments need randomness that is (a) seedable, (b) identical
//! across platforms and library versions, and (c) cheaply clonable so the
//! interleaving explorer and schedule sweeps can fork streams. SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) satisfies all three in a dozen
//! lines, so the workspace uses it instead of an external RNG crate whose
//! output could drift between releases.

/// A SplitMix64 pseudo-random number generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-32 for
        // the small ranges used here.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A uniformly distributed value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range");
        let span = (hi - lo) as u64 + 1;
        lo + (((u128::from(self.next_u64()) * u128::from(span)) >> 64) as i64)
    }

    /// A Bernoulli draw with probability `num/denom`.
    ///
    /// # Panics
    ///
    /// Panics when `denom == 0`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        assert!(denom > 0, "zero denominator");
        (self.next_u64() % u64::from(denom)) < u64::from(num)
    }

    /// Forks an independent stream (for parallel substructures).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 (from the SplitMix64 paper's
        // reference implementation).
        let mut r = SplitMix64::new(1_234_567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1_234_567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn index_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for n in 1..20 {
            for _ in 0..100 {
                assert!(r.index(n) < n);
            }
        }
    }

    #[test]
    fn index_covers_the_range() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i64_is_inclusive() {
        let mut r = SplitMix64::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_respects_extremes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..50 {
            assert!(!r.chance(0, 10));
            assert!(r.chance(10, 10));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = SplitMix64::new(11);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_panics() {
        SplitMix64::new(0).index(0);
    }
}
