//! Synthetic workloads: paper programs, parameterized families, and a
//! seeded random program generator.
//!
//! The paper's evaluation consists of worked examples rather than a
//! corpus, so this crate supplies the programs every experiment runs on:
//!
//! - [`fig3`] — Figure 3 (the synchronization covert channel), its
//!   sequential equivalent, the §4.3 bindings, and the k-bit looped
//!   generalization from the paper's closing remark;
//! - [`families`] — deterministic families (assignment chains, loop-
//!   heavy, semaphore ping-pong, branch trees, wide `cobegin`s) scaled by
//!   a size parameter for the §6 linear-time benchmark;
//! - [`gen`] — seeded random well-formed programs and random bindings for
//!   the property-based Theorem 1/2 experiments;
//! - [`classics`] — dining philosophers (naive and total-order-fixed),
//!   bounded-buffer producer/consumer, and readers/writers, for realistic
//!   deadlock structure and multi-level policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classics;
pub mod families;
pub mod fig3;
pub mod gen;

pub use classics::{dining_philosophers, producer_consumer, readers_writers};
pub use families::{branchy, indep, loop_heavy, sequential_chain, sync_heavy, wide_cobegin};
pub use fig3::{
    decode_transmitted, fig3_all_high_binding, fig3_baseline_gap_binding, fig3_high_x_binding,
    fig3_program, fig3_sequential_equivalent, kbit_channel, FIG3_SOURCE,
};
pub use gen::{generate, random_binding, GenConfig};
