//! Deterministic program families for the linear-time benchmark (E7).
//!
//! §6 claims both mechanisms run "in time proportional to the length of
//! the program, once the program has been parsed". The benchmark sweeps
//! these families over doubling sizes; each family stresses a different
//! Figure 2 row so a superlinear rule (e.g. a quadratic composition
//! check) would show up in at least one series.

use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::{Program, Stmt};

/// A straight-line chain: `x1 := x0 + 1; x2 := x1 + 1; …` over `n_vars`
/// variables, `length` assignments long (stresses assignment + the
/// composition prefix check).
pub fn sequential_chain(length: usize, n_vars: usize) -> Program {
    assert!(length >= 1 && n_vars >= 2);
    let mut b = ProgramBuilder::new();
    let vars: Vec<_> = (0..n_vars).map(|i| b.data(&format!("x{i}"))).collect();
    let stmts: Vec<Stmt> = (0..length)
        .map(|i| {
            let dst = vars[(i + 1) % n_vars];
            let src = vars[i % n_vars];
            s::assign(dst, e::add(e::var(src), e::konst(1)))
        })
        .collect();
    b.finish(s::seq(stmts))
}

/// A sequence of `loops` bounded countdown loops (stresses the iteration
/// rule's `flow ≤ mod` check and loop-carried global flows).
pub fn loop_heavy(loops: usize) -> Program {
    assert!(loops >= 1);
    let mut b = ProgramBuilder::new();
    let stmts: Vec<Stmt> = (0..loops)
        .map(|i| {
            let v = b.data(&format!("c{i}"));
            s::while_do(
                e::gt(e::var(v), e::konst(0)),
                s::assign(v, e::sub(e::var(v), e::konst(1))),
            )
        })
        .collect();
    b.finish(s::seq(stmts))
}

/// `rounds` of a two-process semaphore ping-pong inside one `cobegin`
/// (stresses wait/signal rows and cross-statement global flows).
pub fn sync_heavy(rounds: usize) -> Program {
    assert!(rounds >= 1);
    let mut b = ProgramBuilder::new();
    let a = b.sem("ping", 1);
    let bb = b.sem("pong", 0);
    let x = b.data("x");
    let y = b.data("y");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for _ in 0..rounds {
        left.push(s::wait(a));
        left.push(s::assign(x, e::add(e::var(x), e::konst(1))));
        left.push(s::signal(bb));
        right.push(s::wait(bb));
        right.push(s::assign(y, e::add(e::var(y), e::konst(1))));
        right.push(s::signal(a));
    }
    b.finish(s::cobegin([s::seq(left), s::seq(right)]))
}

/// A complete binary tree of `if` statements of the given `depth`
/// (stresses the alternation rule and `mod` meets).
pub fn branchy(depth: usize) -> Program {
    assert!((1..=20).contains(&depth));
    let mut b = ProgramBuilder::new();
    let guard = b.data("g");
    let leaf_var = b.data("out");
    fn tree(depth: usize, guard: secflow_lang::VarId, out: secflow_lang::VarId) -> Stmt {
        if depth == 0 {
            s::assign(out, e::add(e::var(out), e::konst(1)))
        } else {
            s::if_else(
                e::eq(e::rem(e::var(guard), e::konst(2)), e::konst(0)),
                tree(depth - 1, guard, out),
                tree(depth - 1, guard, out),
            )
        }
    }
    let body = tree(depth, guard, leaf_var);
    b.finish(body)
}

/// A wide `cobegin` of `width` independent single-assignment processes
/// (stresses the concurrency row).
pub fn wide_cobegin(width: usize) -> Program {
    assert!(width >= 2);
    let mut b = ProgramBuilder::new();
    let branches: Vec<Stmt> = (0..width)
        .map(|i| {
            let v = b.data(&format!("p{i}"));
            s::assign(v, e::konst(i as i64))
        })
        .collect();
    b.finish(s::cobegin(branches))
}

/// `n` fully independent processes, each incrementing its own private
/// counter `steps` times — disjoint footprints, no semaphores. The
/// worst case for naive exhaustive exploration (the interleaving count
/// is the multinomial `(n·steps)! / (steps!)^n`) and the best case for
/// partial-order reduction, which collapses it to a single
/// representative order per state.
pub fn indep(n: usize, steps: usize) -> Program {
    assert!(n >= 2 && steps >= 1);
    let mut b = ProgramBuilder::new();
    let branches: Vec<Stmt> = (0..n)
        .map(|i| {
            let v = b.data(&format!("v{i}"));
            s::seq(
                (0..steps)
                    .map(|_| s::assign(v, e::add(e::var(v), e::konst(1))))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    b.finish(s::cobegin(branches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_core::{certify, StaticBinding};
    use secflow_lang::metrics::measure;
    use secflow_lattice::TwoPointScheme;
    use secflow_runtime::{run, Machine, RoundRobin};

    #[test]
    fn chain_has_linear_size() {
        let p = sequential_chain(100, 8);
        let m = measure(&p);
        assert_eq!(m.assignments, 100);
        assert_eq!(m.statements, 101); // + the begin/end
    }

    #[test]
    fn chain_certifies_under_uniform_binding() {
        let p = sequential_chain(64, 4);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        assert!(certify(&p, &b).certified());
    }

    #[test]
    fn loop_heavy_runs_and_terminates() {
        let p = loop_heavy(5);
        let mut m = Machine::with_inputs(&p, &[(p.var("c0"), 3), (p.var("c3"), 2)]);
        assert!(run(&mut m, &mut RoundRobin::new(), 10_000).terminated());
        assert_eq!(m.get(p.var("c0")), 0);
        assert_eq!(m.get(p.var("c3")), 0);
    }

    #[test]
    fn sync_heavy_ping_pong_terminates_with_counts() {
        let p = sync_heavy(10);
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RoundRobin::new(), 100_000).terminated());
        assert_eq!(m.get(p.var("x")), 10);
        assert_eq!(m.get(p.var("y")), 10);
    }

    #[test]
    fn sync_heavy_certifies_uniform() {
        let p = sync_heavy(16);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        assert!(certify(&p, &b).certified());
    }

    #[test]
    fn branchy_is_a_full_tree() {
        let p = branchy(4);
        let m = measure(&p);
        assert_eq!(m.branches, 2usize.pow(4) - 1);
        assert_eq!(m.assignments, 2usize.pow(4));
        assert_eq!(m.max_depth, 5);
    }

    #[test]
    fn wide_cobegin_runs_all_processes() {
        let p = wide_cobegin(6);
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RoundRobin::new(), 1_000).terminated());
        for i in 0..6 {
            assert_eq!(m.get(p.var(&format!("p{i}"))), i as i64);
        }
    }

    #[test]
    fn indep_processes_run_disjointly() {
        let p = indep(4, 3);
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RoundRobin::new(), 10_000).terminated());
        for i in 0..4 {
            assert_eq!(m.get(p.var(&format!("v{i}"))), 3);
        }
    }

    #[test]
    fn indep_has_a_single_outcome_and_por_collapses_it() {
        use secflow_runtime::{explore, ExploreLimits};
        let p = indep(4, 3);
        let full = explore(&p, &[], ExploreLimits::default().without_por());
        let por = explore(&p, &[], ExploreLimits::default());
        assert!(!full.truncated && !por.truncated);
        assert_eq!(full.outcomes, por.outcomes);
        assert_eq!(full.outcomes.len(), 1);
        // (3·3+1 choose …) interleavings collapse to one order per level.
        assert!(
            por.states * 10 <= full.states,
            "por {} vs full {}",
            por.states,
            full.states
        );
    }

    #[test]
    fn families_scale_proportionally() {
        for (small, large) in [
            (
                measure(&sequential_chain(100, 4)).statements,
                measure(&sequential_chain(200, 4)).statements,
            ),
            (
                measure(&loop_heavy(50)).statements,
                measure(&loop_heavy(100)).statements,
            ),
            (
                measure(&sync_heavy(50)).statements,
                measure(&sync_heavy(100)).statements,
            ),
        ] {
            let ratio = large as f64 / small as f64;
            assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
        }
    }
}
