//! Figure 3 of the paper: information flow using synchronization.
//!
//! The program transmits `x` to `y` purely by *ordering* process
//! execution: the semaphore `modify` controls whether `m` is set to one
//! before or after the assignment `y := m`, and the semaphores
//! `modified`, `read` and `done` force the three processes to run one at
//! a time. §4.3 states the program cannot deadlock and restores every
//! semaphore to its initial value; both are verified by exhaustive
//! exploration in `tests/fig3.rs`.
//!
//! **Transcription note.** The conference scan of Figure 3 ends process
//! one with an extra `wait(done)` that is signalled by no one — as
//! printed, every execution would end deadlocked at that statement and
//! the semaphores would not return to their initial values, contradicting
//! both claims §4.3 makes about the figure. We therefore reconstruct the
//! program from the paper's own sequential equivalent
//! (`if x = 0 then begin m := 1; y := m end else begin y := m; m := 1
//! end`): the first conditional hand-off runs when `x = 0`, the second
//! when `x ≠ 0`, and there is no trailing `wait(done)`. The resulting
//! program is deadlock-free, restores all semaphores, and sets
//! `y = 1` iff `x = 0` — exactly the stated equivalent. All three
//! certification conditions derived in §4.3 are unchanged.

use secflow_core::StaticBinding;
use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::{parse, Program};
use secflow_lattice::{TwoPoint, TwoPointScheme};

/// The Figure 3 source text (reconstructed per the module docs).
pub const FIG3_SOURCE: &str = "\
var x, y, m : integer;
    modify, modified, read, done : semaphore initially(0);
cobegin
  begin
    m := 0;
    if x = 0 then begin signal(modify); wait(modified) end;
    signal(read); wait(done);
    if x # 0 then begin signal(modify); wait(modified) end
  end
||
  begin wait(modify); m := 1; signal(modified) end
||
  begin wait(read); y := m; signal(done) end
coend
";

/// Parses the Figure 3 program.
pub fn fig3_program() -> Program {
    parse(FIG3_SOURCE).expect("Figure 3 source is well-formed")
}

/// The paper's sequential equivalent of Figure 3 (§4.3).
pub fn fig3_sequential_equivalent() -> Program {
    parse(
        "var x, y, m : integer;
         begin
           m := 0;
           if x = 0
             then begin m := 1; y := m end
             else begin y := m; m := 1 end
         end",
    )
    .expect("well-formed")
}

/// The §4.3 binding of interest: `x` is High, everything else Low.
///
/// Under this binding CFM must reject the program (the three §4.3
/// conditions compose to `sbind(x) ≤ sbind(y)`, which fails).
pub fn fig3_high_x_binding(program: &Program) -> StaticBinding<TwoPoint> {
    StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(program.var("x"), TwoPoint::High)
}

/// A binding satisfying all §4.3 conditions: the whole chain
/// `x, modify, modified, read, done, m, y` is High.
pub fn fig3_all_high_binding(program: &Program) -> StaticBinding<TwoPoint> {
    StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High)
}

/// The binding that separates CFM from the Denning–Denning baseline on
/// Figure 3: `x` and every semaphore High, `m` and `y` Low.
///
/// The baseline's local checks all pass (the High guards only dominate
/// High semaphore operations, and every assignment is Low-to-Low), but
/// the §4.3 *global* conditions `sbind(modify) ≤ sbind(m)` and
/// `sbind(read/done) ≤ sbind(y)` fail — only CFM sees them. With `x`
/// High and the semaphores Low, even the baseline objects (the guard
/// check `sbind(x) ≤ mod(branch)` is a *local* flow), so this is the
/// sharpest demonstration of what the concurrency extension adds.
pub fn fig3_baseline_gap_binding(program: &Program) -> StaticBinding<TwoPoint> {
    let mut b = StaticBinding::uniform(&program.symbols, &TwoPointScheme);
    for name in ["x", "modify", "modified", "read", "done"] {
        b.set(program.var(name), TwoPoint::High);
    }
    b
}

/// The k-bit generalization (§4.3's closing remark): "by placing each
/// process in a loop and testing a different bit of x on each iteration
/// an arbitrary amount of information could be transmitted."
///
/// Process one walks the binary representation of `x` from the least
/// significant bit; process three accumulates each transmitted bit into
/// `y` (most recent bit in the lowest position of the running value), so
/// after `k` rounds `y` holds the low `k` bits of `x` in reversed order
/// — see [`decode_transmitted`].
pub fn kbit_channel(k: u32) -> Program {
    assert!((1..=16).contains(&k), "1 ≤ k ≤ 16 keeps runs tractable");
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    let y = b.data("y");
    let m = b.data("m");
    let p = b.data_init("p", 1);
    let i1 = b.data("i1");
    let i2 = b.data("i2");
    let i3 = b.data("i3");
    let modify = b.sem("modify", 0);
    let modified = b.sem("modified", 0);
    let read = b.sem("read", 0);
    let done = b.sem("done", 0);
    let k_const = i64::from(k);

    // bit = (x / p) % 2
    let bit = || e::rem(e::div(e::var(x), e::var(p)), e::konst(2));

    let sender = s::while_do(
        e::lt(e::var(i1), e::konst(k_const)),
        s::seq([
            s::assign(m, e::konst(0)),
            s::if_then(
                e::eq(bit(), e::konst(1)),
                s::seq([s::signal(modify), s::wait(modified)]),
            ),
            s::signal(read),
            s::wait(done),
            s::if_then(
                e::eq(bit(), e::konst(0)),
                s::seq([s::signal(modify), s::wait(modified)]),
            ),
            s::assign(p, e::mul(e::var(p), e::konst(2))),
            s::assign(i1, e::add(e::var(i1), e::konst(1))),
        ]),
    );
    let modifier = s::while_do(
        e::lt(e::var(i2), e::konst(k_const)),
        s::seq([
            s::wait(modify),
            s::assign(m, e::konst(1)),
            s::signal(modified),
            s::assign(i2, e::add(e::var(i2), e::konst(1))),
        ]),
    );
    let reader = s::while_do(
        e::lt(e::var(i3), e::konst(k_const)),
        s::seq([
            s::wait(read),
            s::assign(y, e::add(e::mul(e::var(y), e::konst(2)), e::var(m))),
            s::signal(done),
            s::assign(i3, e::add(e::var(i3), e::konst(1))),
        ]),
    );
    b.finish(s::cobegin([sender, modifier, reader]))
}

/// Recovers the transmitted low `k` bits of `x` from the final `y` of
/// [`kbit_channel`] (the channel delivers them LSB-first, so `y` holds
/// them bit-reversed).
pub fn decode_transmitted(y: i64, k: u32) -> i64 {
    let mut out = 0i64;
    for bit in 0..k {
        if y & (1 << bit) != 0 {
            out |= 1 << (k - 1 - bit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_core::{certify, denning_certify};
    use secflow_runtime::{run, Machine, RandomSched, RoundRobin};

    #[test]
    fn fig3_parses_with_seven_names() {
        let p = fig3_program();
        assert_eq!(p.symbols.len(), 7);
        assert_eq!(p.symbols.semaphores().len(), 4);
    }

    #[test]
    fn fig3_matches_its_sequential_equivalent() {
        let par = fig3_program();
        let seqv = fig3_sequential_equivalent();
        for x in [-3, -1, 0, 1, 2, 7] {
            let mut mp = Machine::with_inputs(&par, &[(par.var("x"), x)]);
            assert!(
                run(&mut mp, &mut RoundRobin::new(), 10_000).terminated(),
                "x={x}"
            );
            let mut ms = Machine::with_inputs(&seqv, &[(seqv.var("x"), x)]);
            assert!(run(&mut ms, &mut RoundRobin::new(), 10_000).terminated());
            assert_eq!(
                mp.get(par.var("y")),
                ms.get(seqv.var("y")),
                "y differs for x={x}"
            );
            assert_eq!(mp.get(par.var("m")), ms.get(seqv.var("m")));
        }
    }

    #[test]
    fn fig3_transmits_x_to_y_under_any_schedule() {
        let p = fig3_program();
        for seed in 0..20 {
            for (x, expect_y) in [(0, 1), (5, 0)] {
                let mut m = Machine::with_inputs(&p, &[(p.var("x"), x)]);
                assert!(
                    run(&mut m, &mut RandomSched::new(seed), 10_000).terminated(),
                    "seed {seed}, x={x}"
                );
                assert_eq!(m.get(p.var("y")), expect_y, "seed {seed}, x={x}");
            }
        }
    }

    #[test]
    fn fig3_restores_semaphores() {
        let p = fig3_program();
        for x in [0, 1] {
            let mut m = Machine::with_inputs(&p, &[(p.var("x"), x)]);
            run(&mut m, &mut RoundRobin::new(), 10_000);
            for sem in ["modify", "modified", "read", "done"] {
                assert_eq!(m.get(p.var(sem)), 0, "sem {sem}, x={x}");
            }
        }
    }

    #[test]
    fn cfm_and_baseline_both_reject_high_x_low_everything() {
        // With the semaphores Low, even the baseline objects: the High
        // guard locally dominates Low semaphore operations.
        let p = fig3_program();
        let sbind = fig3_high_x_binding(&p);
        assert!(!certify(&p, &sbind).certified());
        assert!(!denning_certify(&p, &sbind).certified());
    }

    #[test]
    fn baseline_gap_binding_separates_the_mechanisms() {
        // E3's headline: the baseline accepts, CFM rejects.
        let p = fig3_program();
        let sbind = fig3_baseline_gap_binding(&p);
        assert!(
            denning_certify(&p, &sbind).certified(),
            "the 1977 baseline is blind to the synchronization flow"
        );
        let r = certify(&p, &sbind);
        assert!(!r.certified(), "CFM catches it");
        // The violations are exactly the global §4.3 conditions.
        use secflow_core::CheckRule;
        assert!(r.violations.iter().all(|v| v.rule == CheckRule::SeqGlobal));
    }

    #[test]
    fn cfm_certifies_fig3_when_the_chain_is_high() {
        let p = fig3_program();
        assert!(certify(&p, &fig3_all_high_binding(&p)).certified());
    }

    #[test]
    fn kbit_channel_transmits_every_value() {
        let k = 4;
        let p = kbit_channel(k);
        for x in 0..(1 << k) {
            let mut m = Machine::with_inputs(&p, &[(p.var("x"), x)]);
            assert!(
                run(&mut m, &mut RoundRobin::new(), 100_000).terminated(),
                "x={x}"
            );
            let y = m.get(p.var("y"));
            assert_eq!(decode_transmitted(y, k), x, "x={x}, y={y}");
        }
    }

    #[test]
    fn kbit_channel_is_schedule_independent() {
        let k = 3;
        let p = kbit_channel(k);
        for seed in 0..10 {
            let mut m = Machine::with_inputs(&p, &[(p.var("x"), 5)]);
            assert!(run(&mut m, &mut RandomSched::new(seed), 100_000).terminated());
            assert_eq!(decode_transmitted(m.get(p.var("y")), k), 5);
        }
    }

    #[test]
    fn kbit_channel_is_rejected_by_cfm() {
        let p = kbit_channel(4);
        let sbind =
            StaticBinding::uniform(&p.symbols, &TwoPointScheme).with(p.var("x"), TwoPoint::High);
        assert!(!certify(&p, &sbind).certified());
    }

    #[test]
    fn decode_reverses_bits() {
        assert_eq!(decode_transmitted(0b001, 3), 0b100);
        assert_eq!(decode_transmitted(0b110, 3), 0b011);
        assert_eq!(decode_transmitted(0b1111, 4), 0b1111);
    }

    #[test]
    #[should_panic(expected = "tractable")]
    fn kbit_bounds_are_enforced() {
        let _ = kbit_channel(64);
    }
}
