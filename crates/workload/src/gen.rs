//! Seeded random generation of well-formed programs and bindings.
//!
//! The property-based experiments (Theorems 1/2, CFM-vs-logic agreement,
//! printer round-trips) need a corpus of structurally diverse programs.
//! The paper provides only three worked examples, so this generator
//! synthesizes the corpus: every program is well-formed by construction
//! (semaphores appear only in `wait`/`signal`, `cobegin` has ≥ 2
//! branches) and generation is a pure function of the seed.

use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::{Expr, Program, Stmt, VarId};
use secflow_lattice::Scheme;
use secflow_runtime::SplitMix64;

use secflow_core::StaticBinding;

/// Shape parameters for random programs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Approximate number of statement nodes to generate.
    pub target_stmts: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Number of data variables.
    pub n_vars: usize,
    /// Number of semaphores (0 disables `wait`/`signal` and `cobegin`
    /// still appears).
    pub n_sems: usize,
    /// Generate only loops of the bounded `while v > 0 do … v := v - 1`
    /// shape, so the program terminates under every schedule.
    pub bounded_loops: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_stmts: 40,
            max_depth: 5,
            n_vars: 5,
            n_sems: 2,
            bounded_loops: true,
        }
    }
}

/// Generates a random well-formed program from a seed.
pub fn generate(cfg: &GenConfig, seed: u64) -> Program {
    assert!(cfg.n_vars >= 2, "need at least two data variables");
    let mut rng = SplitMix64::new(seed);
    let mut b = ProgramBuilder::new();
    let vars: Vec<VarId> = (0..cfg.n_vars).map(|i| b.data(&format!("v{i}"))).collect();
    let sems: Vec<VarId> = (0..cfg.n_sems)
        .map(|i| b.sem(&format!("s{i}"), i64::from(rng.chance(1, 2))))
        .collect();
    let mut g = Gen {
        rng,
        vars,
        sems,
        cfg: *cfg,
    };
    // Accumulate top-level chunks until the target size is reached: a
    // single recursive draw has high variance, which would make the
    // benchmark size axis unreliable.
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut total = 0usize;
    while total < cfg.target_stmts {
        let chunk = g.stmt(16.min(cfg.target_stmts), 1);
        total += chunk.statement_count();
        stmts.push(chunk);
    }
    let body = if stmts.len() == 1 {
        stmts.pop().expect("non-empty")
    } else {
        s::seq(stmts)
    };
    b.finish(body)
}

/// Draws a random static binding over `scheme`'s carrier.
pub fn random_binding<S: Scheme>(program: &Program, scheme: &S, seed: u64) -> StaticBinding<S::Elem>
where
    S::Elem: secflow_lattice::Lattice,
{
    let mut rng = SplitMix64::new(seed ^ 0x5EED_B1AD_0000_0001);
    let elems = scheme.elements();
    let mut binding = StaticBinding::uniform(&program.symbols, scheme);
    for (id, _) in program.symbols.iter() {
        binding.set(id, elems[rng.index(elems.len())].clone());
    }
    binding
}

struct Gen {
    rng: SplitMix64,
    vars: Vec<VarId>,
    sems: Vec<VarId>,
    cfg: GenConfig,
}

impl Gen {
    fn var(&mut self) -> VarId {
        self.vars[self.rng.index(self.vars.len())]
    }

    fn sem(&mut self) -> Option<VarId> {
        if self.sems.is_empty() {
            None
        } else {
            Some(self.sems[self.rng.index(self.sems.len())])
        }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(2, 5) {
            if self.rng.chance(2, 5) {
                e::konst(self.rng.range_i64(-4, 4))
            } else {
                e::var(self.var())
            }
        } else {
            let l = self.expr(depth - 1);
            let r = self.expr(depth - 1);
            match self.rng.index(6) {
                0 => e::add(l, r),
                1 => e::sub(l, r),
                2 => e::mul(l, r),
                3 => e::eq(l, r),
                4 => e::lt(l, r),
                _ => e::ne(l, r),
            }
        }
    }

    /// Generates a statement of roughly `budget` nodes at `depth`.
    fn stmt(&mut self, budget: usize, depth: usize) -> Stmt {
        if budget <= 1 || depth >= self.cfg.max_depth {
            return self.atomic();
        }
        match self.rng.index(10) {
            // Composition gets the largest share.
            0..=3 => {
                let n = 2 + self.rng.index(3.min(budget - 1).max(1));
                let share = (budget - 1) / n;
                s::seq((0..n).map(|_| self.stmt(share.max(1), depth + 1)))
            }
            4 => {
                let cond = self.expr(2);
                let half = (budget - 1) / 2;
                if self.rng.chance(1, 3) {
                    s::if_then(cond, self.stmt(half.max(1), depth + 1))
                } else {
                    s::if_else(
                        cond,
                        self.stmt(half.max(1), depth + 1),
                        self.stmt(half.max(1), depth + 1),
                    )
                }
            }
            5 => {
                if self.cfg.bounded_loops {
                    // while v > 0 do begin …; v := v - 1 end
                    let v = self.var();
                    let inner = self.stmt((budget.saturating_sub(3)).max(1), depth + 2);
                    s::while_do(
                        e::gt(e::var(v), e::konst(0)),
                        s::seq([inner, s::assign(v, e::sub(e::var(v), e::konst(1)))]),
                    )
                } else {
                    s::while_do(self.expr(2), self.stmt(budget - 1, depth + 1))
                }
            }
            6 => {
                let n = 2 + self.rng.index(2);
                let share = (budget - 1) / n;
                s::cobegin((0..n).map(|_| self.stmt(share.max(1), depth + 1)))
            }
            7 => match self.sem() {
                // Paired signal-then-wait within one process never blocks
                // forever by itself; lone waits are also generated to
                // exercise deadlock handling.
                Some(sem) if self.rng.chance(3, 4) => s::seq([s::signal(sem), s::wait(sem)]),
                Some(sem) => s::wait(sem),
                None => self.atomic(),
            },
            8 => match self.sem() {
                Some(sem) => s::signal(sem),
                None => self.atomic(),
            },
            _ => self.atomic(),
        }
    }

    fn atomic(&mut self) -> Stmt {
        if self.rng.chance(1, 10) {
            s::skip()
        } else {
            let v = self.var();
            let rhs = self.expr(2);
            s::assign(v, rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::metrics::measure;
    use secflow_lang::{parse, print_program};
    use secflow_lattice::{LinearScheme, TwoPointScheme};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(print_program(&a), print_program(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        assert_ne!(print_program(&a), print_program(&b));
    }

    #[test]
    fn generated_programs_reparse() {
        let cfg = GenConfig {
            target_stmts: 80,
            ..GenConfig::default()
        };
        for seed in 0..25 {
            let p = generate(&cfg, seed);
            let text = print_program(&p);
            let q = parse(&text).unwrap_or_else(|e| panic!("seed {seed}:\n{text}\n{e}"));
            assert_eq!(p.statement_count(), q.statement_count(), "seed {seed}");
        }
    }

    #[test]
    fn size_tracks_target() {
        for target in [20, 100, 400] {
            let cfg = GenConfig {
                target_stmts: target,
                max_depth: 8,
                ..GenConfig::default()
            };
            let mut sizes = Vec::new();
            for seed in 0..10 {
                sizes.push(measure(&generate(&cfg, seed)).statements);
            }
            let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
            assert!(
                mean > target as f64 * 0.2 && mean < target as f64 * 4.0,
                "target {target}: mean {mean}"
            );
        }
    }

    #[test]
    fn no_sems_config_generates_sequential_like_programs() {
        let cfg = GenConfig {
            n_sems: 0,
            ..GenConfig::default()
        };
        for seed in 0..10 {
            let p = generate(&cfg, seed);
            let m = measure(&p);
            assert_eq!(m.waits + m.signals, 0, "seed {seed}");
        }
    }

    #[test]
    fn random_bindings_cover_the_carrier() {
        let p = generate(&GenConfig::default(), 3);
        let scheme = LinearScheme::new(4).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let b = random_binding(&p, &scheme, seed);
            for (_, c) in b.iter() {
                seen.insert(c.0);
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn random_binding_deterministic() {
        let p = generate(&GenConfig::default(), 9);
        let a = random_binding(&p, &TwoPointScheme, 5);
        let b = random_binding(&p, &TwoPointScheme, 5);
        assert_eq!(a, b);
    }
}
