//! Classic synchronization workloads, expressed in the paper's language.
//!
//! These are the programs a 1979 reader would reach for to exercise a
//! semaphore-based concurrency analysis: dining philosophers (in the
//! deadlocking naive form and the total-order fix), a bounded-buffer
//! producer/consumer, and first-readers-preference readers/writers. They
//! give the explorer realistic deadlock structure and give CFM realistic
//! multi-level policies (e.g. "the shared cell is Secret, so every reader
//! buffer must be Secret").

use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::{Program, Stmt};

/// Dining philosophers.
///
/// `n` philosophers (2 ≤ n ≤ 6 keeps exploration tractable), each eating
/// `meals` times. With `ordered = false` every philosopher takes the
/// left fork first — the classic circular-wait deadlock is reachable.
/// With `ordered = true` the last philosopher takes forks in the
/// opposite order, breaking the cycle (the standard total-order fix);
/// the program is then deadlock-free, which `tests/deadlock.rs` verifies
/// exhaustively.
pub fn dining_philosophers(n: usize, meals: i64, ordered: bool) -> Program {
    assert!((2..=6).contains(&n), "2 ≤ n ≤ 6");
    assert!(meals >= 1);
    let mut b = ProgramBuilder::new();
    let forks: Vec<_> = (0..n).map(|i| b.sem(&format!("fork{i}"), 1)).collect();
    let eaten: Vec<_> = (0..n).map(|i| b.data(&format!("eaten{i}"))).collect();
    let rounds: Vec<_> = (0..n).map(|i| b.data(&format!("round{i}"))).collect();

    let philosophers: Vec<Stmt> = (0..n)
        .map(|i| {
            let left = forks[i];
            let right = forks[(i + 1) % n];
            // The total-order fix: the last philosopher reverses.
            let (first, second) = if ordered && i == n - 1 {
                (right, left)
            } else {
                (left, right)
            };
            s::while_do(
                e::lt(e::var(rounds[i]), e::konst(meals)),
                s::seq([
                    s::wait(first),
                    s::wait(second),
                    s::assign(eaten[i], e::add(e::var(eaten[i]), e::konst(1))),
                    s::signal(second),
                    s::signal(first),
                    s::assign(rounds[i], e::add(e::var(rounds[i]), e::konst(1))),
                ]),
            )
        })
        .collect();
    b.finish(s::cobegin(philosophers))
}

/// Bounded-buffer producer/consumer.
///
/// One producer hands `items` tokens to one consumer through a buffer of
/// `capacity` slots, guarded by the textbook `empty`/`full`/`mutex`
/// semaphore triple. `produced`/`consumed` count hand-offs; `level`
/// tracks the buffer fill and never exceeds `capacity` (asserted by
/// exhaustive exploration in the workload tests).
pub fn producer_consumer(items: i64, capacity: i64) -> Program {
    assert!(items >= 1 && capacity >= 1);
    let mut b = ProgramBuilder::new();
    let empty = b.sem("empty", capacity);
    let full = b.sem("full", 0);
    let mutex = b.sem("mutex", 1);
    let level = b.data("level");
    let produced = b.data("produced");
    let consumed = b.data("consumed");

    let producer = s::while_do(
        e::lt(e::var(produced), e::konst(items)),
        s::seq([
            s::wait(empty),
            s::wait(mutex),
            s::assign(level, e::add(e::var(level), e::konst(1))),
            s::assign(produced, e::add(e::var(produced), e::konst(1))),
            s::signal(mutex),
            s::signal(full),
        ]),
    );
    let consumer = s::while_do(
        e::lt(e::var(consumed), e::konst(items)),
        s::seq([
            s::wait(full),
            s::wait(mutex),
            s::assign(level, e::sub(e::var(level), e::konst(1))),
            s::assign(consumed, e::add(e::var(consumed), e::konst(1))),
            s::signal(mutex),
            s::signal(empty),
        ]),
    );
    b.finish(s::cobegin([producer, consumer]))
}

/// First-readers-preference readers/writers.
///
/// `readers` reader processes copy the shared cell into their own
/// buffer; one writer increments it `writes` times under `room_empty`.
/// The information-flow story: `shared` classifies everything — under a
/// binding with `shared` High, CFM forces every `rbuf_i` High (and the
/// workload tests confirm the inference solver finds exactly that).
pub fn readers_writers(readers: usize, writes: i64) -> Program {
    assert!((1..=4).contains(&readers));
    assert!(writes >= 1);
    let mut b = ProgramBuilder::new();
    let mutex = b.sem("mutex", 1);
    let room_empty = b.sem("room_empty", 1);
    let rc = b.data("rc");
    let shared = b.data("shared");
    let written = b.data("written");
    let rbufs: Vec<_> = (0..readers).map(|i| b.data(&format!("rbuf{i}"))).collect();

    let mut procs: Vec<Stmt> = rbufs
        .iter()
        .map(|&rbuf| {
            s::seq([
                s::wait(mutex),
                s::assign(rc, e::add(e::var(rc), e::konst(1))),
                s::if_then(e::eq(e::var(rc), e::konst(1)), s::wait(room_empty)),
                s::signal(mutex),
                s::assign(rbuf, e::var(shared)),
                s::wait(mutex),
                s::assign(rc, e::sub(e::var(rc), e::konst(1))),
                s::if_then(e::eq(e::var(rc), e::konst(0)), s::signal(room_empty)),
                s::signal(mutex),
            ])
        })
        .collect();
    procs.push(s::while_do(
        e::lt(e::var(written), e::konst(writes)),
        s::seq([
            s::wait(room_empty),
            s::assign(shared, e::add(e::var(shared), e::konst(1))),
            s::assign(written, e::add(e::var(written), e::konst(1))),
            s::signal(room_empty),
        ]),
    ));
    b.finish(s::cobegin(procs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_core::{certify, infer_binding, StaticBinding};
    use secflow_lattice::{TwoPoint, TwoPointScheme};
    use secflow_runtime::{explore, run, ExploreLimits, Machine, RandomSched, RoundRobin};

    fn lim() -> ExploreLimits {
        ExploreLimits {
            max_states: 300_000,
            max_depth: 20_000,
            ..ExploreLimits::default()
        }
    }

    #[test]
    fn naive_philosophers_can_deadlock() {
        let p = dining_philosophers(3, 1, false);
        let r = explore(&p, &[], lim());
        assert!(r.deadlocks > 0, "circular wait must be reachable");
        assert!(!r.outcomes.is_empty(), "…and so must success");
        assert!(!r.truncated);
    }

    #[test]
    fn ordered_philosophers_never_deadlock() {
        let p = dining_philosophers(3, 1, true);
        let r = explore(&p, &[], lim());
        assert_eq!(r.deadlocks, 0, "the total-order fix works");
        assert!(!r.truncated);
        // Everyone ate exactly once in every outcome.
        for store in &r.outcomes {
            for i in 0..3 {
                assert_eq!(store[p.var(&format!("eaten{i}")).index()], 1);
            }
        }
    }

    #[test]
    fn philosophers_run_to_completion_under_round_robin() {
        let p = dining_philosophers(5, 3, true);
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RoundRobin::new(), 1_000_000).terminated());
        for i in 0..5 {
            assert_eq!(m.get(p.var(&format!("eaten{i}"))), 3);
        }
    }

    #[test]
    fn producer_consumer_hands_every_item_over() {
        let p = producer_consumer(4, 2);
        let r = explore(&p, &[], lim());
        assert_eq!(r.deadlocks, 0);
        assert!(!r.truncated);
        for store in &r.outcomes {
            assert_eq!(store[p.var("produced").index()], 4);
            assert_eq!(store[p.var("consumed").index()], 4);
            assert_eq!(store[p.var("level").index()], 0);
        }
    }

    #[test]
    fn buffer_level_respects_capacity_on_sampled_schedules() {
        let p = producer_consumer(6, 2);
        let level = p.var("level");
        for seed in 0..20 {
            let mut m = Machine::new(&p);
            let mut sched = RandomSched::new(seed);
            let mut hwm = 0i64;
            while m.status() == secflow_runtime::Status::Running {
                let enabled = m.enabled();
                use secflow_runtime::Scheduler;
                let pid = sched.pick(&enabled);
                m.step(pid).unwrap();
                hwm = hwm.max(m.get(level));
            }
            assert!(hwm <= 2, "seed {seed}: level reached {hwm}");
            assert_eq!(m.status(), secflow_runtime::Status::Terminated);
        }
    }

    #[test]
    fn producer_consumer_certifies_uniform() {
        let p = producer_consumer(4, 2);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        assert!(certify(&p, &b).certified());
    }

    #[test]
    fn readers_writers_terminates_and_reads_consistently() {
        let p = readers_writers(2, 2);
        let mut m = Machine::new(&p);
        assert!(run(&mut m, &mut RoundRobin::new(), 1_000_000).terminated());
        assert_eq!(m.get(p.var("written")), 2);
        for i in 0..2 {
            let v = m.get(p.var(&format!("rbuf{i}")));
            assert!((0..=2).contains(&v), "rbuf{i} = {v}");
        }
        assert_eq!(m.get(p.var("rc")), 0);
    }

    #[test]
    fn readers_writers_secret_cell_forces_secret_buffers() {
        let p = readers_writers(2, 1);
        let least =
            infer_binding(&p, &TwoPointScheme, [(p.var("shared"), TwoPoint::High)]).unwrap();
        for i in 0..2 {
            assert_eq!(
                *least.class(p.var(&format!("rbuf{i}"))),
                TwoPoint::High,
                "reader buffer {i} must rise to the cell's level"
            );
        }
        assert!(certify(&p, &least).certified());
    }

    #[test]
    fn readers_writers_rejects_low_reader_buffers() {
        let p = readers_writers(1, 1);
        let b = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
            .with(p.var("shared"), TwoPoint::High);
        assert!(!certify(&p, &b).certified());
    }

    #[test]
    fn philosophers_parameter_validation() {
        let p = dining_philosophers(2, 1, false);
        assert_eq!(p.symbols.semaphores().len(), 2);
        let p = producer_consumer(1, 1);
        assert_eq!(p.symbols.semaphores().len(), 3);
    }
}
