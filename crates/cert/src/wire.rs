//! The canonical certificate wire format and its standalone validator.
//!
//! A certificate is a single-line canonical JSON object with exactly
//! these fields, in exactly this order:
//!
//! ```json
//! {"format":"secflow-cert",
//!  "version":1,
//!  "lattice":"two",
//!  "program_sha256":"<hex>",
//!  "proof":{"rule":"seq","pre":{...},"post":{...},"kids":[...]},
//!  "digest":"<hex>"}
//! ```
//!
//! - `lattice` names the scheme the class literals are drawn from:
//!   `"two"` (low/high) or `"linear:N"` (levels `0..N` written in
//!   decimal). Literals use the canonical spellings only.
//! - `program_sha256` fingerprints the exact source text the proof is
//!   about; a validator checks it before anything structural.
//! - `proof` mirrors [`Proof`]: each node carries its rule name (the
//!   same names as the textual `.sfp` format: `skip`, `assign`,
//!   `signal`, `wait`, `if`, `while`, `seq`, `cobegin`, `conseq`), its
//!   `pre`/`post` assertions, and its premises in `kids`. Assertions
//!   are `{"state":[[lhs,rhs],...],"local":E,"global":E}`; a class
//!   expression `E` is `{"atoms":["v:<name>"|"local"|"global",...],
//!   "lit":"<class>"|null}` (`null` = the bottom element ν).
//!   Substitution data is deliberately *not* carried: the checker
//!   re-derives every substitution from the statement itself, so there
//!   is nothing in a certificate a validator has to take on faith.
//! - `digest` is the SHA-256 of the serialization of the other five
//!   fields (the object with `digest` removed), making certificates
//!   content-addressable and cheap to reject after transport damage.
//!
//! Canonicality: field order is fixed, whitespace is absent, strings
//! use the [`Json`] writer's escaping, and class-expression atoms are
//! already sorted by the [`ClassExpr`] representation — so equal proofs
//! serialize to equal bytes and equal digests.
//!
//! Validation never runs Theorem 1 search. It re-checks, in order:
//! the envelope (stages `json`/`format`/`version`), the digest
//! (`digest`), the program fingerprint (`program`), the source parse
//! (`source`), the lattice descriptor (`lattice`), the proof decode
//! (`proof`), and finally the full Figure-1 derivation via
//! [`check_proof`] (`check`). Every failure is a structured
//! [`CertError`] naming its stage — adversarial input can not panic.

use std::fmt;

use secflow_lang::{parse, Program, SymbolTable};
use secflow_lattice::{Extended, Lattice, Linear, LinearScheme, TwoPoint};
use secflow_logic::{check_proof, Assertion, Atom, Bound, ClassExpr, Proof, Rule};

use crate::digest::sha256_hex;
use crate::json::Json;

/// The `format` field of every certificate.
pub const CERT_FORMAT: &str = "secflow-cert";
/// The schema version this crate emits and accepts.
pub const CERT_VERSION: u64 = 1;

/// The fixed top-level field order (digest last, over the rest).
const FIELDS: [&str; 6] = [
    "format",
    "version",
    "lattice",
    "program_sha256",
    "proof",
    "digest",
];

/// A freshly emitted certificate.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The canonical single-line JSON text (the wire bytes).
    pub text: String,
    /// The content digest (also embedded in `text`).
    pub digest: String,
    /// Proof tree size in nodes.
    pub nodes: usize,
}

/// What a successful validation learned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertSummary {
    /// Proof tree size in nodes.
    pub nodes: usize,
    /// The lattice descriptor the certificate named.
    pub lattice: String,
    /// The verified content digest.
    pub digest: String,
}

/// A structured validation failure: which stage rejected, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertError {
    /// The rejecting stage: `json`, `format`, `version`, `digest`,
    /// `program`, `source`, `lattice`, `proof` or `check`.
    pub stage: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl CertError {
    fn new(stage: &'static str, message: impl Into<String>) -> Self {
        CertError {
            stage,
            message: message.into(),
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate rejected at stage `{}`: {}",
            self.stage, self.message
        )
    }
}

impl std::error::Error for CertError {}

/// The SHA-256 fingerprint of a program source text (lowercase hex).
pub fn program_fingerprint(source: &str) -> String {
    sha256_hex(source.as_bytes())
}

/// Canonical spelling of a two-point class (`low` / `high`).
pub fn show_two_class(l: &TwoPoint) -> String {
    match l {
        TwoPoint::Low => "low".to_string(),
        TwoPoint::High => "high".to_string(),
    }
}

/// Canonical spelling of a linear class (the bare decimal level).
pub fn show_linear_class(l: &Linear) -> String {
    l.0.to_string()
}

fn parse_two_lit(s: &str) -> Option<TwoPoint> {
    match s {
        "low" => Some(TwoPoint::Low),
        "high" => Some(TwoPoint::High),
        _ => None,
    }
}

fn parse_linear_lit(s: &str, levels: u32) -> Option<Linear> {
    if s.is_empty() || s.len() > 9 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    // Canonical decimal only: no leading zeros (other than "0" itself).
    if s.len() > 1 && s.starts_with('0') {
        return None;
    }
    let k: u32 = s.parse().ok()?;
    (k < levels).then_some(Linear(k))
}

// ---- emission -------------------------------------------------------------

/// Serializes a proof into a canonical certificate for `source`.
///
/// `lattice` is the descriptor validators will dispatch on (`"two"` or
/// `"linear:N"`); `show_lit` must render class literals in the
/// canonical spelling for that descriptor ([`show_two_class`] /
/// [`show_linear_class`]).
pub fn emit_certificate<L: Lattice>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
    lattice: &str,
    source: &str,
    show_lit: &dyn Fn(&L) -> String,
) -> Certificate {
    let body = Json::Obj(vec![
        ("format".to_string(), Json::Str(CERT_FORMAT.to_string())),
        ("version".to_string(), Json::Num(CERT_VERSION as f64)),
        ("lattice".to_string(), Json::Str(lattice.to_string())),
        (
            "program_sha256".to_string(),
            Json::Str(program_fingerprint(source)),
        ),
        ("proof".to_string(), encode_proof(proof, symbols, show_lit)),
    ]);
    let digest = sha256_hex(body.to_string().as_bytes());
    let Json::Obj(mut fields) = body else {
        unreachable!("body is an object")
    };
    fields.push(("digest".to_string(), Json::Str(digest.clone())));
    Certificate {
        text: Json::Obj(fields).to_string(),
        digest,
        nodes: proof.size(),
    }
}

fn encode_proof<L: Lattice>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> Json {
    let rule = match &proof.rule {
        Rule::SkipAxiom => "skip",
        Rule::AssignAxiom => "assign",
        Rule::SignalAxiom => "signal",
        Rule::WaitAxiom => "wait",
        Rule::If { .. } => "if",
        Rule::While { .. } => "while",
        Rule::Seq { .. } => "seq",
        Rule::Cobegin { .. } => "cobegin",
        Rule::Conseq { .. } => "conseq",
    };
    let mut kids: Vec<Json> = Vec::new();
    match &proof.rule {
        Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
        Rule::If {
            then_proof,
            else_proof,
        } => {
            kids.push(encode_proof(then_proof, symbols, show_lit));
            if let Some(e) = else_proof {
                kids.push(encode_proof(e, symbols, show_lit));
            }
        }
        Rule::While { body } => kids.push(encode_proof(body, symbols, show_lit)),
        Rule::Seq { parts } => {
            kids.extend(parts.iter().map(|p| encode_proof(p, symbols, show_lit)))
        }
        Rule::Cobegin { branches } => {
            kids.extend(branches.iter().map(|p| encode_proof(p, symbols, show_lit)))
        }
        Rule::Conseq { inner } => kids.push(encode_proof(inner, symbols, show_lit)),
    }
    Json::Obj(vec![
        ("rule".to_string(), Json::Str(rule.to_string())),
        (
            "pre".to_string(),
            encode_assertion(&proof.pre, symbols, show_lit),
        ),
        (
            "post".to_string(),
            encode_assertion(&proof.post, symbols, show_lit),
        ),
        ("kids".to_string(), Json::Arr(kids)),
    ])
}

fn encode_assertion<L: Lattice>(
    a: &Assertion<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> Json {
    let opt = |e: &Option<ClassExpr<L>>| match e {
        Some(e) => encode_expr(e, symbols, show_lit),
        None => Json::Null,
    };
    Json::Obj(vec![
        (
            "state".to_string(),
            Json::Arr(
                a.state
                    .iter()
                    .map(|b| {
                        Json::Arr(vec![
                            encode_expr(&b.lhs, symbols, show_lit),
                            encode_expr(&b.rhs, symbols, show_lit),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("local".to_string(), opt(&a.local)),
        ("global".to_string(), opt(&a.global)),
    ])
}

fn encode_expr<L: Lattice>(
    e: &ClassExpr<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> Json {
    let atoms = e
        .atoms()
        .iter()
        .map(|a| {
            Json::Str(match a {
                Atom::VarClass(v) => format!("v:{}", symbols.name(*v)),
                Atom::Local => "local".to_string(),
                Atom::Global => "global".to_string(),
            })
        })
        .collect();
    let lit = match e.literal() {
        Extended::Nil => Json::Null,
        Extended::Elem(l) => Json::Str(show_lit(l)),
    };
    Json::Obj(vec![
        ("atoms".to_string(), Json::Arr(atoms)),
        ("lit".to_string(), lit),
    ])
}

// ---- validation -----------------------------------------------------------

/// Validates a certificate against the exact source text it claims to
/// certify. Succeeds iff the envelope is canonical, the digest and
/// program fingerprint match, and the embedded proof *checks* — every
/// Figure-1 side condition re-derived by [`check_proof`]. Theorem 1
/// search is never run.
pub fn validate_certificate(source: &str, cert_text: &str) -> Result<CertSummary, CertError> {
    let cert = Json::parse(cert_text).map_err(|e| CertError::new("json", e.to_string()))?;
    let fields = cert
        .as_obj()
        .ok_or_else(|| CertError::new("format", "certificate must be a JSON object"))?;
    if fields.len() != FIELDS.len() {
        return Err(CertError::new(
            "format",
            format!(
                "expected exactly {} fields {:?}, found {}",
                FIELDS.len(),
                FIELDS,
                fields.len()
            ),
        ));
    }
    for (i, want) in FIELDS.iter().enumerate() {
        if fields[i].0 != *want {
            return Err(CertError::new(
                "format",
                format!(
                    "field {} must be `{}` (canonical order), found `{}`",
                    i + 1,
                    want,
                    fields[i].0
                ),
            ));
        }
    }
    if fields[0].1.as_str() != Some(CERT_FORMAT) {
        return Err(CertError::new(
            "format",
            format!("`format` must be \"{CERT_FORMAT}\""),
        ));
    }
    match fields[1].1.as_u64() {
        Some(v) if v == CERT_VERSION => {}
        Some(v) => {
            return Err(CertError::new(
                "version",
                format!("unsupported schema version {v} (this validator speaks {CERT_VERSION})"),
            ))
        }
        None => return Err(CertError::new("version", "`version` must be an integer")),
    }
    let lattice = fields[2]
        .1
        .as_str()
        .ok_or_else(|| CertError::new("lattice", "`lattice` must be a string"))?
        .to_string();
    let claimed_fp = fields[3]
        .1
        .as_str()
        .ok_or_else(|| CertError::new("program", "`program_sha256` must be a string"))?;
    let claimed_digest = fields[5]
        .1
        .as_str()
        .ok_or_else(|| CertError::new("digest", "`digest` must be a string"))?
        .to_string();

    // Digest first: re-serialize the parsed body (this normalizes any
    // whitespace the sender added) and hash it.
    let body = Json::Obj(fields[..FIELDS.len() - 1].to_vec());
    let actual_digest = sha256_hex(body.to_string().as_bytes());
    if claimed_digest != actual_digest {
        return Err(CertError::new(
            "digest",
            format!("content digest mismatch: certificate says {claimed_digest}, body hashes to {actual_digest}"),
        ));
    }

    if claimed_fp != program_fingerprint(source) {
        return Err(CertError::new(
            "program",
            "program fingerprint mismatch: this certificate is about a different source text",
        ));
    }
    let program = parse(source).map_err(|d| CertError::new("source", d.render(source)))?;

    let proof_json = &fields[4].1;
    let nodes = match parse_lattice(&lattice)? {
        LatticeKind::Two => check_decoded(&program, proof_json, &parse_two_lit)?,
        LatticeKind::Linear(levels) => {
            check_decoded(&program, proof_json, &|s: &str| parse_linear_lit(s, levels))?
        }
    };
    Ok(CertSummary {
        nodes,
        lattice,
        digest: claimed_digest,
    })
}

enum LatticeKind {
    Two,
    Linear(u32),
}

fn parse_lattice(descriptor: &str) -> Result<LatticeKind, CertError> {
    if descriptor == "two" {
        return Ok(LatticeKind::Two);
    }
    if let Some(n) = descriptor.strip_prefix("linear:") {
        let levels: u32 = n
            .parse()
            .map_err(|_| CertError::new("lattice", format!("bad linear level count `{n}`")))?;
        if LinearScheme::new(levels).is_none() {
            return Err(CertError::new(
                "lattice",
                format!("`linear:{levels}` is not a valid scheme"),
            ));
        }
        return Ok(LatticeKind::Linear(levels));
    }
    Err(CertError::new(
        "lattice",
        format!("unknown lattice descriptor `{descriptor}` (expected `two` or `linear:N`)"),
    ))
}

fn check_decoded<L: Lattice>(
    program: &Program,
    proof_json: &Json,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<usize, CertError> {
    let proof = decode_proof(proof_json, &program.symbols, parse_lit)?;
    check_proof(&program.body, &proof).map_err(|e| CertError::new("check", e.to_string()))?;
    Ok(proof.size())
}

fn decode_proof<L: Lattice>(
    v: &Json,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<Proof<L>, CertError> {
    let perr = |m: String| CertError::new("proof", m);
    let obj = v
        .as_obj()
        .ok_or_else(|| perr("proof node must be an object".into()))?;
    let [(k_rule, rule), (k_pre, pre), (k_post, post), (k_kids, kids)] = obj else {
        return Err(perr(format!(
            "proof node must have exactly rule/pre/post/kids, found {} field(s)",
            obj.len()
        )));
    };
    if k_rule != "rule" || k_pre != "pre" || k_post != "post" || k_kids != "kids" {
        return Err(perr(format!(
            "proof node fields must be rule/pre/post/kids in order, found {k_rule}/{k_pre}/{k_post}/{k_kids}"
        )));
    }
    let rule_name = rule
        .as_str()
        .ok_or_else(|| perr("`rule` must be a string".into()))?;
    let pre = decode_assertion(pre, symbols, parse_lit)?;
    let post = decode_assertion(post, symbols, parse_lit)?;
    let kid_vals = kids
        .as_arr()
        .ok_or_else(|| perr("`kids` must be an array".into()))?;
    let mut children = Vec::with_capacity(kid_vals.len());
    for k in kid_vals {
        children.push(decode_proof(k, symbols, parse_lit)?);
    }

    let n = children.len();
    let arity = |want: &str| {
        perr(format!(
            "rule `{rule_name}` needs {want}, found {n} premise(s)"
        ))
    };
    let rule = match rule_name {
        "skip" | "assign" | "signal" | "wait" => {
            if n != 0 {
                return Err(arity("no premises"));
            }
            match rule_name {
                "skip" => Rule::SkipAxiom,
                "assign" => Rule::AssignAxiom,
                "signal" => Rule::SignalAxiom,
                _ => Rule::WaitAxiom,
            }
        }
        "if" => {
            let mut it = children.into_iter();
            match (it.next(), it.next(), it.next()) {
                (Some(t), e, None) => Rule::If {
                    then_proof: Box::new(t),
                    else_proof: e.map(Box::new),
                },
                _ => return Err(arity("one or two premises")),
            }
        }
        "while" => {
            if n != 1 {
                return Err(arity("exactly one premise"));
            }
            Rule::While {
                body: Box::new(children.remove(0)),
            }
        }
        "conseq" => {
            if n != 1 {
                return Err(arity("exactly one premise"));
            }
            Rule::Conseq {
                inner: Box::new(children.remove(0)),
            }
        }
        "seq" => {
            if n == 0 {
                return Err(arity("at least one premise"));
            }
            Rule::Seq { parts: children }
        }
        "cobegin" => {
            if n < 2 {
                return Err(arity("at least two premises"));
            }
            Rule::Cobegin { branches: children }
        }
        other => return Err(perr(format!("unknown rule `{other}`"))),
    };
    Ok(Proof::new(pre, post, rule))
}

fn decode_assertion<L: Lattice>(
    v: &Json,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<Assertion<L>, CertError> {
    let perr = |m: String| CertError::new("proof", m);
    let obj = v
        .as_obj()
        .ok_or_else(|| perr("assertion must be an object".into()))?;
    let [(k_state, state), (k_local, local), (k_global, global)] = obj else {
        return Err(perr(
            "assertion must have exactly state/local/global".into(),
        ));
    };
    if k_state != "state" || k_local != "local" || k_global != "global" {
        return Err(perr(
            "assertion fields must be state/local/global in order".into(),
        ));
    }
    let bounds = state
        .as_arr()
        .ok_or_else(|| perr("`state` must be an array".into()))?;
    let mut out_state = Vec::with_capacity(bounds.len());
    for b in bounds {
        let pair = b
            .as_arr()
            .ok_or_else(|| perr("a bound must be a [lhs, rhs] pair".into()))?;
        let [lhs, rhs] = pair else {
            return Err(perr("a bound must be a [lhs, rhs] pair".into()));
        };
        out_state.push(Bound::new(
            decode_expr(lhs, symbols, parse_lit)?,
            decode_expr(rhs, symbols, parse_lit)?,
        ));
    }
    let opt = |v: &Json| -> Result<Option<ClassExpr<L>>, CertError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(decode_expr(other, symbols, parse_lit)?)),
        }
    };
    Ok(Assertion {
        state: out_state,
        local: opt(local)?,
        global: opt(global)?,
    })
}

fn decode_expr<L: Lattice>(
    v: &Json,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<ClassExpr<L>, CertError> {
    let perr = |m: String| CertError::new("proof", m);
    let obj = v
        .as_obj()
        .ok_or_else(|| perr("class expression must be an object".into()))?;
    let [(k_atoms, atoms), (k_lit, lit)] = obj else {
        return Err(perr("class expression must have exactly atoms/lit".into()));
    };
    if k_atoms != "atoms" || k_lit != "lit" {
        return Err(perr(
            "class expression fields must be atoms/lit in order".into(),
        ));
    }
    let mut acc = match lit {
        Json::Null => ClassExpr::nil(),
        Json::Str(s) => match parse_lit(s) {
            Some(l) => ClassExpr::lit(Extended::Elem(l)),
            None => {
                return Err(perr(format!(
                    "`{s}` is not a class literal of this lattice"
                )))
            }
        },
        _ => return Err(perr("`lit` must be a string or null".into())),
    };
    let atoms = atoms
        .as_arr()
        .ok_or_else(|| perr("`atoms` must be an array".into()))?;
    for a in atoms {
        let name = a
            .as_str()
            .ok_or_else(|| perr("an atom must be a string".into()))?;
        let term = match name {
            "local" => ClassExpr::local(),
            "global" => ClassExpr::global(),
            _ => match name.strip_prefix("v:") {
                Some(var) => match symbols.lookup(var) {
                    Some(v) => ClassExpr::var(v),
                    None => {
                        return Err(perr(format!(
                            "`{var}` is not a declared variable of this program"
                        )))
                    }
                },
                None => return Err(perr(format!("unknown atom `{name}`"))),
            },
        };
        acc = acc.join(&term);
    }
    Ok(acc)
}

// ---- resealing ------------------------------------------------------------

/// Recomputes the `digest` field of a (possibly mutated) certificate.
///
/// The other fields are passed through untouched, *including invalid
/// ones* — resealing restores digest integrity, nothing else. This is
/// how the adversarial suites reach the structural and proof-checking
/// stages past the digest gate; it is also handy for tooling that
/// rewrites certificates deliberately.
pub fn reseal(cert_text: &str) -> Result<String, CertError> {
    let cert = Json::parse(cert_text).map_err(|e| CertError::new("json", e.to_string()))?;
    let fields = cert
        .as_obj()
        .ok_or_else(|| CertError::new("format", "certificate must be a JSON object"))?;
    let body: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "digest")
        .cloned()
        .collect();
    let digest = sha256_hex(Json::Obj(body.clone()).to_string().as_bytes());
    let mut out = body;
    out.push(("digest".to_string(), Json::Str(digest)));
    Ok(Json::Obj(out).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_core::StaticBinding;
    use secflow_lattice::{LinearScheme, TwoPointScheme};
    use secflow_logic::prove;

    const CHANNEL: &str = "var x, y : integer; sem : semaphore;
        cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend";

    fn two_cert(source: &str) -> Certificate {
        let program = parse(source).unwrap();
        let sbind = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
        let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
        emit_certificate(&proof, &program.symbols, "two", source, &show_two_class)
    }

    #[test]
    fn round_trips_two_point() {
        for src in [
            CHANNEL,
            "var a : integer; while a > 0 do a := a - 1",
            "var a, b : integer; if a = b then skip else b := a",
        ] {
            let cert = two_cert(src);
            let summary = validate_certificate(src, &cert.text).unwrap();
            assert_eq!(summary.digest, cert.digest, "{src}");
            assert_eq!(summary.nodes, cert.nodes, "{src}");
            assert_eq!(summary.lattice, "two", "{src}");
            // Emission is deterministic: same proof, same bytes.
            assert_eq!(two_cert(src).text, cert.text, "{src}");
        }
    }

    #[test]
    fn round_trips_linear() {
        let src = "var a, b : integer; b := a";
        let program = parse(src).unwrap();
        let scheme = LinearScheme::new(4).unwrap();
        let top = scheme.level(3).unwrap();
        let sbind = StaticBinding::constant(&program.symbols, &scheme, top);
        let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
        let cert = emit_certificate(
            &proof,
            &program.symbols,
            "linear:4",
            src,
            &show_linear_class,
        );
        let summary = validate_certificate(src, &cert.text).unwrap();
        assert_eq!(summary.lattice, "linear:4");
        assert_eq!(summary.nodes, cert.nodes);
    }

    #[test]
    fn wrong_source_is_rejected_at_program_stage() {
        let cert = two_cert(CHANNEL);
        let err = validate_certificate("var z : integer; z := 1", &cert.text).unwrap_err();
        assert_eq!(err.stage, "program");
    }

    #[test]
    fn any_body_byte_flip_is_rejected_at_digest_stage() {
        let cert = two_cert(CHANNEL);
        // Flip a character inside the proof body (the first "rule").
        let mutated = cert
            .text
            .replacen("\"rule\":\"seq\"", "\"rule\":\"shq\"", 1);
        assert_ne!(mutated, cert.text);
        let err = validate_certificate(CHANNEL, &mutated).unwrap_err();
        assert_eq!(err.stage, "digest");
    }

    #[test]
    fn resealed_mutations_reach_the_checker_and_are_rejected() {
        let cert = two_cert(CHANNEL);
        // Rule swap, resealed past the digest gate: structural/check error.
        let swapped = reseal(
            &cert
                .text
                .replacen("\"rule\":\"assign\"", "\"rule\":\"skip\"", 1),
        )
        .unwrap();
        let err = validate_certificate(CHANNEL, &swapped).unwrap_err();
        assert!(err.stage == "proof" || err.stage == "check", "{err}");

        // Class relabel: the forged bound no longer checks.
        let relabeled =
            reseal(&cert.text.replacen("\"lit\":\"high\"", "\"lit\":\"low\"", 1)).unwrap();
        let err = validate_certificate(CHANNEL, &relabeled).unwrap_err();
        assert_eq!(err.stage, "check", "{err}");
    }

    #[test]
    fn version_bump_is_rejected() {
        let cert = two_cert(CHANNEL);
        let bumped = reseal(&cert.text.replacen("\"version\":1", "\"version\":2", 1)).unwrap();
        let err = validate_certificate(CHANNEL, &bumped).unwrap_err();
        assert_eq!(err.stage, "version");
    }

    #[test]
    fn truncation_and_garbage_are_rejected_at_json_stage() {
        let cert = two_cert(CHANNEL);
        for cut in [0, 1, cert.text.len() / 2, cert.text.len() - 1] {
            let err = validate_certificate(CHANNEL, &cert.text[..cut]).unwrap_err();
            assert_eq!(err.stage, "json", "cut at {cut}");
        }
        assert_eq!(
            validate_certificate(CHANNEL, "not json").unwrap_err().stage,
            "json"
        );
    }

    #[test]
    fn non_canonical_envelopes_are_rejected_at_format_stage() {
        let cert = two_cert(CHANNEL);
        // Reordered fields (still resealed consistently).
        let v = Json::parse(&cert.text).unwrap();
        let mut fields = v.as_obj().unwrap().to_vec();
        fields.swap(0, 2);
        let reordered = reseal(&Json::Obj(fields).to_string()).unwrap();
        assert_eq!(
            validate_certificate(CHANNEL, &reordered).unwrap_err().stage,
            "format"
        );
        // An extra field.
        let mut fields = v.as_obj().unwrap().to_vec();
        fields.push(("note".to_string(), Json::Str("hi".to_string())));
        let extended = reseal(&Json::Obj(fields).to_string()).unwrap();
        assert_eq!(
            validate_certificate(CHANNEL, &extended).unwrap_err().stage,
            "format"
        );
        assert_eq!(
            validate_certificate(CHANNEL, "[]").unwrap_err().stage,
            "format"
        );
    }

    #[test]
    fn foreign_lattice_descriptors_are_rejected() {
        let cert = two_cert(CHANNEL);
        for bad in ["powerset", "linear:0", "linear:x", "linear:"] {
            let t = reseal(&cert.text.replacen(
                "\"lattice\":\"two\"",
                &format!("\"lattice\":\"{bad}\""),
                1,
            ))
            .unwrap();
            let err = validate_certificate(CHANNEL, &t).unwrap_err();
            // linear:0 dies at the descriptor; the rest never match a scheme.
            assert_eq!(err.stage, "lattice", "{bad}: {err}");
        }
    }

    #[test]
    fn whitespace_insertions_do_not_change_the_digest() {
        // The digest is over the *re-serialized* body, so a transport
        // that pretty-prints the JSON does not invalidate certificates.
        let cert = two_cert(CHANNEL);
        let spaced = cert.text.replace("\",\"", "\", \"");
        assert_ne!(spaced, cert.text);
        let summary = validate_certificate(CHANNEL, &spaced).unwrap();
        assert_eq!(summary.digest, cert.digest);
    }

    #[test]
    fn depth_bombs_die_in_the_json_parser() {
        let bomb = format!(
            r#"{{"format":"secflow-cert","version":1,"lattice":"two","program_sha256":"x","proof":{},"digest":"y"}}"#,
            "[".repeat(200) + &"]".repeat(200)
        );
        let err = validate_certificate(CHANNEL, &bomb).unwrap_err();
        assert_eq!(err.stage, "json");
    }
}
