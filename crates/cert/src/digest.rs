//! A std-only SHA-256 (FIPS 180-4), used for certificate content
//! digests and program fingerprints.
//!
//! Certificates are cache-addressed by digest, so the function must be
//! collision-resistant across hostile inputs — FNV (the in-memory cache
//! fingerprint) is not. The implementation is the straightforward
//! single-block compression loop; throughput is irrelevant next to the
//! proof checking a validation performs, and the test vectors below pin
//! it to the published FIPS values.

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes fed so far (the message length for the final padding).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hash state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // Everything fit in the partial block; the tail copy
                // below must not clobber it.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Consumes the state and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// The lowercase-hex SHA-256 of `data` in one call.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    let digest = h.finish();
    let mut out = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(out, "{b:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// One million 'a's, fed in uneven chunks to exercise buffering.
    #[test]
    fn long_message_in_chunks() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 97];
        let mut fed = 0;
        while fed < 1_000_000 {
            let take = chunk.len().min(1_000_000 - fed);
            h.update(&chunk[..take]);
            fed += take;
        }
        let hex: String = h.finish().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    /// Every split point of a 3-block message hashes identically.
    #[test]
    fn split_points_agree() {
        let msg: Vec<u8> = (0u8..=191).collect();
        let whole = sha256_hex(&msg);
        for cut in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..cut]);
            h.update(&msg[cut..]);
            let hex: String = h.finish().iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(hex, whole, "cut at {cut}");
        }
    }
}
