//! `secflow-cert` — verifiable proof certificates over the wire.
//!
//! The flow logic (Figure 1, Theorem 1) produces explicit proof trees,
//! but within a single process: the prover and the checker share the
//! in-memory [`Proof`](secflow_logic::Proof). This crate turns that
//! proof into a **self-contained wire object** so that one prover can
//! serve many cheap validators — the "prove once, validate everywhere"
//! split of proof-carrying systems:
//!
//! - [`json`] — the minimal hand-rolled JSON value model shared with
//!   the server's line protocol (no external dependencies);
//! - [`digest`] — a std-only SHA-256, used for the certificate content
//!   digest and the program fingerprint;
//! - [`wire`] — the canonical certificate format: deterministic
//!   serialization ([`emit_certificate`]), strict parsing, and a
//!   standalone validator ([`validate_certificate`]) built on
//!   [`check_proof`](secflow_logic::check_proof) that re-derives every
//!   side condition without ever re-running Theorem 1 search.
//!
//! A certificate carries **no authority**: the validator trusts only
//! the program source it is handed and the lattice it names. Rule
//! applications, substitutions and entailments are all re-derived; the
//! digest merely makes certificates content-addressable and detects
//! transport corruption before the (slightly more expensive) structural
//! checks run.
//!
//! # Example
//!
//! ```
//! use secflow_cert::{emit_certificate, show_two_class, validate_certificate};
//! use secflow_core::StaticBinding;
//! use secflow_lang::parse;
//! use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};
//! use secflow_logic::prove;
//!
//! let source = "var x, y : integer; y := x";
//! let program = parse(source).unwrap();
//! let sbind = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
//! let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
//!
//! let cert = emit_certificate(&proof, &program.symbols, "two", source, &show_two_class);
//! let summary = validate_certificate(source, &cert.text).unwrap();
//! assert_eq!(summary.digest, cert.digest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod json;
pub mod wire;

pub use digest::{sha256_hex, Sha256};
pub use json::{Json, JsonError};
pub use wire::{
    emit_certificate, program_fingerprint, reseal, show_linear_class, show_two_class,
    validate_certificate, CertError, CertSummary, Certificate, CERT_FORMAT, CERT_VERSION,
};
