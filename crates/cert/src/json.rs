//! Minimal hand-rolled JSON: enough for the line protocol, no external
//! dependencies.
//!
//! Full RFC 8259 value model (objects keep insertion order), string
//! escapes including `\uXXXX` surrogate pairs, and a recursion-depth
//! limit so hostile inputs cannot blow the stack.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document from `text`.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for text in [
            r#"{"op":"certify","source":"var x : integer; x := 0","classes":{"x":"high"}}"#,
            r#"[1,2.5,-3,null,true,false,"a\nb\"c\\d"]"#,
            r#"{"nested":{"a":[{"b":[]}]},"s":"λ≤🦀"}"#,
        ] {
            let v = Json::parse(text).unwrap();
            let v2 = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, v2);
        }
    }

    #[test]
    fn escapes() {
        let v = Json::parse(r#""\u0041\u00e9\ud83e\udd80\t""#).unwrap();
        assert_eq!(v, Json::Str("Aé🦀\t".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "\"\\q\"",
            "{} {}",
            "\"\u{01}\"",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":7,"s":"hi","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
