//! Property tests: every pass is panic-free and deterministic on
//! randomly generated programs.

use proptest::prelude::*;

use secflow_analyze::analyze;
use secflow_workload::{generate, GenConfig};

fn cfg(n_sems: usize, bounded: bool) -> GenConfig {
    GenConfig {
        target_stmts: 25,
        max_depth: 4,
        n_vars: 4,
        n_sems,
        bounded_loops: bounded,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Running the full pipeline twice on the same program yields the
    /// same diagnostics, and never panics, whatever the generator
    /// produces (with and without semaphores, bounded and free loops).
    #[test]
    fn passes_are_panic_free_and_deterministic(
        seed in 0u64..1_000_000,
        n_sems in 0usize..3,
        bounded in 0u8..2,
    ) {
        let program = generate(&cfg(n_sems, bounded == 1), seed);
        let first = analyze(&program);
        let second = analyze(&program);
        prop_assert_eq!(first.diags, second.diags);
        prop_assert_eq!(first.passes_run, 6);
    }

    /// Rendering never panics either: both the human renderer (which
    /// resolves spans against the pretty-printed source it was parsed
    /// from) and the JSON-lines renderer.
    #[test]
    fn renderers_are_total(seed in 0u64..1_000_000) {
        let program = generate(&cfg(2, true), seed);
        let source = secflow_lang::print_program(&program);
        let reparsed = secflow_lang::parse(&source).expect("printer output parses");
        let report = analyze(&reparsed);
        let human = report.render(&source);
        let json = report.to_json_lines(Some("gen.sf"), &source);
        prop_assert_eq!(human.is_empty(), report.clean());
        prop_assert_eq!(json.lines().count(), report.diags.len());
    }
}
