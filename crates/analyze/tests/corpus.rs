//! Cross-validation of the static deadlock verdict against the
//! runtime's exhaustive explorer, over every program in
//! `examples/programs`.
//!
//! The static pass abstracts data to stable guard atoms and claims
//! `may_deadlock` iff *some* input and schedule reaches a stuck state.
//! The dynamic oracle enumerates every assignment of `{0, 1}` to the
//! program's input variables (data variables never assigned anywhere)
//! and asks [`can_deadlock`] for each — guards in the corpus only
//! compare against zero, so two values per input are exhaustive.

use std::collections::{BTreeSet, HashSet};
use std::path::{Path, PathBuf};

use secflow_analyze::{deadlock_analysis, race_analysis};
use secflow_lang::{parse, Program, VarId, VarKind};
use secflow_runtime::{action_footprint, can_deadlock, ExploreLimits, Machine};

fn corpus() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/programs exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sf"))
        .collect();
    files.sort();
    files
}

fn load(path: &Path) -> Program {
    let source = std::fs::read_to_string(path).unwrap();
    parse(&source).unwrap_or_else(|d| panic!("{} does not parse: {}", path.display(), d.message))
}

/// Ground truth: does any `{0,1}` input assignment admit a deadlocking
/// schedule?
fn dynamic_deadlock(program: &Program) -> bool {
    let mut modified = HashSet::new();
    program.body.for_each_modified(&mut |v| {
        modified.insert(v);
    });
    let inputs: Vec<VarId> = program
        .symbols
        .data_vars()
        .into_iter()
        .filter(|v| !modified.contains(v))
        .collect();
    assert!(inputs.len() < 16, "corpus program has too many inputs");
    let limits = ExploreLimits {
        max_states: 200_000,
        max_depth: 10_000,
        ..ExploreLimits::default()
    };
    (0u32..1 << inputs.len()).any(|mask| {
        let assignment: Vec<(VarId, i64)> = inputs
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, ((mask >> i) & 1) as i64))
            .collect();
        can_deadlock(program, &assignment, limits)
    })
}

#[test]
fn static_verdict_agrees_with_exhaustive_exploration() {
    let files = corpus();
    assert!(!files.is_empty(), "corpus is empty");
    for path in &files {
        let program = load(path);
        let report = deadlock_analysis(&program, 100_000);
        assert!(!report.truncated, "{} truncated", path.display());
        assert_eq!(
            report.may_deadlock,
            dynamic_deadlock(&program),
            "static and dynamic deadlock verdicts disagree on {}",
            path.display()
        );
    }
}

/// Ground truth for the race pass: the set of data variables for which
/// some reachable state (full interleaving graph, no partial-order
/// reduction — POR may skip intermediate states) has two *enabled*
/// processes whose pending actions conflict on that variable. POR is
/// deliberately off here: the whole point is to see every state.
fn dynamic_race_vars(program: &Program, inputs: &[(VarId, i64)]) -> BTreeSet<VarId> {
    let data: Vec<VarId> = program.symbols.data_vars();
    let mut racy = BTreeSet::new();
    if !program.body.is_concurrent() {
        return racy; // a single process cannot have co-enabled actions
    }
    let mut seen = HashSet::new();
    let mut stack = vec![Machine::with_inputs(program, inputs)];
    while let Some(m) = stack.pop() {
        if !seen.insert(m.fingerprint()) {
            continue;
        }
        // Cap against unbounded loops: a truncated oracle only
        // under-approximates the racy set, which keeps the soundness
        // direction (static ⊇ dynamic) meaningful.
        if seen.len() > 200_000 {
            break;
        }
        let enabled = m.enabled();
        for (i, &p) in enabled.iter().enumerate() {
            for &q in &enabled[i + 1..] {
                let (Some(a), Some(b)) = (m.pending_stmt(p), m.pending_stmt(q)) else {
                    continue;
                };
                let (fa, fb) = (action_footprint(a), action_footprint(b));
                for &v in &data {
                    let conflict = (fa.writes.contains(v)
                        && (fb.writes.contains(v) || fb.reads.contains(v)))
                        || (fb.writes.contains(v) && fa.reads.contains(v));
                    if conflict {
                        racy.insert(v);
                    }
                }
            }
        }
        for &p in &enabled {
            let mut next = m.clone();
            let _ = next.step(p);
            stack.push(next);
        }
    }
    racy
}

/// Soundness of SF050/SF051 over the corpus: every dynamically racy
/// variable (under any `{0,1}` input assignment) is statically flagged.
/// The reverse direction — precision — is checked per-file below; the
/// gap is exactly the handoff-synchronized programs.
#[test]
fn static_races_cover_dynamic_races_on_corpus() {
    let files = corpus();
    assert!(!files.is_empty(), "corpus is empty");
    for path in &files {
        let program = load(path);
        let static_vars: BTreeSet<VarId> = race_analysis(&program)
            .races
            .iter()
            .map(|r| r.var)
            .collect();
        let mut modified = HashSet::new();
        program.body.for_each_modified(&mut |v| {
            modified.insert(v);
        });
        let inputs: Vec<VarId> = program
            .symbols
            .data_vars()
            .into_iter()
            .filter(|v| !modified.contains(v))
            .collect();
        assert!(inputs.len() < 16, "corpus program has too many inputs");
        for mask in 0u32..1 << inputs.len() {
            let assignment: Vec<(VarId, i64)> = inputs
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, ((mask >> i) & 1) as i64))
                .collect();
            for v in dynamic_race_vars(&program, &assignment) {
                assert!(
                    program.symbols.kind(v) == VarKind::Data,
                    "oracle only reports data vars"
                );
                assert!(
                    static_vars.contains(&v),
                    "{}: dynamic race on `{}` not statically flagged (inputs {assignment:?})",
                    path.display(),
                    program.symbols.name(v)
                );
            }
        }
    }
}

/// Precision over the corpus, pinned file by file: the sequential
/// programs and the §2.2 channel are race-clean both ways, while
/// `fig3.sf` is the documented false positive — its accesses to `m` and
/// `y` are ordered by *handoff* semaphores (initial value 0), which the
/// lockset abstraction cannot see, so the static pass over-reports
/// exactly there.
#[test]
fn race_precision_gap_is_exactly_the_handoff_programs() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    for name in ["direct_leak.sf", "sequential_ok.sf", "sem_channel.sf"] {
        let program = load(&dir.join(name));
        let report = race_analysis(&program);
        assert!(report.races.is_empty(), "{name}: {:?}", report.races);
    }
    let fig3 = load(&dir.join("fig3.sf"));
    let report = race_analysis(&fig3);
    assert!(
        !report.races.is_empty(),
        "fig3 handoff ordering is invisible to locksets"
    );
    assert!(
        dynamic_race_vars(&fig3, &[]).is_empty()
            && dynamic_race_vars(&fig3, &[(fig3.var("x"), 1)]).is_empty(),
        "fig3 is dynamically race-free — the static report is a precision gap, not a bug"
    );
}

#[test]
fn sem_channel_is_flagged_and_fig3_is_not() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    let sem_channel = deadlock_analysis(&load(&dir.join("sem_channel.sf")), 100_000);
    assert!(sem_channel.may_deadlock, "§2.2 channel must be flagged");
    assert!(!sem_channel.blocked_waits.is_empty());
    let fig3 = deadlock_analysis(&load(&dir.join("fig3.sf")), 100_000);
    assert!(!fig3.may_deadlock, "Fig. 3 is deadlock-free");
    assert!(fig3.blocked_waits.is_empty());
}
