//! Cross-validation of the static deadlock verdict against the
//! runtime's exhaustive explorer, over every program in
//! `examples/programs`.
//!
//! The static pass abstracts data to stable guard atoms and claims
//! `may_deadlock` iff *some* input and schedule reaches a stuck state.
//! The dynamic oracle enumerates every assignment of `{0, 1}` to the
//! program's input variables (data variables never assigned anywhere)
//! and asks [`can_deadlock`] for each — guards in the corpus only
//! compare against zero, so two values per input are exhaustive.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use secflow_analyze::deadlock_analysis;
use secflow_lang::{parse, Program, VarId};
use secflow_runtime::{can_deadlock, ExploreLimits};

fn corpus() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/programs exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "sf"))
        .collect();
    files.sort();
    files
}

fn load(path: &Path) -> Program {
    let source = std::fs::read_to_string(path).unwrap();
    parse(&source).unwrap_or_else(|d| panic!("{} does not parse: {}", path.display(), d.message))
}

/// Ground truth: does any `{0,1}` input assignment admit a deadlocking
/// schedule?
fn dynamic_deadlock(program: &Program) -> bool {
    let mut modified = HashSet::new();
    program.body.for_each_modified(&mut |v| {
        modified.insert(v);
    });
    let inputs: Vec<VarId> = program
        .symbols
        .data_vars()
        .into_iter()
        .filter(|v| !modified.contains(v))
        .collect();
    assert!(inputs.len() < 16, "corpus program has too many inputs");
    let limits = ExploreLimits {
        max_states: 200_000,
        max_depth: 10_000,
    };
    (0u32..1 << inputs.len()).any(|mask| {
        let assignment: Vec<(VarId, i64)> = inputs
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, ((mask >> i) & 1) as i64))
            .collect();
        can_deadlock(program, &assignment, limits)
    })
}

#[test]
fn static_verdict_agrees_with_exhaustive_exploration() {
    let files = corpus();
    assert!(!files.is_empty(), "corpus is empty");
    for path in &files {
        let program = load(path);
        let report = deadlock_analysis(&program, 100_000);
        assert!(!report.truncated, "{} truncated", path.display());
        assert_eq!(
            report.may_deadlock,
            dynamic_deadlock(&program),
            "static and dynamic deadlock verdicts disagree on {}",
            path.display()
        );
    }
}

#[test]
fn sem_channel_is_flagged_and_fig3_is_not() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/programs");
    let sem_channel = deadlock_analysis(&load(&dir.join("sem_channel.sf")), 100_000);
    assert!(sem_channel.may_deadlock, "§2.2 channel must be flagged");
    assert!(!sem_channel.blocked_waits.is_empty());
    let fig3 = deadlock_analysis(&load(&dir.join("fig3.sf")), 100_000);
    assert!(!fig3.may_deadlock, "Fig. 3 is deadlock-free");
    assert!(fig3.blocked_waits.is_empty());
}
