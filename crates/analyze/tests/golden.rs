//! Golden-file tests: the rendered diagnostics for the two canonical
//! paper programs are a pinned contract.
//!
//! Figure 3 must come out deadlock-free (info-level provenance notes
//! only), while the §2.2 semaphore channel must carry the SF010
//! may-deadlock warning. Regenerate a golden file by running
//! `secflow lint <file>` and stripping the header and summary lines —
//! but treat any diff as an API break first.

use std::path::Path;

use secflow_analyze::analyze;
use secflow_lang::parse;

fn check(program: &str, golden: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(root.join("../../examples/programs").join(program))
        .expect("example program exists");
    let expected = std::fs::read_to_string(root.join("tests/golden").join(golden))
        .expect("golden file exists");
    let parsed = parse(&source).expect("example parses");
    let rendered = analyze(&parsed).render(&source);
    assert_eq!(
        rendered, expected,
        "rendered diagnostics for {program} drifted from tests/golden/{golden}"
    );
}

#[test]
fn fig3_rendering_is_stable() {
    check("fig3.sf", "fig3.txt");
}

#[test]
fn sem_channel_rendering_is_stable() {
    check("sem_channel.sf", "sem_channel.txt");
}
