//! Static deadlock detection (SF010–SF012).
//!
//! Two complementary analyses:
//!
//! 1. **Skeleton exploration** ([`deadlock_analysis`]): the program is
//!    abstracted to its "semaphore skeleton" — semaphore counters are
//!    tracked exactly (capped), data is dropped except for *stable*
//!    guard atoms (guards whose variables are never assigned anywhere).
//!    Stable atoms are canonicalized so that complementary guards like
//!    `x = 0` and `x # 0` share one atom with opposite polarity, and
//!    each atom is bound path-consistently the first time a run
//!    branches on it. The abstract state space is then explored
//!    exhaustively; a state where every unfinished process is blocked
//!    on `wait` is a *may*-deadlock (SF010). This is exactly what
//!    separates the paper's §2.2 covert channel (deadlock-capable on
//!    the `x ≠ 0` path) from Fig. 3 (deadlock-free: the two `if`s on
//!    `x = 0` / `x # 0` are complementary, so the "both skipped" path
//!    is infeasible).
//! 2. **Blocking graph** (SF011): for every `signal(s)` site, a forward
//!    must-analysis computes which semaphores have *always* been waited
//!    on first. If zero-initialized semaphores form a cycle of such
//!    dependencies (`s` is only signaled after `wait(t)` succeeds, and
//!    vice versa), no signal in the cycle can ever happen.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};

use secflow_lang::{BinOp, Diag, Expr, Program, Span, Stmt, UnOp, VarId};
use secflow_runtime::pexplore::{fnv64_of, parallel_search, Expansion};

use crate::pass::AnalysisPass;

/// Semaphore counters saturate here; higher pending counts are folded.
const SEM_CAP: u8 = 8;
/// Loops whose body synchronizes are unrolled at most this many times
/// per activation before the task is treated as spinning.
const LOOP_CAP: u8 = 2;
/// Abstract task limit; beyond this the exploration is truncated.
const TASK_CAP: usize = 256;
/// Programs above this statement count are not explored.
const STMT_CAP: usize = 5_000;

/// Static deadlock detection pass (skeleton exploration + blocking graph).
pub struct DeadlockPass {
    /// Maximum number of abstract states to explore before giving up
    /// with SF012.
    pub max_states: usize,
    /// Work-stealing exploration workers (1 = sequential search).
    pub threads: usize,
}

impl Default for DeadlockPass {
    fn default() -> Self {
        DeadlockPass {
            max_states: 50_000,
            threads: 1,
        }
    }
}

impl AnalysisPass for DeadlockPass {
    fn name(&self) -> &'static str {
        "deadlock"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        self.run_with(program, out, &|| false);
    }

    fn run_with(
        &self,
        program: &Program,
        out: &mut Vec<Diag>,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) {
        if let Some(cycle) = circular_handoff(program) {
            let names: Vec<&str> = cycle.iter().map(|&v| program.symbols.name(v)).collect();
            let mut d = Diag::warning(
                "SF011",
                format!(
                    "semaphores {} form a circular handoff: each is signaled only after a \
                     wait on another member of the cycle succeeds, so none can ever be \
                     signaled",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                program.symbols.info(cycle[0]).decl_span,
            );
            for &v in &cycle[1..] {
                d = d.with_note(
                    format!("`{}` is part of the cycle", program.symbols.name(v)),
                    program.symbols.info(v).decl_span,
                );
            }
            out.push(d);
        }

        let report = deadlock_analysis_threads(program, self.max_states, self.threads, should_stop);
        if report.truncated {
            let why = if report.cancelled {
                "cancelled"
            } else {
                "truncated"
            };
            out.push(Diag::info(
                "SF012",
                format!(
                    "deadlock exploration {why} after {} abstract states; no verdict",
                    report.states
                ),
                program.body.span(),
            ));
        } else if report.may_deadlock {
            if report.blocked_waits.is_empty() {
                out.push(Diag::warning(
                    "SF010",
                    "some schedule and input reaches a state where every unfinished \
                     process is blocked",
                    program.body.span(),
                ));
            }
            for &(span, sem) in &report.blocked_waits {
                let name = program.symbols.name(sem);
                out.push(Diag::warning(
                    "SF010",
                    format!(
                        "`wait({name})` may block forever: some schedule and input reaches \
                         a state where every unfinished process is blocked"
                    ),
                    span,
                ));
            }
        }
    }
}

/// Result of the abstract skeleton exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeadlockReport {
    /// Some abstract schedule/input reaches a global blocked state.
    pub may_deadlock: bool,
    /// The exploration hit a resource cap; `may_deadlock` is unreliable
    /// (no claim is made either way).
    pub truncated: bool,
    /// The caller's `should_stop` hook ended the exploration (implies
    /// `truncated`).
    pub cancelled: bool,
    /// `wait` sites blocked in some deadlocked state, sorted by span.
    pub blocked_waits: Vec<(Span, VarId)>,
    /// Number of distinct abstract states visited.
    pub states: usize,
}

/// Explores the semaphore skeleton of `program`, visiting at most
/// `max_states` abstract states.
pub fn deadlock_analysis(program: &Program, max_states: usize) -> DeadlockReport {
    deadlock_analysis_with(program, max_states, &|| false)
}

/// States to explore between `should_stop` polls.
const CANCEL_POLL_STATES: usize = 256;

/// [`deadlock_analysis`] with a cooperative cancellation hook, polled
/// every [`CANCEL_POLL_STATES`] popped states. A `true` return abandons
/// the exploration with `cancelled` (and `truncated`) set.
pub fn deadlock_analysis_with(
    program: &Program,
    max_states: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> DeadlockReport {
    if program.statement_count() > STMT_CAP {
        return capped_report();
    }
    let ir = Ir::build(program);
    let mut seen: HashSet<Hashed> = HashSet::new();
    let init = Hashed::new(initial_state(&ir));
    seen.insert(init.clone());
    let mut stack = vec![init];
    let mut may_deadlock = false;
    let mut truncated = false;
    let mut cancelled = false;
    let mut popped = 0usize;

    let mut blocked: BTreeSet<(u32, u32, VarId)> = BTreeSet::new();

    while let Some(hs) = stack.pop() {
        if popped.is_multiple_of(CANCEL_POLL_STATES) && should_stop() {
            truncated = true;
            cancelled = true;
            break;
        }
        popped += 1;
        let st = &hs.state;
        let mut succs = Vec::new();
        let mut overflow = false;
        expand_state(&ir, st, &mut succs, &mut overflow);
        if overflow {
            truncated = true;
            break;
        }
        if succs.is_empty() {
            may_deadlock |= note_blocked(&ir, st, &mut blocked);
            continue;
        }
        for s in succs {
            // The hash is computed once here and reused for every probe
            // (and, in the parallel search, for the shard index); the
            // full state is never re-hashed.
            let hs = Hashed::new(s);
            if !seen.contains(&hs) {
                if seen.len() >= max_states {
                    truncated = true;
                    break;
                }
                seen.insert(hs.clone());
                stack.push(hs);
            }
        }
        if truncated {
            break;
        }
    }

    DeadlockReport {
        may_deadlock: may_deadlock && !truncated,
        truncated,
        cancelled,
        blocked_waits: blocked
            .into_iter()
            .map(|(s, e, v)| (Span::new(s, e), v))
            .collect(),
        states: seen.len(),
    }
}

/// [`deadlock_analysis_with`] on `threads` work-stealing workers (via
/// [`parallel_search`]); `threads <= 1` runs the sequential search. The
/// partial verdicts merge commutatively (boolean or, set union), so the
/// report is schedule-independent whenever no cap truncates it.
pub fn deadlock_analysis_threads(
    program: &Program,
    max_states: usize,
    threads: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> DeadlockReport {
    if threads <= 1 {
        return deadlock_analysis_with(program, max_states, should_stop);
    }
    if program.statement_count() > STMT_CAP {
        return capped_report();
    }
    let ir = Ir::build(program);

    /// Per-worker partial verdict, merged commutatively below.
    #[derive(Default)]
    struct Partial {
        may_deadlock: bool,
        blocked: BTreeSet<(u32, u32, VarId)>,
    }

    let outcome = parallel_search(
        vec![Hashed::new(initial_state(&ir))],
        threads,
        max_states,
        should_stop,
        |hs: &Hashed| (hs.hash, hs.clone()),
        |hs: Hashed, partial: &mut Partial, out: &mut Vec<Hashed>| {
            let st = &hs.state;
            let mut succs = Vec::new();
            let mut overflow = false;
            expand_state(&ir, st, &mut succs, &mut overflow);
            if overflow {
                return Expansion::Abort;
            }
            if succs.is_empty() {
                partial.may_deadlock |= note_blocked(&ir, st, &mut partial.blocked);
            } else {
                out.extend(succs.into_iter().map(Hashed::new));
            }
            Expansion::Continue
        },
    );

    let mut may_deadlock = false;
    let mut blocked: BTreeSet<(u32, u32, VarId)> = BTreeSet::new();
    for partial in outcome.partials {
        may_deadlock |= partial.may_deadlock;
        blocked.extend(partial.blocked);
    }
    DeadlockReport {
        may_deadlock: may_deadlock && !outcome.truncated,
        truncated: outcome.truncated,
        cancelled: outcome.cancelled,
        blocked_waits: blocked
            .into_iter()
            .map(|(s, e, v)| (Span::new(s, e), v))
            .collect(),
        states: outcome.states,
    }
}

/// The report for programs too large to explore at all.
fn capped_report() -> DeadlockReport {
    DeadlockReport {
        may_deadlock: false,
        truncated: true,
        cancelled: false,
        blocked_waits: Vec::new(),
        states: 0,
    }
}

/// The abstract start state: one root task, initial semaphore counters,
/// every stable atom unbound.
fn initial_state(ir: &Ir) -> State {
    let root = Task {
        frames: vec![Frame::Run(ir.root)],
        parent: None,
        pending: 0,
        done: false,
        diverged: false,
    };
    let mut init = State {
        tasks: vec![root],
        sems: ir.sem_init.clone(),
        vals: vec![-1; ir.n_atoms],
    };
    cascade(&mut init, 0);
    init
}

/// All successors of `st` (every eligible task stepped once); sets
/// `overflow` if a step would exceed [`TASK_CAP`].
fn expand_state(ir: &Ir, st: &State, succs: &mut Vec<State>, overflow: &mut bool) {
    for i in 0..st.tasks.len() {
        let t = &st.tasks[i];
        if t.done || t.diverged || t.pending != 0 || t.frames.is_empty() {
            continue;
        }
        succs.extend(step(ir, st, i, overflow));
    }
}

/// If `st` (a state with no successors) is a global blocked state,
/// records its blocked `wait` sites and returns `true`.
fn note_blocked(ir: &Ir, st: &State, blocked: &mut BTreeSet<(u32, u32, VarId)>) -> bool {
    let all_done = st.tasks.iter().all(|t| t.done);
    let any_spinning = st.tasks.iter().any(|t| !t.done && t.diverged);
    if all_done || any_spinning {
        return false;
    }
    for t in &st.tasks {
        if t.done {
            continue;
        }
        if let Some(Frame::Run(id)) = t.frames.last() {
            if let Node::Wait { var, span, .. } = &ir.nodes[*id as usize] {
                blocked.insert((span.start, span.end, *var));
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Abstract IR
// ---------------------------------------------------------------------------

/// Guard abstraction for `if`/`while` conditions.
#[derive(Clone, Copy, Debug)]
enum Guard {
    /// Constant-folded condition.
    Const(bool),
    /// A stable atom (variables never assigned anywhere): `polarity`
    /// tells whether the guard is the atom or its complement.
    Stable { atom: u16, polarity: bool },
    /// Anything else — both outcomes always possible.
    Unstable,
}

enum Node {
    Leaf,
    Wait {
        sem: u16,
        var: VarId,
        span: Span,
    },
    Signal {
        sem: u16,
    },
    Seq {
        children: Vec<u32>,
    },
    Cobegin {
        children: Vec<u32>,
    },
    If {
        guard: Guard,
        then_: u32,
        else_: Option<u32>,
    },
    While {
        guard: Guard,
        body: u32,
        body_sync: bool,
    },
}

struct Ir {
    nodes: Vec<Node>,
    root: u32,
    sem_init: Vec<u8>,
    n_atoms: usize,
}

impl Ir {
    fn build(program: &Program) -> Ir {
        let mut mutated: HashSet<VarId> = HashSet::new();
        program.body.for_each_modified(&mut |v| {
            mutated.insert(v);
        });
        let sems = program.symbols.semaphores();
        let sem_ord: HashMap<VarId, u16> = sems
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u16))
            .collect();
        let sem_init = sems
            .iter()
            .map(|&v| program.symbols.info(v).init.clamp(0, SEM_CAP as i64) as u8)
            .collect();
        let mut b = Builder {
            nodes: Vec::new(),
            sem_ord,
            atoms: HashMap::new(),
            mutated,
        };
        let root = b.lower(&program.body);
        Ir {
            nodes: b.nodes,
            root,
            sem_init,
            n_atoms: b.atoms.len(),
        }
    }
}

struct Builder {
    nodes: Vec<Node>,
    sem_ord: HashMap<VarId, u16>,
    atoms: HashMap<String, u16>,
    mutated: HashSet<VarId>,
}

impl Builder {
    fn push(&mut self, n: Node) -> u32 {
        self.nodes.push(n);
        (self.nodes.len() - 1) as u32
    }

    fn lower(&mut self, stmt: &Stmt) -> u32 {
        match stmt {
            Stmt::Skip(_) | Stmt::Assign { .. } => self.push(Node::Leaf),
            Stmt::Wait { sem, span } => {
                let ord = self.sem_ord[sem];
                self.push(Node::Wait {
                    sem: ord,
                    var: *sem,
                    span: *span,
                })
            }
            Stmt::Signal { sem, .. } => {
                let ord = self.sem_ord[sem];
                self.push(Node::Signal { sem: ord })
            }
            Stmt::Seq { stmts, .. } => {
                let children = stmts.iter().map(|s| self.lower(s)).collect();
                self.push(Node::Seq { children })
            }
            Stmt::Cobegin { branches, .. } => {
                let children = branches.iter().map(|s| self.lower(s)).collect();
                self.push(Node::Cobegin { children })
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let guard = self.guard(cond);
                let then_ = self.lower(then_branch);
                let else_ = else_branch.as_ref().map(|e| self.lower(e));
                self.push(Node::If {
                    guard,
                    then_,
                    else_,
                })
            }
            Stmt::While { cond, body, .. } => {
                let guard = self.guard(cond);
                let body_sync = body.is_concurrent();
                let body = self.lower(body);
                self.push(Node::While {
                    guard,
                    body,
                    body_sync,
                })
            }
        }
    }

    fn guard(&mut self, cond: &Expr) -> Guard {
        let vars = cond.vars();
        if vars.is_empty() {
            return match eval_const(cond) {
                Some(v) => Guard::Const(v != 0),
                None => Guard::Unstable,
            };
        }
        if vars.iter().any(|v| self.mutated.contains(v)) {
            return Guard::Unstable;
        }
        let (key, polarity) = canon(cond);
        let next = self.atoms.len() as u16;
        let atom = *self.atoms.entry(key).or_insert(next);
        Guard::Stable { atom, polarity }
    }
}

/// Structural key of an expression (`v<id>` / `c<n>` leaves).
fn key(e: &Expr) -> String {
    match e {
        Expr::Const(c, _) => format!("c{c}"),
        Expr::Var(v, _) => format!("v{}", v.0),
        Expr::Unary { op, arg, .. } => format!("({op} {})", key(arg)),
        Expr::Binary { op, lhs, rhs, .. } => format!("({op} {} {})", key(lhs), key(rhs)),
    }
}

/// Canonical (atom key, polarity) of a guard: `not` flips polarity and
/// the strict comparisons are normalized to their complements (`#`→`=`,
/// `>=`→`<`, `>`→`<=`) so that complementary guards share one atom.
fn canon(e: &Expr) -> (String, bool) {
    match e {
        Expr::Unary {
            op: UnOp::Not, arg, ..
        } => {
            let (k, p) = canon(arg);
            (k, !p)
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let (cop, flip) = match op {
                BinOp::Ne => (BinOp::Eq, true),
                BinOp::Ge => (BinOp::Lt, true),
                BinOp::Gt => (BinOp::Le, true),
                other => (*other, false),
            };
            (format!("({cop} {} {})", key(lhs), key(rhs)), !flip)
        }
        _ => (key(e), true),
    }
}

/// Constant folding for variable-free guards. `None` on division by a
/// zero divisor.
fn eval_const(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(c, _) => Some(*c),
        Expr::Var(..) => None,
        Expr::Unary { op, arg, .. } => {
            let a = eval_const(arg)?;
            Some(match op {
                UnOp::Neg => a.wrapping_neg(),
                UnOp::Not => i64::from(a == 0),
            })
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = eval_const(lhs)?;
            let r = eval_const(rhs)?;
            Some(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div => return l.checked_div(r),
                BinOp::Mod => return l.checked_rem(r),
                BinOp::Eq => i64::from(l == r),
                BinOp::Ne => i64::from(l != r),
                BinOp::Lt => i64::from(l < r),
                BinOp::Le => i64::from(l <= r),
                BinOp::Gt => i64::from(l > r),
                BinOp::Ge => i64::from(l >= r),
                BinOp::And => i64::from(l != 0 && r != 0),
                BinOp::Or => i64::from(l != 0 || r != 0),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract state and transitions
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Frame {
    /// Execute this node next.
    Run(u32),
    /// Re-evaluate this `while` node's guard; `u8` counts completed
    /// iterations of the current activation.
    Loop(u32, u8),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Task {
    frames: Vec<Frame>,
    parent: Option<u16>,
    pending: u16,
    done: bool,
    diverged: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    tasks: Vec<Task>,
    sems: Vec<u8>,
    vals: Vec<i8>,
}

/// A state paired with its FNV-1a fingerprint, computed exactly once.
///
/// Every visited-set probe used to re-hash the full state (tasks, frames,
/// semaphores, atoms) — twice per successor, once for `contains` and once
/// for `insert`. Caching the fingerprint makes each probe hash a single
/// `u64`, and the same fingerprint doubles as the shard index in the
/// parallel search.
#[derive(Clone)]
struct Hashed {
    state: State,
    hash: u64,
}

impl Hashed {
    fn new(state: State) -> Hashed {
        let hash = fnv64_of(&state);
        Hashed { state, hash }
    }
}

impl PartialEq for Hashed {
    fn eq(&self, other: &Hashed) -> bool {
        self.hash == other.hash && self.state == other.state
    }
}

impl Eq for Hashed {}

impl Hash for Hashed {
    fn hash<H: Hasher>(&self, hasher: &mut H) {
        hasher.write_u64(self.hash);
    }
}

/// Marks task `i` (and transitively its ancestors) done once it has no
/// frames and no pending children.
fn cascade(st: &mut State, mut i: usize) {
    loop {
        let t = &mut st.tasks[i];
        if !t.frames.is_empty() || t.pending != 0 || t.done || t.diverged {
            return;
        }
        t.done = true;
        match t.parent {
            Some(p) => {
                let p = p as usize;
                st.tasks[p].pending -= 1;
                i = p;
            }
            None => return,
        }
    }
}

/// Guard outcomes in the current state: `(truth, binding)` pairs, where
/// a binding fixes a previously-unknown stable atom for the whole path.
fn outcomes(st: &State, guard: Guard) -> Vec<(bool, Option<(u16, bool)>)> {
    match guard {
        Guard::Const(b) => vec![(b, None)],
        Guard::Unstable => vec![(true, None), (false, None)],
        Guard::Stable { atom, polarity } => match st.vals[atom as usize] {
            -1 => vec![
                (polarity, Some((atom, true))),
                (!polarity, Some((atom, false))),
            ],
            v => vec![((v == 1) == polarity, None)],
        },
    }
}

/// Successor states from stepping task `i` once. An unsatisfiable
/// `wait` yields no successor (the task is blocked in this state).
fn step(ir: &Ir, st: &State, i: usize, overflow: &mut bool) -> Vec<State> {
    let frame = *st.tasks[i]
        .frames
        .last()
        .expect("eligible task has a frame");
    match frame {
        Frame::Run(id) => match &ir.nodes[id as usize] {
            Node::Leaf => {
                let mut s = st.clone();
                s.tasks[i].frames.pop();
                cascade(&mut s, i);
                vec![s]
            }
            Node::Wait { sem, .. } => {
                if st.sems[*sem as usize] == 0 {
                    return Vec::new();
                }
                let mut s = st.clone();
                s.sems[*sem as usize] -= 1;
                s.tasks[i].frames.pop();
                cascade(&mut s, i);
                vec![s]
            }
            Node::Signal { sem } => {
                let mut s = st.clone();
                let c = &mut s.sems[*sem as usize];
                *c = (*c + 1).min(SEM_CAP);
                s.tasks[i].frames.pop();
                cascade(&mut s, i);
                vec![s]
            }
            Node::Seq { children } => {
                let mut s = st.clone();
                s.tasks[i].frames.pop();
                for &c in children.iter().rev() {
                    s.tasks[i].frames.push(Frame::Run(c));
                }
                cascade(&mut s, i);
                vec![s]
            }
            Node::Cobegin { children } => {
                if st.tasks.len() + children.len() > TASK_CAP {
                    *overflow = true;
                    return Vec::new();
                }
                let mut s = st.clone();
                s.tasks[i].frames.pop();
                s.tasks[i].pending = children.len() as u16;
                for &c in children {
                    s.tasks.push(Task {
                        frames: vec![Frame::Run(c)],
                        parent: Some(i as u16),
                        pending: 0,
                        done: false,
                        diverged: false,
                    });
                }
                let spawned = s.tasks.len() - children.len()..s.tasks.len();
                for j in spawned {
                    cascade(&mut s, j);
                }
                cascade(&mut s, i);
                vec![s]
            }
            Node::If {
                guard,
                then_,
                else_,
            } => {
                let mut succs = Vec::new();
                for (truth, bind) in outcomes(st, *guard) {
                    let mut s = st.clone();
                    if let Some((atom, v)) = bind {
                        s.vals[atom as usize] = i8::from(v);
                    }
                    s.tasks[i].frames.pop();
                    if truth {
                        s.tasks[i].frames.push(Frame::Run(*then_));
                    } else if let Some(e) = else_ {
                        s.tasks[i].frames.push(Frame::Run(*e));
                    }
                    cascade(&mut s, i);
                    succs.push(s);
                }
                succs
            }
            Node::While { .. } => loop_step(ir, st, i, id, 0),
        },
        Frame::Loop(id, k) => loop_step(ir, st, i, id, k),
    }
}

/// Evaluates a `while` guard (node `id`, `k` iterations into the
/// current activation) for task `i`.
fn loop_step(ir: &Ir, st: &State, i: usize, id: u32, k: u8) -> Vec<State> {
    let (guard, body, body_sync) = match &ir.nodes[id as usize] {
        Node::While {
            guard,
            body,
            body_sync,
        } => (*guard, *body, *body_sync),
        _ => unreachable!("loop frame on a non-while node"),
    };
    let mut succs = Vec::new();
    for (truth, bind) in outcomes(st, guard) {
        let mut s = st.clone();
        if let Some((atom, v)) = bind {
            s.vals[atom as usize] = i8::from(v);
        }
        if !truth {
            s.tasks[i].frames.pop();
            cascade(&mut s, i);
            succs.push(s);
            continue;
        }
        if !body_sync {
            // The body cannot synchronize. If the guard is pinned true
            // (stable or constant), the task spins forever: it stays
            // enabled, so it can never be part of a deadlock. If the
            // guard is unstable, "spin a while then exit" is abstractly
            // identical to exiting now, so the false branch above
            // already covers every behavior that matters.
            if matches!(guard, Guard::Stable { .. } | Guard::Const(_)) {
                s.tasks[i].frames.clear();
                s.tasks[i].diverged = true;
                succs.push(s);
            }
            continue;
        }
        if k < LOOP_CAP {
            let top = s.tasks[i].frames.len() - 1;
            s.tasks[i].frames[top] = Frame::Loop(id, k + 1);
            s.tasks[i].frames.push(Frame::Run(body));
            succs.push(s);
        } else {
            // Enough unrolling: treat the task as spinning (enabled
            // forever). This forgets signals from later iterations, so
            // SF010 is a heuristic, not a proof, for such loops.
            s.tasks[i].frames.clear();
            s.tasks[i].diverged = true;
            succs.push(s);
        }
    }
    succs
}

// ---------------------------------------------------------------------------
// Blocking graph (SF011)
// ---------------------------------------------------------------------------

/// Finds a cycle of zero-initialized semaphores in which each member is
/// only ever signaled after a `wait` on another member has succeeded.
/// Returns the cycle members (rotation-normalized to start at the
/// smallest id) or `None`.
fn circular_handoff(program: &Program) -> Option<Vec<VarId>> {
    let mut sites: Vec<(VarId, BTreeSet<VarId>)> = Vec::new();
    must_waited(&program.body, &BTreeSet::new(), &mut sites);

    let mut deps: BTreeMap<VarId, BTreeSet<VarId>> = BTreeMap::new();
    for (sem, set) in sites {
        match deps.entry(sem) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(set);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get().intersection(&set).copied().collect();
                *e.get_mut() = merged;
            }
        }
    }
    deps.retain(|&sem, _| program.symbols.info(sem).init == 0);
    let nodes: BTreeSet<VarId> = deps.keys().copied().collect();
    let edges: BTreeMap<VarId, Vec<VarId>> = deps
        .into_iter()
        .map(|(s, ds)| (s, ds.into_iter().filter(|t| nodes.contains(t)).collect()))
        .collect();

    let mut color: BTreeMap<VarId, u8> = BTreeMap::new();
    let mut path: Vec<VarId> = Vec::new();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) == 0 {
            if let Some(mut cycle) = dfs(start, &edges, &mut color, &mut path) {
                // Rotate so the smallest id comes first (deterministic).
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| **v)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min);
                return Some(cycle);
            }
        }
    }
    None
}

fn dfs(
    v: VarId,
    edges: &BTreeMap<VarId, Vec<VarId>>,
    color: &mut BTreeMap<VarId, u8>,
    path: &mut Vec<VarId>,
) -> Option<Vec<VarId>> {
    color.insert(v, 1);
    path.push(v);
    for &w in edges.get(&v).map(|e| e.as_slice()).unwrap_or(&[]) {
        match color.get(&w).copied().unwrap_or(0) {
            1 => {
                let pos = path.iter().position(|&p| p == w).unwrap_or(0);
                return Some(path[pos..].to_vec());
            }
            0 => {
                if let Some(c) = dfs(w, edges, color, path) {
                    return Some(c);
                }
            }
            _ => {}
        }
    }
    path.pop();
    color.insert(v, 2);
    None
}

/// Forward must-analysis: `inset` is the set of semaphores that have
/// definitely been waited on; every `signal` site records its inset.
fn must_waited(
    stmt: &Stmt,
    inset: &BTreeSet<VarId>,
    sites: &mut Vec<(VarId, BTreeSet<VarId>)>,
) -> BTreeSet<VarId> {
    match stmt {
        Stmt::Skip(_) | Stmt::Assign { .. } => inset.clone(),
        Stmt::Wait { sem, .. } => {
            let mut s = inset.clone();
            s.insert(*sem);
            s
        }
        Stmt::Signal { sem, .. } => {
            sites.push((*sem, inset.clone()));
            inset.clone()
        }
        Stmt::Seq { stmts, .. } => {
            let mut cur = inset.clone();
            for s in stmts {
                cur = must_waited(s, &cur, sites);
            }
            cur
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let t = must_waited(then_branch, inset, sites);
            let e = match else_branch {
                Some(e) => must_waited(e, inset, sites),
                None => inset.clone(),
            };
            t.intersection(&e).copied().collect()
        }
        Stmt::While { body, .. } => {
            // The body may run zero times: record its signal sites but
            // contribute nothing to the after-set.
            let _ = must_waited(body, inset, sites);
            inset.clone()
        }
        Stmt::Cobegin { branches, .. } => {
            let mut out = inset.clone();
            for b in branches {
                out.extend(must_waited(b, inset, sites));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    const SEM_CHANNEL: &str = "var x, y : integer; sem : semaphore;
cobegin
  if x = 0 then signal(sem)
||
  begin wait(sem); y := 0 end
coend";

    const FIG3: &str = "var x, y, m : integer;
    modify, modified, read, done : semaphore initially(0);
cobegin
  begin
    m := 0;
    if x = 0 then begin signal(modify); wait(modified) end;
    signal(read); wait(done);
    if x # 0 then begin signal(modify); wait(modified) end
  end
||
  begin wait(modify); m := 1; signal(modified) end
||
  begin wait(read); y := m; signal(done) end
coend";

    fn analysis(src: &str) -> DeadlockReport {
        deadlock_analysis(&parse(src).unwrap(), 100_000)
    }

    fn run_pass(src: &str) -> Vec<Diag> {
        let p = parse(src).unwrap();
        let mut out = Vec::new();
        DeadlockPass::default().run(&p, &mut out);
        out
    }

    #[test]
    fn sem_channel_is_deadlock_capable() {
        let r = analysis(SEM_CHANNEL);
        assert!(!r.truncated);
        assert!(r.may_deadlock);
        assert_eq!(r.blocked_waits.len(), 1);
    }

    #[test]
    fn fig3_is_deadlock_free() {
        // Requires complement canonicalization: `x = 0` and `x # 0`
        // must share one atom, or the infeasible both-ifs-skipped path
        // would block the helper processes.
        let r = analysis(FIG3);
        assert!(!r.truncated, "{} states", r.states);
        assert!(!r.may_deadlock, "{:?}", r.blocked_waits);
    }

    #[test]
    fn sequential_program_cannot_deadlock() {
        let r = analysis("var a, b : integer; begin a := b; while a = 0 do b := b + 1 end");
        assert!(!r.truncated && !r.may_deadlock);
    }

    #[test]
    fn unsatisfiable_wait_deadlocks() {
        let r = analysis("var s : semaphore; wait(s)");
        assert!(r.may_deadlock);
    }

    #[test]
    fn initially_positive_wait_is_fine() {
        let r = analysis("var s : semaphore initially(1); wait(s)");
        assert!(!r.may_deadlock);
    }

    #[test]
    fn balanced_handoff_is_clean() {
        let r = analysis(
            "var s : semaphore; x : integer;
             cobegin begin x := 1; signal(s) end || begin wait(s); x := 2 end coend",
        );
        assert!(!r.truncated && !r.may_deadlock);
    }

    #[test]
    fn stable_spin_loop_is_not_a_deadlock() {
        // A task spinning on a stable guard stays enabled forever; the
        // runtime model does not call that a deadlock.
        let r = analysis(
            "var x : integer; s : semaphore initially(1);
             cobegin while x = 0 do x := 1 || wait(s) coend",
        );
        assert!(!r.may_deadlock, "{:?}", r.blocked_waits);
    }

    #[test]
    fn crossed_handoff_is_sf011_and_sf010() {
        let diags = run_pass(
            "var a, b : semaphore; x : integer;
             cobegin begin wait(a); signal(b) end || begin wait(b); signal(a) end coend",
        );
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"SF011"), "{codes:?}");
        assert!(codes.contains(&"SF010"), "{codes:?}");
    }

    #[test]
    fn cancellation_truncates_without_a_verdict() {
        let r = deadlock_analysis_with(&parse(FIG3).unwrap(), 100_000, &|| true);
        assert!(r.cancelled);
        assert!(r.truncated);
        assert!(!r.may_deadlock, "no verdict once cancelled");
    }

    #[test]
    fn fig3_handoff_graph_is_acyclic() {
        assert_eq!(circular_handoff(&parse(FIG3).unwrap()), None);
    }

    #[test]
    fn pass_reports_sf010_with_sem_name() {
        let diags = run_pass(SEM_CHANNEL);
        let sf010: Vec<_> = diags.iter().filter(|d| d.code == "SF010").collect();
        assert_eq!(sf010.len(), 1);
        assert!(
            sf010[0].message.contains("`wait(sem)`"),
            "{}",
            sf010[0].message
        );
    }

    #[test]
    fn cached_hash_is_consistent_with_recomputation() {
        let ir = Ir::build(&parse(FIG3).unwrap());
        let init = initial_state(&ir);
        let a = Hashed::new(init.clone());
        let b = Hashed::new(init);
        // Equal states cache equal fingerprints, and the cache agrees
        // with a fresh recomputation over the full state.
        assert_eq!(a.hash, b.hash);
        assert!(a == b);
        assert_eq!(a.hash, fnv64_of(&a.state));
        // The `Hash` impl feeds probes only the cached word.
        assert_eq!(fnv64_of(&a), fnv64_of(&a.hash));
    }

    #[test]
    fn parallel_analysis_matches_sequential() {
        for src in [SEM_CHANNEL, FIG3] {
            let p = parse(src).unwrap();
            let seq = deadlock_analysis(&p, 100_000);
            for threads in [2, 4] {
                let par = deadlock_analysis_threads(&p, 100_000, threads, &|| false);
                assert_eq!(par.may_deadlock, seq.may_deadlock);
                assert_eq!(par.truncated, seq.truncated);
                assert_eq!(par.blocked_waits, seq.blocked_waits);
                assert_eq!(par.states, seq.states, "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_cancellation_truncates_without_a_verdict() {
        let r = deadlock_analysis_threads(&parse(FIG3).unwrap(), 100_000, 4, &|| true);
        assert!(r.cancelled);
        assert!(r.truncated);
        assert!(!r.may_deadlock, "no verdict once cancelled");
    }
}
