//! `secflow-analyze` — multi-pass static analysis and lint.
//!
//! The paper's thesis is that information-control guarantees belong at
//! *compile time*. This crate extends that stance beyond flow
//! certification: a [`PassManager`] runs pluggable [`AnalysisPass`]es
//! over a parsed [`Program`] and collects unified
//! [`Diag`](secflow_lang::Diag) diagnostics (stable `SF`-codes,
//! severities, spans, fix hints) with deterministic ordering and dedup.
//!
//! # Passes and diagnostic codes
//!
//! | Code | Severity | Pass | Meaning |
//! |------|----------|------|---------|
//! | SF000 | error   | (manager) | an analysis pass panicked; its findings were discarded |
//! | SF001 | warning | sem-statics | semaphore declared but never used |
//! | SF002 | warning | sem-statics | semaphore signaled but never waited on |
//! | SF003 | error   | sem-statics | `wait` on a never-signaled, zero-initialized semaphore |
//! | SF004 | warning | sem-statics | a `cobegin` performs more unconditional waits than signals can ever occur |
//! | SF010 | warning | deadlock | some schedule/input reaches a state where this `wait` blocks forever |
//! | SF011 | warning | deadlock | circular signal-after-wait dependency between semaphores |
//! | SF012 | info    | deadlock | abstract exploration truncated; no deadlock verdict |
//! | SF020 | warning | dataflow | variable may be read before its first assignment |
//! | SF021 | warning | dataflow | dead store: definitely overwritten before any read |
//! | SF030 | info    | provenance | `wait` raises the global flow class (§2.2 synchronization channel) |
//! | SF031 | info    | provenance | loop guard raises the global flow class (termination channel) |
//! | SF032 | info    | provenance | `if` guard joins the global flow because a branch has one |
//! | SF040 | warning | atomicity | action references ≥ 2 variables writable by sibling processes (§2.0) |
//! | SF050 | warning | race | read/write race: sibling processes access a variable with no common semaphore held |
//! | SF051 | warning | race | write/write race: sibling processes both assign a variable with no common semaphore held |
//! | SF052 | info    | race | footprint summary: parallel action pairs and how many are independent |
//!
//! Lint complements `certify`: certification needs a security binding
//! and answers "does classified information leak?"; lint needs only the
//! program and answers "is the synchronization structure sane, and
//! where would a leak come from?".
//!
//! # Examples
//!
//! ```
//! use secflow_analyze::analyze;
//! use secflow_lang::parse;
//!
//! // The §2.2 covert channel: statically deadlock-capable (take the
//! // x ≠ 0 branch and the second process waits forever).
//! let p = parse(
//!     "var x, y : integer; sem : semaphore;
//!      cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
//! )
//! .unwrap();
//! let report = analyze(&p);
//! assert!(report.diags.iter().any(|d| d.code == "SF010"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod dataflow;
pub mod deadlock;
pub mod footprint;
pub mod pass;
pub mod provenance;
pub mod sem_statics;

pub use atomicity::AtomicityPass;
pub use dataflow::DataflowPass;
pub use deadlock::{
    deadlock_analysis, deadlock_analysis_threads, deadlock_analysis_with, DeadlockPass,
    DeadlockReport,
};
pub use footprint::{mutex_candidates, race_analysis, Race, RacePass, RaceReport};
pub use pass::{AnalysisPass, AnalysisReport, PassManager};
pub use provenance::ProvenancePass;
pub use sem_statics::SemStaticsPass;

use secflow_lang::Program;

/// Runs the default pass pipeline over `program`.
///
/// Equivalent to `PassManager::with_default_passes().run(program)`.
pub fn analyze(program: &Program) -> AnalysisReport {
    PassManager::with_default_passes().run(program)
}

/// [`analyze`] with a cooperative cancellation hook (see
/// [`PassManager::run_with`]).
pub fn analyze_with(program: &Program, should_stop: &(dyn Fn() -> bool + Sync)) -> AnalysisReport {
    PassManager::with_default_passes().run_with(program, should_stop)
}

/// [`analyze_with`] with the deadlock pass's state-space exploration
/// spread over `threads` work-stealing workers (1 = sequential). The
/// parallel exploration merges commutatively, so the report is identical
/// for every thread count.
pub fn analyze_threads(
    program: &Program,
    threads: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> AnalysisReport {
    PassManager::with_default_passes_threads(threads).run_with(program, should_stop)
}
