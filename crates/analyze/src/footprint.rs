//! Static footprint & race analysis (SF050–SF052).
//!
//! The per-statement read/write/semaphore-op footprints — the same
//! tables the explorer's partial-order reduction consumes (they live in
//! [`secflow_runtime::footprint`] so the runtime can use them without a
//! dependency cycle; re-exported here) — double as a classic static
//! race detector:
//!
//! - two statements in *sibling* branches of a `cobegin` may execute
//!   concurrently;
//! - a pair touching the same data variable with at least one write is
//!   a **conflict**;
//! - a conflict is a **race** unless both sites definitely hold a
//!   common *mutex-candidate* semaphore (lockset reasoning: a semaphore
//!   with initial value 1 whose every `signal` is bracketed by a
//!   preceding `wait` in the same process behaves as a mutex, so two
//!   critical sections on it cannot overlap).
//!
//! The lockset is an **under**-approximation of the semaphores held and
//! the sibling relation an **over**-approximation of concurrency, so
//! the detector is sound — it never misses a real race — at the price
//! of precision: ordering established by *handoff* semaphores (initial
//! value 0, `signal` in one process releasing a `wait` in another, like
//! Figure 3's `modify`/`modified` protocol) is invisible to locksets,
//! so cleanly sequenced handoffs are still flagged. The corpus
//! cross-validation test pins both directions: no dynamic race goes
//! unflagged, and the false-positive gap is exactly the handoff
//! programs.
//!
//! Codes: **SF050** read/write race, **SF051** write/write race,
//! **SF052** informational footprint/independence summary for
//! concurrent programs.

use std::collections::{BTreeMap, BTreeSet};

use secflow_lang::{Diag, Program, Span, Stmt, VarId, VarKind};

pub use secflow_runtime::footprint::{action_footprint, Footprint, FootprintTable, VarSet};

use crate::pass::AnalysisPass;

/// One potential data race between sibling processes. Spans are
/// ordered (`first` ≤ `second` by position) and name the two
/// conflicting access sites.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Race {
    /// The shared data variable.
    pub var: VarId,
    /// The earlier access site.
    pub first: Span,
    /// The later access site.
    pub second: Span,
    /// `true` for write/write (SF051), `false` for read/write (SF050).
    pub write_write: bool,
}

impl Race {
    fn key(&self) -> (u32, u32, u32, u32, usize, bool) {
        (
            self.first.start,
            self.first.end,
            self.second.start,
            self.second.end,
            self.var.index(),
            self.write_write,
        )
    }
}

impl PartialOrd for Race {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Race {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Everything the footprint pass learned about one program.
#[derive(Clone, Default, Debug)]
pub struct RaceReport {
    /// Unsynchronized conflicts, deduped and ordered.
    pub races: Vec<Race>,
    /// Pairs of atomic actions in sibling branches (both with
    /// non-empty footprints).
    pub parallel_pairs: usize,
    /// How many of those pairs are independent (footprints do not
    /// conflict) — the fuel partial-order reduction runs on.
    pub independent_pairs: usize,
    /// Conflicting pairs suppressed because both sides hold a common
    /// mutex-candidate semaphore.
    pub lock_protected: usize,
}

/// A definite-hold count per semaphore (how many unmatched `wait`s
/// dominate the current point on every path).
type Held = BTreeMap<VarId, u32>;

fn pointwise_min(a: &Held, b: &Held) -> Held {
    a.iter()
        .filter_map(|(v, ca)| {
            let cb = b.get(v).copied().unwrap_or(0);
            let m = (*ca).min(cb);
            (m > 0).then_some((*v, m))
        })
        .collect()
}

/// Semaphores a process at this point *definitely* holds, filtered to
/// the mutex candidates.
fn lockset(held: &Held, mutexes: &BTreeSet<VarId>) -> BTreeSet<VarId> {
    held.keys()
        .filter(|v| mutexes.contains(v))
        .copied()
        .collect()
}

/// Pure transfer function: how `stmt` changes the definite-hold map,
/// recording semaphores that are `signal`ed while not definitely held
/// (those cannot be mutexes). Used both for mutex-candidate discovery
/// and for the while-loop entry fixpoint.
fn transfer(stmt: &Stmt, held: &mut Held, unbracketed: &mut BTreeSet<VarId>) {
    match stmt {
        Stmt::Skip(_) | Stmt::Assign { .. } => {}
        Stmt::Wait { sem, .. } => {
            *held.entry(*sem).or_insert(0) += 1;
        }
        Stmt::Signal { sem, .. } => match held.get_mut(sem) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    held.remove(sem);
                }
            }
            _ => {
                unbracketed.insert(*sem);
            }
        },
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            let mut h1 = held.clone();
            transfer(then_branch, &mut h1, unbracketed);
            let mut h2 = held.clone();
            if let Some(eb) = else_branch {
                transfer(eb, &mut h2, unbracketed);
            }
            *held = pointwise_min(&h1, &h2);
        }
        Stmt::While { body, .. } => {
            *held = loop_entry(body, held, unbracketed);
        }
        Stmt::Seq { stmts, .. } => {
            for s in stmts {
                transfer(s, held, unbracketed);
            }
        }
        Stmt::Cobegin { branches, .. } => {
            // Children start with an empty lockset (a parent's hold
            // does not mutually exclude the siblings from each other),
            // and anything they wait/signal on invalidates the
            // parent's definite holds.
            let mut touched = BTreeSet::new();
            for b in branches {
                let mut hb = Held::new();
                transfer(b, &mut hb, unbracketed);
                b.walk(&mut |s| {
                    if let Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } = s {
                        touched.insert(*sem);
                    }
                });
            }
            held.retain(|v, _| !touched.contains(v));
        }
    }
}

/// The stable (greatest) definite-hold map at a loop body's entry: the
/// pointwise minimum over all iterations, computed as a descending
/// fixpoint (counts only shrink, so this terminates fast; a safety cap
/// degrades to the empty map, which is sound).
fn loop_entry(body: &Stmt, pre: &Held, unbracketed: &mut BTreeSet<VarId>) -> Held {
    let mut entry = pre.clone();
    for _ in 0..16 {
        let mut exit = entry.clone();
        transfer(body, &mut exit, unbracketed);
        let next = pointwise_min(&entry, &exit);
        if next == entry {
            return entry;
        }
        entry = next;
    }
    Held::new()
}

/// Semaphores that statically behave as mutexes: initial value 1, and
/// every `signal` on them is dominated by an unmatched `wait` in the
/// same process. Holding one at two sites proves the sites cannot
/// overlap in time.
pub fn mutex_candidates(program: &Program) -> BTreeSet<VarId> {
    let mut unbracketed = BTreeSet::new();
    let mut held = Held::new();
    transfer(&program.body, &mut held, &mut unbracketed);
    program
        .symbols
        .semaphores()
        .into_iter()
        .filter(|&s| program.symbols.info(s).init == 1 && !unbracketed.contains(&s))
        .collect()
}

/// One data-variable access at one site, with the locks definitely
/// held there.
#[derive(Clone, Debug)]
struct Access {
    var: VarId,
    write: bool,
    span: Span,
    locks: BTreeSet<VarId>,
}

struct Collector<'p> {
    program: &'p Program,
    table: FootprintTable,
    mutexes: BTreeSet<VarId>,
    races: BTreeSet<Race>,
    parallel_pairs: usize,
    independent_pairs: usize,
    lock_protected: usize,
}

impl Collector<'_> {
    /// Collects the data accesses of `stmt`'s subtree (threading the
    /// definite-hold map) and, at every `cobegin`, cross-checks sibling
    /// branches for conflicts.
    fn walk(&mut self, stmt: &Stmt, held: &mut Held) -> Vec<Access> {
        let mut unbracketed = BTreeSet::new(); // discovery already done
        match stmt {
            Stmt::Skip(_) => Vec::new(),
            Stmt::Assign { var, expr, span } => {
                let locks = lockset(held, &self.mutexes);
                let mut accs = vec![Access {
                    var: *var,
                    write: true,
                    span: *span,
                    locks: locks.clone(),
                }];
                expr.for_each_var(&mut |v| {
                    accs.push(Access {
                        var: v,
                        write: false,
                        span: expr.span(),
                        locks: locks.clone(),
                    });
                });
                accs
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let locks = lockset(held, &self.mutexes);
                let mut accs: Vec<Access> = Vec::new();
                cond.for_each_var(&mut |v| {
                    accs.push(Access {
                        var: v,
                        write: false,
                        span: cond.span(),
                        locks: locks.clone(),
                    });
                });
                let mut h1 = held.clone();
                accs.extend(self.walk(then_branch, &mut h1));
                let mut h2 = held.clone();
                if let Some(eb) = else_branch {
                    accs.extend(self.walk(eb, &mut h2));
                }
                *held = pointwise_min(&h1, &h2);
                accs
            }
            Stmt::While { cond, body, .. } => {
                // Guard and body run under the loop's stable lockset.
                let entry = loop_entry(body, held, &mut unbracketed);
                let locks = lockset(&entry, &self.mutexes);
                let mut accs: Vec<Access> = Vec::new();
                cond.for_each_var(&mut |v| {
                    accs.push(Access {
                        var: v,
                        write: false,
                        span: cond.span(),
                        locks: locks.clone(),
                    });
                });
                accs.extend(self.walk(body, &mut entry.clone()));
                *held = entry;
                accs
            }
            Stmt::Seq { stmts, .. } => {
                let mut accs = Vec::new();
                for s in stmts {
                    accs.extend(self.walk(s, held));
                }
                accs
            }
            Stmt::Wait { sem, .. } => {
                *held.entry(*sem).or_insert(0) += 1;
                Vec::new()
            }
            Stmt::Signal { sem, .. } => {
                if let Some(c) = held.get_mut(sem) {
                    *c -= 1;
                    if *c == 0 {
                        held.remove(sem);
                    }
                }
                Vec::new()
            }
            Stmt::Cobegin { branches, .. } => {
                let branch_accs: Vec<Vec<Access>> = branches
                    .iter()
                    .map(|b| self.walk(b, &mut Held::new()))
                    .collect();
                for i in 0..branches.len() {
                    for j in i + 1..branches.len() {
                        self.cross_check(&branch_accs[i], &branch_accs[j]);
                        self.count_pairs(&branches[i], &branches[j]);
                    }
                }
                let mut touched = BTreeSet::new();
                for b in branches {
                    b.walk(&mut |s| {
                        if let Stmt::Wait { sem, .. } | Stmt::Signal { sem, .. } = s {
                            touched.insert(*sem);
                        }
                    });
                }
                held.retain(|v, _| !touched.contains(v));
                branch_accs.into_iter().flatten().collect()
            }
        }
    }

    /// Conflict + lockset check for every access pair across two
    /// sibling branches.
    fn cross_check(&mut self, lhs: &[Access], rhs: &[Access]) {
        for a in lhs {
            for b in rhs {
                if a.var != b.var
                    || !(a.write || b.write)
                    || self.program.symbols.kind(a.var) != VarKind::Data
                {
                    continue;
                }
                if a.locks.intersection(&b.locks).next().is_some() {
                    self.lock_protected += 1;
                    continue;
                }
                let (first, second) = if (a.span.start, a.span.end) <= (b.span.start, b.span.end) {
                    (a.span, b.span)
                } else {
                    (b.span, a.span)
                };
                self.races.insert(Race {
                    var: a.var,
                    first,
                    second,
                    write_write: a.write && b.write,
                });
            }
        }
    }

    /// SF052 statistics: action pairs across two sibling subtrees and
    /// how many are independent per the explorer's own conflict test.
    fn count_pairs(&mut self, lhs: &Stmt, rhs: &Stmt) {
        let mut left = Vec::new();
        lhs.walk(&mut |s| {
            if !self.table.action(s).is_empty() {
                left.push(self.table.action(s));
            }
        });
        rhs.walk(&mut |s| {
            let b = self.table.action(s);
            if b.is_empty() {
                return;
            }
            for a in &left {
                self.parallel_pairs += 1;
                if !a.conflicts(&b) {
                    self.independent_pairs += 1;
                }
            }
        });
    }
}

/// Runs the full footprint/race analysis over one program.
pub fn race_analysis(program: &Program) -> RaceReport {
    let mut c = Collector {
        program,
        table: FootprintTable::new(program),
        mutexes: mutex_candidates(program),
        races: BTreeSet::new(),
        parallel_pairs: 0,
        independent_pairs: 0,
        lock_protected: 0,
    };
    c.walk(&program.body, &mut Held::new());
    RaceReport {
        races: c.races.into_iter().collect(),
        parallel_pairs: c.parallel_pairs,
        independent_pairs: c.independent_pairs,
        lock_protected: c.lock_protected,
    }
}

/// The SF05x race pass: statement footprints, lockset filtering, and
/// the independence summary the partial-order reduction runs on.
pub struct RacePass;

impl AnalysisPass for RacePass {
    fn name(&self) -> &'static str {
        "race"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        let report = race_analysis(program);
        for race in &report.races {
            let name = program.symbols.name(race.var);
            if race.write_write {
                out.push(
                    Diag::warning(
                        "SF051",
                        format!("write/write race: sibling processes both assign `{name}` with no common semaphore held"),
                        race.first,
                    )
                    .with_note("conflicting write here", race.second),
                );
            } else {
                out.push(
                    Diag::warning(
                        "SF050",
                        format!("read/write race: sibling processes access `{name}` concurrently with no common semaphore held"),
                        race.first,
                    )
                    .with_note("conflicting access here", race.second),
                );
            }
        }
        if program.body.is_concurrent() {
            // No percentage when there are no pairs to take a ratio of
            // (0/0 is not "100% independent").
            let pct = match report.parallel_pairs {
                0 => String::new(),
                n => format!(" ({}%)", report.independent_pairs * 100 / n),
            };
            out.push(Diag::info(
                "SF052",
                format!(
                    "footprint: {} parallel action pairs, {} independent{pct}, {} lock-protected, {} racy",
                    report.parallel_pairs,
                    report.independent_pairs,
                    report.lock_protected,
                    report.races.len()
                ),
                program.body.span(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn codes(program: &Program) -> Vec<&'static str> {
        let mut out = Vec::new();
        RacePass.run(program, &mut out);
        out.sort_by_key(|d| d.sort_key().0);
        out.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn write_write_race_is_sf051() {
        let p = parse("var x : integer; cobegin x := 1 || x := 2 coend").unwrap();
        let r = race_analysis(&p);
        assert_eq!(r.races.len(), 1);
        assert!(r.races[0].write_write);
        assert!(codes(&p).contains(&"SF051"));
    }

    #[test]
    fn read_write_race_is_sf050() {
        let p = parse("var x, y : integer; cobegin y := x || x := 1 coend").unwrap();
        let r = race_analysis(&p);
        assert!(r.races.iter().any(|x| !x.write_write));
        assert!(codes(&p).contains(&"SF050"));
    }

    #[test]
    fn mutex_semaphore_suppresses_the_race() {
        let p = parse(
            "var x : integer; m : semaphore initially(1);
             cobegin begin wait(m); x := x + 1; signal(m) end
                  || begin wait(m); x := x + 2; signal(m) end coend",
        )
        .unwrap();
        assert_eq!(mutex_candidates(&p).len(), 1);
        let r = race_analysis(&p);
        assert!(r.races.is_empty(), "{:?}", r.races);
        assert!(r.lock_protected > 0);
    }

    #[test]
    fn handoff_semaphore_is_not_a_mutex() {
        // init 0 + cross-process signal: the lockset must not trust it.
        let p = parse(
            "var a, b : integer; s : semaphore;
             cobegin begin a := 1; signal(s) end || begin wait(s); b := a end coend",
        )
        .unwrap();
        assert!(mutex_candidates(&p).is_empty());
        // Sound over-report: the handoff orders the accesses, but the
        // lockset cannot see it (documented precision gap).
        assert!(!race_analysis(&p).races.is_empty());
    }

    #[test]
    fn unbracketed_signal_disqualifies_the_mutex() {
        let p = parse(
            "var x : integer; m : semaphore initially(1);
             cobegin begin wait(m); x := 1; signal(m) end
                  || begin signal(m); wait(m); x := 2 end coend",
        )
        .unwrap();
        assert!(mutex_candidates(&p).is_empty());
        assert!(!race_analysis(&p).races.is_empty());
    }

    #[test]
    fn disjoint_processes_are_silent_and_fully_independent() {
        let p = parse("var a, b : integer; cobegin a := 1 || b := 2 coend").unwrap();
        let r = race_analysis(&p);
        assert!(r.races.is_empty());
        assert_eq!(r.parallel_pairs, 1);
        assert_eq!(r.independent_pairs, 1);
        let mut out = Vec::new();
        RacePass.run(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "SF052");
    }

    #[test]
    fn zero_parallel_pairs_reports_no_percentage() {
        // Control-only branches have no action pairs; 0/0 must not read
        // as "(100%)" independent.
        let p = parse("var a : integer; cobegin skip || skip coend").unwrap();
        let mut out = Vec::new();
        RacePass.run(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "SF052");
        assert!(
            out[0]
                .message
                .contains("0 parallel action pairs, 0 independent,"),
            "{}",
            out[0].message
        );
        assert!(!out[0].message.contains('%'), "{}", out[0].message);
    }

    #[test]
    fn sequential_program_emits_nothing() {
        let p = parse("var a, b : integer; begin a := b; b := a end").unwrap();
        let mut out = Vec::new();
        RacePass.run(&p, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn nested_cobegin_races_across_levels() {
        let p = parse(
            "var x : integer;
             cobegin cobegin x := 1 || x := 2 coend || x := 3 coend",
        )
        .unwrap();
        let r = race_analysis(&p);
        // Three pairwise write/write conflicts.
        assert_eq!(r.races.len(), 3, "{:?}", r.races);
        assert!(r.races.iter().all(|x| x.write_write));
    }

    #[test]
    fn loop_body_keeps_the_lock_only_if_rebalanced() {
        let p = parse(
            "var x, i : integer; m : semaphore initially(1);
             cobegin
               while i < 3 do begin wait(m); x := x + 1; signal(m); i := i + 1 end
             ||
               begin wait(m); x := 9 ; signal(m) end
             coend",
        )
        .unwrap();
        let r = race_analysis(&p);
        assert!(
            r.races.is_empty(),
            "balanced critical section in a loop stays protected: {:?}",
            r.races
        );
    }
}
