//! The pass manager: pluggable analyses over one program, one report.

use std::panic::{self, AssertUnwindSafe};

use secflow_lang::span::LineIndex;
use secflow_lang::{Diag, Program, Severity};

use crate::atomicity::AtomicityPass;
use crate::dataflow::DataflowPass;
use crate::deadlock::DeadlockPass;
use crate::footprint::RacePass;
use crate::provenance::ProvenancePass;
use crate::sem_statics::SemStaticsPass;

/// One static analysis over a parsed program.
///
/// Passes push diagnostics into a shared sink; the [`PassManager`]
/// sorts and dedups afterwards, so passes never need to coordinate
/// ordering with each other.
pub trait AnalysisPass {
    /// Short kebab-case pass name (for `--help` and logs).
    fn name(&self) -> &'static str;

    /// Runs the pass, appending findings to `out`.
    fn run(&self, program: &Program, out: &mut Vec<Diag>);

    /// Runs the pass with a cooperative cancellation hook. Passes that
    /// can run long (e.g. state-space exploration) should override this
    /// and poll `should_stop`; the default ignores the hook. The hook is
    /// `Sync` so passes may share it across worker threads (the deadlock
    /// pass polls it from every exploration worker).
    fn run_with(
        &self,
        program: &Program,
        out: &mut Vec<Diag>,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) {
        let _ = should_stop;
        self.run(program, out);
    }
}

/// Runs a configurable sequence of [`AnalysisPass`]es.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl PassManager {
    /// An empty manager; register passes with [`register`](Self::register).
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new() }
    }

    /// The standard pipeline: semaphore statics, static deadlock
    /// detection, dataflow, global-flow provenance, atomicity, and the
    /// footprint/race analysis.
    pub fn with_default_passes() -> PassManager {
        PassManager::with_default_passes_threads(1)
    }

    /// [`with_default_passes`](Self::with_default_passes) with the
    /// deadlock exploration spread over `threads` work-stealing workers
    /// (1 = the sequential search).
    pub fn with_default_passes_threads(threads: usize) -> PassManager {
        let mut pm = PassManager::new();
        pm.register(Box::new(SemStaticsPass));
        pm.register(Box::new(DeadlockPass {
            threads,
            ..DeadlockPass::default()
        }));
        pm.register(Box::new(DataflowPass));
        pm.register(Box::new(ProvenancePass));
        pm.register(Box::new(AtomicityPass));
        pm.register(Box::new(RacePass));
        pm
    }

    /// Appends a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn AnalysisPass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and collects a sorted, deduped report.
    pub fn run(&self, program: &Program) -> AnalysisReport {
        self.run_with(program, &|| false)
    }

    /// [`run`](Self::run) with a cooperative cancellation hook.
    ///
    /// Each pass is isolated with `catch_unwind`: a panicking pass
    /// degrades to one `SF000` internal-error diagnostic (its partial
    /// findings are discarded) instead of killing the whole pipeline.
    /// `should_stop` is checked between passes and forwarded to each
    /// pass's [`AnalysisPass::run_with`]; once it returns `true` the
    /// remaining passes are skipped and the report is marked
    /// `cancelled`.
    pub fn run_with(
        &self,
        program: &Program,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> AnalysisReport {
        let mut diags = Vec::new();
        let mut passes_run = 0usize;
        let mut pass_panics = 0usize;
        let mut cancelled = false;
        for pass in &self.passes {
            if should_stop() {
                cancelled = true;
                break;
            }
            let mut local = Vec::new();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                pass.run_with(program, &mut local, should_stop);
            }));
            passes_run += 1;
            match outcome {
                Ok(()) => diags.append(&mut local),
                Err(_) => {
                    pass_panics += 1;
                    diags.push(Diag::error(
                        "SF000",
                        format!("internal error: analysis pass `{}` panicked", pass.name()),
                        program.body.span(),
                    ));
                }
            }
        }
        let mut report = AnalysisReport::from_diags(diags);
        report.passes_run = passes_run;
        report.pass_panics = pass_panics;
        report.cancelled = cancelled;
        report
    }
}

/// The combined outcome of a pass pipeline.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AnalysisReport {
    /// All diagnostics, sorted by (span, code, message) and deduped.
    pub diags: Vec<Diag>,
    /// How many passes produced this report.
    pub passes_run: usize,
    /// How many passes panicked and were degraded to `SF000`.
    pub pass_panics: usize,
    /// `true` if cancellation skipped at least the remaining passes.
    pub cancelled: bool,
}

impl AnalysisReport {
    /// Builds a report from raw diagnostics: sorts deterministically
    /// (by span, then code, then message) and drops exact duplicates.
    pub fn from_diags(mut diags: Vec<Diag>) -> AnalysisReport {
        diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        diags.dedup();
        AnalysisReport {
            diags,
            passes_run: 0,
            pass_panics: 0,
            cancelled: false,
        }
    }

    /// `true` iff no pass found anything at all.
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// The most severe finding, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// Renders every diagnostic against `source` (human-readable, with
    /// carets). Empty string for a clean report.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(source));
        }
        out
    }

    /// Renders the report as JSON lines: one object per diagnostic with
    /// `code`, `severity`, `line`, `col`, `message`, plus `file` (when
    /// given), `fix` (when present) and `notes` (when non-empty).
    pub fn to_json_lines(&self, file: Option<&str>, source: &str) -> String {
        let idx = LineIndex::new(source);
        let mut out = String::new();
        for d in &self.diags {
            let (line, col) = idx.line_col(d.span.start);
            out.push('{');
            if let Some(file) = file {
                out.push_str(&format!("\"file\":\"{}\",", json_escape(file)));
            }
            out.push_str(&format!(
                "\"code\":\"{}\",\"severity\":\"{}\",\"line\":{line},\"col\":{col},\"message\":\"{}\"",
                json_escape(d.code),
                d.severity,
                json_escape(&d.message)
            ));
            if let Some(fix) = &d.fix {
                out.push_str(&format!(",\"fix\":\"{}\"", json_escape(fix)));
            }
            if !d.notes.is_empty() {
                out.push_str(",\"notes\":[");
                for (i, (msg, span)) in d.notes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let (nline, ncol) = idx.line_col(span.start);
                    out.push_str(&format!(
                        "{{\"message\":\"{}\",\"line\":{nline},\"col\":{ncol}}}",
                        json_escape(msg)
                    ));
                }
                out.push(']');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::{parse, Span};

    #[test]
    fn report_sorts_and_dedups() {
        let d1 = Diag::warning("SF021", "later", Span::new(9, 10));
        let d2 = Diag::error("SF003", "earlier", Span::new(2, 4));
        let report = AnalysisReport::from_diags(vec![d1.clone(), d2.clone(), d1.clone()]);
        assert_eq!(report.diags, vec![d2, d1]);
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn clean_report_renders_empty() {
        let report = AnalysisReport::from_diags(vec![]);
        assert!(report.clean());
        assert_eq!(report.render(""), "");
        assert_eq!(report.to_json_lines(None, ""), "");
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn json_lines_resolve_positions_and_escape() {
        let src = "ab\ncd";
        let d = Diag::warning("SF020", "quote \" and\nnewline", Span::new(3, 4))
            .with_fix("do\tless")
            .with_note("see also", Span::new(0, 1));
        let report = AnalysisReport::from_diags(vec![d]);
        let line = report.to_json_lines(Some("p.sf"), src);
        assert!(
            line.starts_with("{\"file\":\"p.sf\",\"code\":\"SF020\""),
            "{line}"
        );
        assert!(line.contains("\"line\":2,\"col\":1"), "{line}");
        assert!(line.contains("quote \\\" and\\nnewline"), "{line}");
        assert!(line.contains("\"fix\":\"do\\tless\""), "{line}");
        assert!(
            line.contains("\"notes\":[{\"message\":\"see also\",\"line\":1,\"col\":1}]"),
            "{line}"
        );
        assert!(line.ends_with("}\n"), "{line}");
    }

    struct PanicPass;

    impl AnalysisPass for PanicPass {
        fn name(&self) -> &'static str {
            "panic-injector"
        }

        fn run(&self, _program: &Program, out: &mut Vec<Diag>) {
            out.push(Diag::warning("SF999", "partial", Span::new(0, 1)));
            panic!("injected pass failure");
        }
    }

    #[test]
    fn panicking_pass_degrades_to_sf000() {
        let mut pm = PassManager::new();
        pm.register(Box::new(PanicPass));
        pm.register(Box::new(SemStaticsPass));
        let p = parse("var x : integer; x := 1").unwrap();
        // Silence the default panic hook's backtrace for the injected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = pm.run(&p);
        std::panic::set_hook(prev);
        assert_eq!(report.passes_run, 2);
        assert_eq!(report.pass_panics, 1);
        assert!(!report.cancelled);
        let codes: Vec<_> = report.diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"SF000"), "{codes:?}");
        assert!(
            !codes.contains(&"SF999"),
            "partial findings of a panicked pass are discarded: {codes:?}"
        );
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn cancellation_skips_remaining_passes() {
        let pm = PassManager::with_default_passes();
        let p = parse("var x : integer; x := 1").unwrap();
        let report = pm.run_with(&p, &|| true);
        assert!(report.cancelled);
        assert_eq!(report.passes_run, 0);
    }

    #[test]
    fn default_pipeline_runs_six_passes() {
        let pm = PassManager::with_default_passes();
        assert_eq!(
            pm.pass_names(),
            vec![
                "sem-statics",
                "deadlock",
                "dataflow",
                "provenance",
                "atomicity",
                "race"
            ]
        );
        let p = parse("var x : integer; x := 1").unwrap();
        let report = pm.run(&p);
        assert_eq!(report.passes_run, 6);
        assert!(report.clean(), "{:?}", report.diags);
    }

    #[test]
    fn report_is_independent_of_registration_order() {
        // The deterministic (span, code, message) sort means the final
        // report never depends on the order passes were registered —
        // pinned here so diagnostic ordering stays stable as passes are
        // added or reordered.
        let p = parse(
            "var x : integer; s : semaphore;
             cobegin begin x := 1; signal(s) end || begin wait(s); x := 2; wait(s) end coend",
        )
        .unwrap();
        let forward = PassManager::with_default_passes().run(&p);
        let mut reversed = PassManager::new();
        reversed.register(Box::new(RacePass));
        reversed.register(Box::new(AtomicityPass));
        reversed.register(Box::new(ProvenancePass));
        reversed.register(Box::new(DataflowPass));
        reversed.register(Box::new(DeadlockPass::default()));
        reversed.register(Box::new(SemStaticsPass));
        let backward = reversed.run(&p);
        assert!(!forward.clean(), "fixture should produce diagnostics");
        assert_eq!(forward.diags, backward.diags);
    }
}
