//! Dataflow checks over data variables (SF020, SF021).
//!
//! Two classical analyses adapted to the structured AST (no CFG needed):
//!
//! - **SF020, read-before-write**: a forward *must-have-been-assigned*
//!   analysis. Every variable starts at 0, so a read before the first
//!   assignment is usually a latent ordering bug. Variables that are
//!   never assigned anywhere are treated as program inputs and not
//!   reported; inside `cobegin`, reads of variables a *sibling* branch
//!   writes are silenced, since synchronization (as in Fig. 3) can
//!   legitimately order the sibling's write first.
//! - **SF021, dead store**: a backward *must-be-overwritten* analysis.
//!   An assignment is dead when every path to the end of the program
//!   overwrites the variable before reading it. The final store to each
//!   variable is live by definition (the end state is the program's
//!   output), and anything touched by a concurrent sibling is never
//!   considered dead.

use std::collections::BTreeSet;

use secflow_lang::{Diag, Expr, Program, Span, Stmt, VarId, VarKind};

use crate::pass::AnalysisPass;

/// Read-before-write and dead-store detection (SF020, SF021).
pub struct DataflowPass;

impl AnalysisPass for DataflowPass {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        let mut assigned: BTreeSet<VarId> = BTreeSet::new();
        program.body.walk(&mut |s| {
            if let Stmt::Assign { var, .. } = s {
                assigned.insert(*var);
            }
        });

        let fwd = Fwd { program, assigned };
        let mut must = BTreeSet::new();
        fwd.walk(&program.body, &mut must, &BTreeSet::new(), out);

        let bwd = Bwd { program };
        let mut dead = BTreeSet::new();
        bwd.walk(&program.body, &mut dead, &BTreeSet::new(), out);
    }
}

/// Calls `f` on every variable read in `e`, with its own span.
fn expr_reads(e: &Expr, f: &mut impl FnMut(VarId, Span)) {
    match e {
        Expr::Const(..) => {}
        Expr::Var(v, s) => f(*v, *s),
        Expr::Unary { arg, .. } => expr_reads(arg, f),
        Expr::Binary { lhs, rhs, .. } => {
            expr_reads(lhs, f);
            expr_reads(rhs, f);
        }
    }
}

/// Data variables written by `stmt` (assignment targets only).
fn written(stmt: &Stmt) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    stmt.walk(&mut |s| {
        if let Stmt::Assign { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

/// Data variables read or written by `stmt`.
fn touched(stmt: &Stmt, program: &Program) -> BTreeSet<VarId> {
    let mut out = written(stmt);
    stmt.for_each_read(&mut |v| {
        if program.symbols.kind(v) == VarKind::Data {
            out.insert(v);
        }
    });
    out
}

// ---------------------------------------------------------------------------
// SF020 — forward must-have-been-assigned
// ---------------------------------------------------------------------------

struct Fwd<'a> {
    program: &'a Program,
    /// Variables assigned somewhere in the program; never-assigned
    /// variables are inputs and are not reported.
    assigned: BTreeSet<VarId>,
}

impl Fwd<'_> {
    fn check(
        &self,
        e: &Expr,
        must: &BTreeSet<VarId>,
        silenced: &BTreeSet<VarId>,
        out: &mut Vec<Diag>,
    ) {
        expr_reads(e, &mut |v, span| {
            if self.program.symbols.kind(v) == VarKind::Data
                && self.assigned.contains(&v)
                && !must.contains(&v)
                && !silenced.contains(&v)
            {
                let name = self.program.symbols.name(v);
                out.push(Diag::warning(
                    "SF020",
                    format!(
                        "`{name}` may be read here before any assignment to it has \
                         executed (it would still hold its initial value 0)"
                    ),
                    span,
                ));
            }
        });
    }

    fn walk(
        &self,
        stmt: &Stmt,
        must: &mut BTreeSet<VarId>,
        silenced: &BTreeSet<VarId>,
        out: &mut Vec<Diag>,
    ) {
        match stmt {
            Stmt::Skip(_) | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
            Stmt::Assign { var, expr, .. } => {
                self.check(expr, must, silenced, out);
                must.insert(*var);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.check(cond, must, silenced, out);
                let mut t = must.clone();
                self.walk(then_branch, &mut t, silenced, out);
                let mut e = must.clone();
                if let Some(eb) = else_branch {
                    self.walk(eb, &mut e, silenced, out);
                }
                *must = t.intersection(&e).copied().collect();
            }
            Stmt::While { cond, body, .. } => {
                self.check(cond, must, silenced, out);
                // The body sees the entry state (first iteration);
                // later iterations only have more assignments, so this
                // is conservative. The loop may run zero times, so the
                // after-state is the entry state.
                let mut b = must.clone();
                self.walk(body, &mut b, silenced, out);
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts {
                    self.walk(s, must, silenced, out);
                }
            }
            Stmt::Cobegin { branches, .. } => {
                let writes: Vec<BTreeSet<VarId>> = branches.iter().map(written).collect();
                let mut after = must.clone();
                for (i, b) in branches.iter().enumerate() {
                    let mut sil = silenced.clone();
                    for (j, w) in writes.iter().enumerate() {
                        if i != j {
                            sil.extend(w.iter().copied());
                        }
                    }
                    let mut m = must.clone();
                    self.walk(b, &mut m, &sil, out);
                    after.extend(m);
                }
                *must = after;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SF021 — backward must-be-overwritten
// ---------------------------------------------------------------------------

struct Bwd<'a> {
    program: &'a Program,
}

impl Bwd<'_> {
    /// `dead` holds variables definitely overwritten (before any read)
    /// on every path from *after* the current statement to the end.
    fn walk(
        &self,
        stmt: &Stmt,
        dead: &mut BTreeSet<VarId>,
        never_dead: &BTreeSet<VarId>,
        out: &mut Vec<Diag>,
    ) {
        match stmt {
            Stmt::Skip(_) | Stmt::Wait { .. } | Stmt::Signal { .. } => {}
            Stmt::Assign { var, expr, span } => {
                if dead.contains(var) && !never_dead.contains(var) {
                    let name = self.program.symbols.name(*var);
                    out.push(
                        Diag::warning(
                            "SF021",
                            format!(
                                "dead store: every path overwrites `{name}` before \
                                 reading this value"
                            ),
                            *span,
                        )
                        .with_fix("remove the assignment or use the value".to_string()),
                    );
                }
                if !never_dead.contains(var) {
                    dead.insert(*var);
                }
                expr_reads(expr, &mut |v, _| {
                    dead.remove(&v);
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut t = dead.clone();
                self.walk(then_branch, &mut t, never_dead, out);
                let mut e = dead.clone();
                if let Some(eb) = else_branch {
                    self.walk(eb, &mut e, never_dead, out);
                }
                *dead = t.intersection(&e).copied().collect();
                expr_reads(cond, &mut |v, _| {
                    dead.remove(&v);
                });
            }
            Stmt::While { cond, body, .. } => {
                // Analyze the body against an empty out-set: a store in
                // the body is only dead if the same iteration kills it.
                let mut b = BTreeSet::new();
                self.walk(body, &mut b, never_dead, out);
                *dead = dead.intersection(&b).copied().collect();
                expr_reads(cond, &mut |v, _| {
                    dead.remove(&v);
                });
            }
            Stmt::Seq { stmts, .. } => {
                for s in stmts.iter().rev() {
                    self.walk(s, dead, never_dead, out);
                }
            }
            Stmt::Cobegin { branches, .. } => {
                let touches: Vec<BTreeSet<VarId>> =
                    branches.iter().map(|b| touched(b, self.program)).collect();
                let mut result: Option<BTreeSet<VarId>> = None;
                for (i, b) in branches.iter().enumerate() {
                    let mut nd = never_dead.clone();
                    for (j, t) in touches.iter().enumerate() {
                        if i != j {
                            nd.extend(t.iter().copied());
                        }
                    }
                    let mut d: BTreeSet<VarId> =
                        dead.iter().copied().filter(|v| !nd.contains(v)).collect();
                    self.walk(b, &mut d, &nd, out);
                    result = Some(match result {
                        None => d,
                        Some(r) => r.intersection(&d).copied().collect(),
                    });
                }
                *dead = result.unwrap_or_default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn run(src: &str) -> Vec<Diag> {
        let p = parse(src).unwrap();
        let mut out = Vec::new();
        DataflowPass.run(&p, &mut out);
        out
    }

    fn codes(diags: &[Diag]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn read_before_write_is_sf020() {
        let diags = run("var x, y : integer; begin y := x; x := 1 end");
        assert_eq!(codes(&diags), vec!["SF020"]);
        assert!(diags[0].message.contains("`x`"));
    }

    #[test]
    fn never_assigned_vars_are_inputs_not_sf020() {
        let diags = run("var x, y : integer; y := x");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn write_then_read_is_clean() {
        let diags = run("var x, y : integer; begin x := 1; y := x end");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn only_one_if_branch_assigning_does_not_initialize() {
        let diags = run("var x, y, c : integer;
             begin if c = 0 then x := 1; y := x end");
        assert_eq!(codes(&diags), vec!["SF020"]);
    }

    #[test]
    fn both_if_branches_assigning_initializes() {
        let diags = run("var x, y, c : integer;
             begin if c = 0 then x := 1 else x := 2; y := x end");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sibling_written_reads_in_cobegin_are_silenced() {
        // Fig. 3 shape: the reader branch's `y := m` is ordered after
        // the writer's `m := 1` by semaphores the analysis cannot see.
        let diags = run("var m, y : integer; s : semaphore;
             cobegin begin m := 1; signal(s) end || begin wait(s); y := m end coend");
        assert!(!codes(&diags).contains(&"SF020"), "{diags:?}");
    }

    #[test]
    fn overwritten_store_is_sf021() {
        let diags = run("var x : integer; begin x := 1; x := 2 end");
        assert_eq!(codes(&diags), vec!["SF021"]);
    }

    #[test]
    fn final_store_is_live() {
        let diags = run("var x : integer; x := 1");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn store_read_by_later_statement_is_live() {
        let diags = run("var x, y : integer; begin x := 1; y := x; x := 2 end");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn store_touched_by_sibling_is_never_dead() {
        let diags = run("var x : integer; s : semaphore;
             cobegin begin x := 1; signal(s) end || begin wait(s); x := 2 end coend");
        assert!(!codes(&diags).contains(&"SF021"), "{diags:?}");
    }

    #[test]
    fn loop_body_kill_within_iteration_is_sf021() {
        let diags = run("var x, c : integer;
             begin while c = 0 do begin x := 1; x := 2 end; x := 3 end");
        assert_eq!(codes(&diags), vec!["SF021"]);
    }

    #[test]
    fn sequential_example_has_no_dead_stores() {
        let diags = run("var a, b, c : integer;
             begin a := b + c; b := a; while a = 0 do b := b + 1; c := a + b end");
        assert!(!codes(&diags).contains(&"SF021"), "{diags:?}");
    }
}
