//! Semaphore static checks (SF001–SF004).
//!
//! These are cheap structural sanity checks over the `wait`/`signal`
//! sites of a program: unused semaphores, signals nobody waits for,
//! waits that can never be satisfied, and `cobegin`s whose unconditional
//! wait demand exceeds the total possible signal supply.

use std::collections::HashMap;

use secflow_lang::{Diag, Program, Span, Stmt, VarId, VarKind};

use crate::pass::AnalysisPass;

/// Per-semaphore wait/signal site statistics (SF001–SF004).
pub struct SemStaticsPass;

/// Usage sites of one semaphore.
#[derive(Default)]
struct SemUse {
    waits: Vec<Span>,
    signals: Vec<Span>,
    /// Some signal occurs inside a `while` body (supply unbounded).
    looped_signal: bool,
}

impl AnalysisPass for SemStaticsPass {
    fn name(&self) -> &'static str {
        "sem-statics"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        let n = program.symbols.len();
        let mut uses: Vec<SemUse> = (0..n).map(|_| SemUse::default()).collect();
        collect(&program.body, false, &mut uses);

        for (id, info) in program.symbols.iter() {
            if info.kind != VarKind::Semaphore {
                continue;
            }
            let u = &uses[id.index()];
            let name = &info.name;
            if u.waits.is_empty() && u.signals.is_empty() {
                out.push(
                    Diag::warning(
                        "SF001",
                        format!("semaphore `{name}` is declared but never used"),
                        info.decl_span,
                    )
                    .with_fix(format!("remove the declaration of `{name}`")),
                );
            } else if u.waits.is_empty() {
                out.push(
                    Diag::warning(
                        "SF002",
                        format!("semaphore `{name}` is signaled but never waited on"),
                        u.signals[0],
                    )
                    .with_note(format!("`{name}` declared here"), info.decl_span),
                );
            } else if u.signals.is_empty() && info.init == 0 {
                for &w in &u.waits {
                    out.push(
                        Diag::error(
                            "SF003",
                            format!(
                                "`wait({name})` can never be satisfied: `{name}` starts at 0 \
                                 and is never signaled"
                            ),
                            w,
                        )
                        .with_fix(format!(
                            "add a matching `signal({name})` in a concurrent process, or \
                             declare `{name}` with `initially(n)`"
                        )),
                    );
                }
            }
        }

        check_cobegin_balance(program, &uses, out);
    }
}

/// Records every wait/signal site, tracking whether we are under a loop.
fn collect(stmt: &Stmt, in_loop: bool, uses: &mut [SemUse]) {
    match stmt {
        Stmt::Skip(_) | Stmt::Assign { .. } => {}
        Stmt::Wait { sem, span } => uses[sem.index()].waits.push(*span),
        Stmt::Signal { sem, span } => {
            let u = &mut uses[sem.index()];
            u.signals.push(*span);
            u.looped_signal |= in_loop;
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect(then_branch, in_loop, uses);
            if let Some(e) = else_branch {
                collect(e, in_loop, uses);
            }
        }
        Stmt::While { body, .. } => collect(body, true, uses),
        Stmt::Seq { stmts, .. } => stmts.iter().for_each(|s| collect(s, in_loop, uses)),
        Stmt::Cobegin { branches, .. } => branches.iter().for_each(|s| collect(s, in_loop, uses)),
    }
}

/// SF004: for every `cobegin`, compare the waits that *must* execute
/// (unconditional: not guarded by `if`/`while`) against the best-case
/// signal supply (initial count + every signal site in the program).
/// Demand exceeding supply means some process necessarily blocks.
fn check_cobegin_balance(program: &Program, uses: &[SemUse], out: &mut Vec<Diag>) {
    program.body.walk(&mut |s| {
        if let Stmt::Cobegin { branches, span } = s {
            let mut demand: HashMap<VarId, usize> = HashMap::new();
            for b in branches {
                unconditional_waits(b, &mut demand);
            }
            let mut sems: Vec<VarId> = demand.keys().copied().collect();
            sems.sort();
            for sem in sems {
                let u = &uses[sem.index()];
                if u.looped_signal {
                    continue; // supply unbounded, nothing provable
                }
                let supply = program.symbols.info(sem).init.max(0) as usize + u.signals.len();
                let need = demand[&sem];
                if need > supply {
                    let name = program.symbols.name(sem);
                    out.push(Diag::warning(
                        "SF004",
                        format!(
                            "this cobegin always performs {need} wait(s) on `{name}` but at \
                             most {supply} signal(s) can ever occur"
                        ),
                        *span,
                    ));
                }
            }
        }
    });
}

/// Counts waits that execute on every run of `stmt` (skipping anything
/// conditional: `if` branches and `while` bodies).
fn unconditional_waits(stmt: &Stmt, demand: &mut HashMap<VarId, usize>) {
    match stmt {
        Stmt::Wait { sem, .. } => *demand.entry(*sem).or_insert(0) += 1,
        Stmt::Seq { stmts, .. } => stmts.iter().for_each(|s| unconditional_waits(s, demand)),
        Stmt::Cobegin { branches, .. } => {
            branches.iter().for_each(|s| unconditional_waits(s, demand))
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn run(src: &str) -> Vec<Diag> {
        let p = parse(src).unwrap();
        let mut out = Vec::new();
        SemStaticsPass.run(&p, &mut out);
        out
    }

    fn codes(diags: &[Diag]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unused_semaphore_is_sf001() {
        let diags = run("var s : semaphore; x : integer; x := 1");
        assert_eq!(codes(&diags), vec!["SF001"]);
        assert!(diags[0].message.contains("`s`"));
        assert!(diags[0].fix.is_some());
    }

    #[test]
    fn signal_without_wait_is_sf002() {
        let diags = run("var s : semaphore; signal(s)");
        assert_eq!(codes(&diags), vec!["SF002"]);
        assert_eq!(diags[0].notes.len(), 1);
    }

    #[test]
    fn unsatisfiable_wait_is_sf003_error() {
        let diags = run("var s : semaphore; wait(s)");
        assert_eq!(codes(&diags), vec!["SF003"]);
        assert_eq!(diags[0].severity, secflow_lang::Severity::Error);
    }

    #[test]
    fn initially_positive_wait_is_fine() {
        let diags = run("var s : semaphore initially(1); wait(s)");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cobegin_over_demand_is_sf004() {
        let diags = run("var s : semaphore; x : integer;
             cobegin begin wait(s); wait(s) end || signal(s) coend");
        assert!(codes(&diags).contains(&"SF004"), "{diags:?}");
    }

    #[test]
    fn balanced_handoff_is_clean() {
        let diags = run("var s : semaphore; x : integer;
             cobegin begin x := 1; signal(s) end || begin wait(s); x := 2 end coend");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn conditional_waits_do_not_count_toward_demand() {
        let diags = run("var s : semaphore; x : integer;
             cobegin begin if x = 0 then wait(s); if x = 0 then wait(s) end \
             || signal(s) coend");
        assert!(!codes(&diags).contains(&"SF004"), "{diags:?}");
    }

    #[test]
    fn looped_signal_supply_is_unbounded() {
        let diags = run("var s : semaphore; x : integer;
             cobegin begin wait(s); wait(s) end \
             || while x = 0 do signal(s) coend");
        assert!(!codes(&diags).contains(&"SF004"), "{diags:?}");
    }
}
