//! The §2.0 atomicity side-condition as an analysis pass (SF040).
//!
//! The actual check lives in [`secflow_core::check_atomicity`]; since
//! its violations are already unified [`Diag`](secflow_lang::Diag)s,
//! this pass only forwards them into the shared sink.

use secflow_lang::{Diag, Program};

use crate::pass::AnalysisPass;

/// Flags actions making more than one reference to a variable writable
/// by a sibling process (paper §2.0, single-shared-reference condition).
pub struct AtomicityPass;

impl AnalysisPass for AtomicityPass {
    fn name(&self) -> &'static str {
        "atomicity"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        out.extend(secflow_core::check_atomicity(program).violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    #[test]
    fn racy_increment_is_sf040() {
        let p = parse("var x : integer; cobegin x := x + 1 || x := x + 1 coend").unwrap();
        let mut out = Vec::new();
        AtomicityPass.run(&p, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == "SF040"));
    }

    #[test]
    fn clean_handoff_is_silent() {
        let p = parse(
            "var a, b : integer; s : semaphore;
             cobegin begin a := 1; signal(s) end || begin wait(s); b := a end coend",
        )
        .unwrap();
        let mut out = Vec::new();
        AtomicityPass.run(&p, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
