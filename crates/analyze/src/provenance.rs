//! Global-flow provenance (SF030–SF032).
//!
//! The Concurrent Flow Mechanism's *global flow class* (paper §2.2)
//! starts at nil and is raised by exactly two constructs: a `wait`
//! (whose completion reveals that the semaphore was signaled) and a
//! loop guard (whose termination reveals the guard's value). An `if`
//! guard additionally *joins* the global flow when one of its branches
//! has a non-nil flow, because reaching the branch reveals the guard.
//!
//! When certification later rejects a program because `flow(S) ≰
//! class(x)`, these info-level diagnostics point at the exact `wait`,
//! `while`, or `if` that raised the flow — the provenance of the leak.

use secflow_lang::{Diag, Program, Stmt};

use crate::pass::AnalysisPass;

/// Points at every construct that raises the global flow class.
pub struct ProvenancePass;

impl AnalysisPass for ProvenancePass {
    fn name(&self) -> &'static str {
        "provenance"
    }

    fn run(&self, program: &Program, out: &mut Vec<Diag>) {
        flow_sources(&program.body, out);
    }
}

/// Emits provenance diagnostics for `stmt` and reports whether its
/// global flow is non-nil (mirrors the structural rule of §2.2: `wait`
/// raises it, `while` always joins its guard, `if` joins its guard iff
/// a branch has non-nil flow; `signal` and assignments contribute nil).
fn flow_sources(stmt: &Stmt, out: &mut Vec<Diag>) -> bool {
    match stmt {
        Stmt::Skip(_) | Stmt::Assign { .. } | Stmt::Signal { .. } => false,
        Stmt::Wait { sem: _, span } => {
            out.push(Diag::info(
                "SF030",
                "completing this `wait` raises the global flow class: it reveals that \
                 the semaphore was signaled",
                *span,
            ));
            true
        }
        Stmt::While { cond, body, .. } => {
            flow_sources(body, out);
            out.push(Diag::info(
                "SF031",
                "this loop guard raises the global flow class: leaving the loop reveals \
                 the guard's value (termination channel)",
                cond.span(),
            ));
            true
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let t = flow_sources(then_branch, out);
            let e = else_branch
                .as_ref()
                .map(|b| flow_sources(b, out))
                .unwrap_or(false);
            if t || e {
                out.push(Diag::info(
                    "SF032",
                    "this `if` guard joins the global flow class: a branch has a non-nil \
                     flow, so reaching it reveals the guard's value",
                    cond.span(),
                ));
                true
            } else {
                false
            }
        }
        Stmt::Seq { stmts, .. } => {
            let mut any = false;
            for s in stmts {
                any |= flow_sources(s, out);
            }
            any
        }
        Stmt::Cobegin { branches, .. } => {
            let mut any = false;
            for b in branches {
                any |= flow_sources(b, out);
            }
            any
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;

    fn run(src: &str) -> Vec<Diag> {
        let p = parse(src).unwrap();
        let mut out = Vec::new();
        ProvenancePass.run(&p, &mut out);
        out
    }

    fn codes(diags: &[Diag]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn wait_is_sf030() {
        assert_eq!(codes(&run("var s : semaphore; wait(s)")), vec!["SF030"]);
    }

    #[test]
    fn loop_guard_is_sf031() {
        assert_eq!(
            codes(&run("var x : integer; while x = 0 do x := 1")),
            vec!["SF031"]
        );
    }

    #[test]
    fn signal_under_if_does_not_join_the_guard() {
        // §2.2: `if x = 0 then signal(sem)` is a *local* flow from the
        // guard to the semaphore; the signal itself has nil global flow.
        let diags = run("var x : integer; sem : semaphore; if x = 0 then signal(sem)");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wait_under_if_joins_the_guard() {
        let diags = run("var x : integer; sem : semaphore; if x = 0 then wait(sem)");
        assert_eq!(codes(&diags), vec!["SF030", "SF032"]);
    }

    #[test]
    fn sem_channel_reports_only_the_wait() {
        let diags = run("var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend");
        assert_eq!(codes(&diags), vec!["SF030"]);
    }
}
