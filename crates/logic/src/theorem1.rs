//! The Theorem 1 constructive prover.
//!
//! Theorem 1 (consistency): if `cert(S)` holds for a static binding
//! `sbind`, then for any `l ⊕ g ≤ mod(S)` there is a *completely
//! invariant* flow proof of
//!
//! ```text
//! {I, local ≤ l, global ≤ g}  S  {I, local ≤ l, global ≤ g ⊕ l ⊕ flow(S)}
//! ```
//!
//! where `I` is the policy assertion corresponding to `sbind`
//! (Definition 6: the conjunction of `v̲ ≤ sbind(v)`).
//!
//! [`build_proof`] implements the Appendix's induction as a proof
//! *constructor*; [`prove`] additionally verifies the preconditions and
//! runs the independent checker over the result. The construction is
//! deliberately independent of the checker, so the pair constitutes a
//! machine check of the theorem on any given instance: `certified ⟹
//! builder output passes the checker` is property-tested across random
//! programs, bindings and lattices.
//!
//! The converse, Theorem 2, guarantees that when CFM *rejects* a program
//! no completely invariant proof exists at all; the contrapositive is
//! exercised in the test-suite by confirming the builder's candidate
//! proof fails the checker exactly when certification fails.

use std::fmt;

use secflow_core::{certify, mod_flow, StaticBinding};
use secflow_lang::{Program, Stmt};
use secflow_lattice::{Extended, Lattice};

use crate::assertion::{Assertion, Bound, ClassExpr};
use crate::check::{assign_subst, check_proof, signal_subst, wait_subst, CheckError};
use crate::entail::{entails, EntailError};
use crate::proof::{Proof, Rule};

/// Why [`prove`] refused or failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProveError<L> {
    /// `cert(S)` is false: Theorem 1's hypothesis fails (and by Theorem 2
    /// no completely invariant proof exists).
    NotCertified {
        /// Number of violated Figure 2 checks.
        violations: usize,
    },
    /// The chosen `l ⊕ g` exceeds `mod(S)`.
    BoundsExceedMod {
        /// The offending `l ⊕ g`.
        lg: Extended<L>,
    },
    /// The constructed proof failed the independent checker — this
    /// indicates a bug (it would be a counterexample to Theorem 1).
    CheckFailed(CheckError),
}

impl<L: fmt::Display> fmt::Display for ProveError<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::NotCertified { violations } => {
                write!(f, "program is not certified ({violations} violations)")
            }
            ProveError::BoundsExceedMod { lg } => {
                write!(f, "l ⊕ g = {lg} is not below mod(S)")
            }
            ProveError::CheckFailed(e) => write!(f, "constructed proof failed to check: {e}"),
        }
    }
}

/// The policy assertion `I` corresponding to `sbind` (Definition 6).
pub fn policy_assertion<L: Lattice>(program: &Program, sbind: &StaticBinding<L>) -> Vec<Bound<L>> {
    program
        .symbols
        .iter()
        .map(|(id, _)| Bound::var_le(id, sbind.class(id).clone()))
        .collect()
}

/// Builds the Theorem 1 candidate proof without any validity checking.
///
/// For a certified program the result is a valid, completely invariant
/// proof; for an uncertified one it is a well-formed derivation tree that
/// the checker will reject at the violating node (the Theorem 2
/// contrapositive).
pub fn build_proof<L: Lattice>(
    program: &Program,
    sbind: &StaticBinding<L>,
    l: Extended<L>,
    g: Extended<L>,
) -> Proof<L> {
    let i = policy_assertion(program, sbind);
    let builder = Builder { sbind, i: &i };
    builder.build(&program.body, &l, &g).0
}

/// Builds the Theorem 1 proof and validates everything.
///
/// # Errors
///
/// See [`ProveError`]. On success the returned proof:
/// - derives `{I, local ≤ l, global ≤ g} S {I, local ≤ l, global ≤ g'}`
///   with `g' ≤ g ⊕ l ⊕ flow(S)`,
/// - passes the independent [`check_proof`], and
/// - is completely invariant over `I` ([`is_completely_invariant`]).
///
/// # Examples
///
/// ```
/// use secflow_core::StaticBinding;
/// use secflow_lang::parse;
/// use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};
/// use secflow_logic::prove;
///
/// let p = parse("var y : integer; sem : semaphore; begin wait(sem); y := 1 end").unwrap();
/// let sbind = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
/// let proof = prove(&p, &sbind, Extended::Nil, Extended::Nil).unwrap();
/// assert!(proof.size() > 1);
///
/// // With sem High and y Low the program is not certified, so Theorem 1
/// // does not apply (and by Theorem 2 no completely invariant proof exists).
/// let bad = StaticBinding::uniform(&p.symbols, &TwoPointScheme)
///     .with(p.var("sem"), TwoPoint::High);
/// assert!(secflow_logic::prove(&p, &bad, Extended::Nil, Extended::Nil).is_err());
/// ```
pub fn prove<L: Lattice + fmt::Display>(
    program: &Program,
    sbind: &StaticBinding<L>,
    l: Extended<L>,
    g: Extended<L>,
) -> Result<Proof<L>, ProveError<L>> {
    let report = certify(program, sbind);
    if !report.certified() {
        return Err(ProveError::NotCertified {
            violations: report.violations.len(),
        });
    }
    let lg = l.join(&g);
    if !report.mod_class.bounds(&lg) {
        return Err(ProveError::BoundsExceedMod { lg });
    }
    let proof = build_proof(program, sbind, l, g);
    check_proof(&program.body, &proof).map_err(ProveError::CheckFailed)?;
    Ok(proof)
}

/// Checks Definition 7: every statement-level precondition in the proof
/// has `I` as its `V` part (with literal `local`/`global` bounds).
///
/// Statement-level triples are the outermost triples attached to each
/// program statement — a consequence wrapper and the axiom instance it
/// wraps belong to one statement, and it is the wrapper's precondition
/// that Definition 7 constrains.
pub fn is_completely_invariant<L: Lattice + fmt::Display>(
    proof: &Proof<L>,
    i: &[Bound<L>],
) -> Result<bool, EntailError> {
    let i_assn = Assertion::state_only(i.to_vec());
    let mut stack = vec![(proof, true)];
    while let Some((node, is_stmt_level)) = stack.pop() {
        if is_stmt_level {
            let pre_state = Assertion::state_only(node.pre.state.clone());
            if !entails(&pre_state, &i_assn)? || !entails(&i_assn, &pre_state)? {
                return Ok(false);
            }
            let literal_ok = |b: &Option<ClassExpr<L>>| match b {
                None => false,
                Some(e) => e.eval_lit().is_some(),
            };
            if !literal_ok(&node.pre.local) || !literal_ok(&node.pre.global) {
                return Ok(false);
            }
        }
        match &node.rule {
            Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
            // The consequence wrapper and its wrapped derivation describe
            // the same statement: the inner node is not statement-level.
            Rule::Conseq { inner } => stack.push((inner, false)),
            Rule::If {
                then_proof,
                else_proof,
            } => {
                stack.push((then_proof, true));
                if let Some(e) = else_proof {
                    stack.push((e, true));
                }
            }
            Rule::While { body } => stack.push((body, true)),
            Rule::Seq { parts } => stack.extend(parts.iter().map(|p| (p, true))),
            Rule::Cobegin { branches } => stack.extend(branches.iter().map(|p| (p, true))),
        }
    }
    Ok(true)
}

struct Builder<'a, L> {
    sbind: &'a StaticBinding<L>,
    i: &'a [Bound<L>],
}

impl<L: Lattice> Builder<'_, L> {
    fn assn(&self, l: &Extended<L>, g: &Extended<L>) -> Assertion<L> {
        Assertion::new(
            self.i.to_vec(),
            ClassExpr::lit(l.clone()),
            ClassExpr::lit(g.clone()),
        )
    }

    /// Weakens `proof`'s postcondition to `{I, local ≤ l, global ≤ g*}`.
    fn weaken_post(&self, proof: Proof<L>, l: &Extended<L>, g_star: &Extended<L>) -> Proof<L> {
        let pre = proof.pre.clone();
        let post = self.assn(l, g_star);
        if proof.post == post {
            return proof;
        }
        Proof::new(
            pre,
            post,
            Rule::Conseq {
                inner: Box::new(proof),
            },
        )
    }

    /// Builds the proof for `stmt` from pre `{I, local ≤ l, global ≤ g}`,
    /// returning the proof and `flow(stmt)`.
    ///
    /// Invariant: the returned post is `{I, local ≤ l, global ≤ G}` where
    /// `G = g` when `flow(stmt) = nil` and `G = g ⊕ l ⊕ flow(stmt)`
    /// otherwise.
    fn build(&self, stmt: &Stmt, l: &Extended<L>, g: &Extended<L>) -> (Proof<L>, Extended<L>) {
        let pre = self.assn(l, g);
        match stmt {
            Stmt::Skip(_) => (Proof::new(pre.clone(), pre, Rule::SkipAxiom), Extended::Nil),

            Stmt::Assign { var, expr, .. } => {
                let post = self.assn(l, g);
                let ax_pre = post.subst(&assign_subst(*var, expr));
                let axiom = Proof::new(ax_pre, post.clone(), Rule::AssignAxiom);
                (
                    Proof::new(
                        pre,
                        post,
                        Rule::Conseq {
                            inner: Box::new(axiom),
                        },
                    ),
                    Extended::Nil,
                )
            }

            Stmt::Signal { sem, .. } => {
                let post = self.assn(l, g);
                let ax_pre = post.subst(&signal_subst(*sem));
                let axiom = Proof::new(ax_pre, post.clone(), Rule::SignalAxiom);
                (
                    Proof::new(
                        pre,
                        post,
                        Rule::Conseq {
                            inner: Box::new(axiom),
                        },
                    ),
                    Extended::Nil,
                )
            }

            Stmt::Wait { sem, .. } => {
                let flow = Extended::Elem(self.sbind.class(*sem).clone());
                let g_prime = g.join(l).join(&flow);
                let post = self.assn(l, &g_prime);
                let ax_pre = post.subst(&wait_subst(*sem));
                let axiom = Proof::new(ax_pre, post.clone(), Rule::WaitAxiom);
                (
                    Proof::new(
                        pre,
                        post,
                        Rule::Conseq {
                            inner: Box::new(axiom),
                        },
                    ),
                    flow,
                )
            }

            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let e_cls = Extended::Elem(self.sbind.expr_class(cond));
                let l_prime = l.join(&e_cls);
                let (p1, f1) = self.build(then_branch, &l_prime, g);
                let (p2, f2) = match else_branch {
                    Some(eb) => self.build(eb, &l_prime, g),
                    None => {
                        let inv = self.assn(&l_prime, g);
                        (Proof::new(inv.clone(), inv, Rule::SkipAxiom), Extended::Nil)
                    }
                };
                if f1.is_nil() && f2.is_nil() {
                    // flow(S) = nil: both branch posts are already {I,l',g}.
                    let post = self.assn(l, g);
                    (
                        Proof::new(
                            pre,
                            post,
                            Rule::If {
                                then_proof: Box::new(p1),
                                else_proof: Some(Box::new(p2)),
                            },
                        ),
                        Extended::Nil,
                    )
                } else {
                    // flow(S) = flow(S1) ⊕ flow(S2) ⊕ e̲.
                    let flow = f1.join(&f2).join(&e_cls);
                    let g_star = g.join(l).join(&flow);
                    let p1 = self.weaken_post(p1, &l_prime, &g_star);
                    let p2 = self.weaken_post(p2, &l_prime, &g_star);
                    let post = self.assn(l, &g_star);
                    (
                        Proof::new(
                            pre,
                            post,
                            Rule::If {
                                then_proof: Box::new(p1),
                                else_proof: Some(Box::new(p2)),
                            },
                        ),
                        flow,
                    )
                }
            }

            Stmt::While { cond, body, .. } => {
                let e_cls = Extended::Elem(self.sbind.expr_class(cond));
                let l_prime = l.join(&e_cls);
                // flow(S) = flow(S1) ⊕ e̲; the invariant global bound is
                // G_inv = g ⊕ l ⊕ flow(S), over which the body derivation
                // is invariant (its own flow is absorbed).
                let (_, body_flow) = mod_flow(body, self.sbind);
                let flow = body_flow.join(&e_cls);
                let g_inv = g.join(l).join(&flow);
                let (body_proof, _) = self.build(body, &l_prime, &g_inv);
                let inv_pre = self.assn(l, &g_inv);
                let post = self.assn(l, &g_inv);
                let while_node = Proof::new(
                    inv_pre,
                    post.clone(),
                    Rule::While {
                        body: Box::new(body_proof),
                    },
                );
                // Strengthen the precondition from {I,l,G_inv} to {I,l,g}.
                let wrapped = Proof::new(
                    pre,
                    post,
                    Rule::Conseq {
                        inner: Box::new(while_node),
                    },
                );
                (wrapped, flow)
            }

            Stmt::Seq { stmts, .. } => {
                let mut parts = Vec::with_capacity(stmts.len());
                let mut g_cur = g.clone();
                let mut flow = Extended::Nil;
                for s in stmts {
                    let (p, f) = self.build(s, l, &g_cur);
                    g_cur = match &p.post.global {
                        Some(e) => e.eval_lit().unwrap_or_else(|| g_cur.clone()),
                        None => g_cur.clone(),
                    };
                    flow = flow.join(&f);
                    parts.push(p);
                }
                let post = self.assn(l, &g_cur);
                (Proof::new(pre, post, Rule::Seq { parts }), flow)
            }

            Stmt::Cobegin { branches, .. } => {
                let built: Vec<(Proof<L>, Extended<L>)> =
                    branches.iter().map(|s| self.build(s, l, g)).collect();
                let flow = built.iter().fold(Extended::Nil, |acc, (_, f)| acc.join(f));
                if flow.is_nil() {
                    let post = self.assn(l, g);
                    let bs = built.into_iter().map(|(p, _)| p).collect();
                    (
                        Proof::new(pre, post, Rule::Cobegin { branches: bs }),
                        Extended::Nil,
                    )
                } else {
                    let g_star = g.join(l).join(&flow);
                    let bs = built
                        .into_iter()
                        .map(|(p, _)| self.weaken_post(p, l, &g_star))
                        .collect();
                    let post = self.assn(l, &g_star);
                    (Proof::new(pre, post, Rule::Cobegin { branches: bs }), flow)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn nil() -> Extended<TwoPoint> {
        Extended::Nil
    }

    fn uniform(p: &Program) -> StaticBinding<TwoPoint> {
        StaticBinding::uniform(&p.symbols, &TwoPointScheme)
    }

    #[test]
    fn proves_assignment() {
        let p = parse("var x, y : integer; y := x").unwrap();
        let proof = prove(&p, &uniform(&p), nil(), nil()).unwrap();
        let i = policy_assertion(&p, &uniform(&p));
        assert!(is_completely_invariant(&proof, &i).unwrap());
    }

    #[test]
    fn proves_the_wait_composition() {
        let p = parse("var y : integer; sem : semaphore; begin wait(sem); y := 1 end").unwrap();
        // All-Low: certified, proof exists.
        let proof = prove(&p, &uniform(&p), nil(), nil()).unwrap();
        check_proof(&p.body, &proof).unwrap();
        // High sem, Low y: not certified.
        let bad = uniform(&p).with(p.var("sem"), TwoPoint::High);
        assert!(matches!(
            prove(&p, &bad, nil(), nil()),
            Err(ProveError::NotCertified { .. })
        ));
    }

    #[test]
    fn rejected_program_candidate_proof_fails_the_checker() {
        // Theorem 2, contrapositively: for an uncertified program the
        // builder's candidate must NOT check.
        let p = parse("var x, y : integer; y := x").unwrap();
        let bad = uniform(&p).with(p.var("x"), TwoPoint::High);
        let candidate = build_proof(&p, &bad, nil(), nil());
        assert!(check_proof(&p.body, &candidate).is_err());
    }

    #[test]
    fn proves_loops_with_matching_classes() {
        let p = parse("var x, y : integer; while x # 0 do y := 1").unwrap();
        let sbind = uniform(&p)
            .with(p.var("x"), TwoPoint::High)
            .with(p.var("y"), TwoPoint::High);
        let proof = prove(&p, &sbind, nil(), nil()).unwrap();
        // The loop's flow shows up in the post: global ≤ High.
        let g = proof.post.global.as_ref().unwrap().eval_lit().unwrap();
        assert_eq!(g, Extended::Elem(TwoPoint::High));
    }

    #[test]
    fn proves_cobegin_with_interference_freedom() {
        let p = parse(
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
        )
        .unwrap();
        let sbind = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
        let proof = prove(&p, &sbind, nil(), nil()).unwrap();
        let i = policy_assertion(&p, &sbind);
        assert!(is_completely_invariant(&proof, &i).unwrap());
    }

    #[test]
    fn bounds_above_mod_are_rejected() {
        let p = parse("var x, y : integer; y := x").unwrap();
        // mod(S) = sbind(y) = Low; l = High exceeds it.
        let err = prove(&p, &uniform(&p), Extended::Elem(TwoPoint::High), nil()).unwrap_err();
        assert!(matches!(err, ProveError::BoundsExceedMod { .. }));
    }

    #[test]
    fn theorem1_post_bound_is_respected() {
        // Post global ≤ g ⊕ l ⊕ flow(S) per the theorem statement.
        let p = parse("var s : semaphore; wait(s)").unwrap();
        let sbind = uniform(&p).with(p.var("s"), TwoPoint::High);
        let proof = prove(&p, &sbind, nil(), nil()).unwrap();
        let g = proof.post.global.as_ref().unwrap().eval_lit().unwrap();
        assert_eq!(g, Extended::Elem(TwoPoint::High)); // = flow(S) = sbind(s)
    }

    #[test]
    fn one_armed_if_synthesizes_a_skip_branch() {
        let p = parse("var x, y : integer; if x = 0 then y := 1").unwrap();
        let sbind = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
        let proof = prove(&p, &sbind, nil(), nil()).unwrap();
        match &proof.rule {
            Rule::If { else_proof, .. } => assert!(else_proof.is_some()),
            other => panic!("expected alternation at root, got {other:?}"),
        }
    }

    #[test]
    fn errors_render() {
        let e: ProveError<TwoPoint> = ProveError::NotCertified { violations: 3 };
        assert!(e.to_string().contains('3'));
        let e: ProveError<TwoPoint> = ProveError::BoundsExceedMod {
            lg: Extended::Elem(TwoPoint::High),
        };
        assert!(e.to_string().contains("High"));
    }
}
