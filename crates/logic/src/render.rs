//! Rendering proofs and assertions with source-level variable names.
//!
//! The `Display` impls in this crate print `class(v3)` because bare
//! assertions carry no symbol table; this module threads one through so
//! the CLI and examples can show `m̲ ≤ High` style output.

use std::fmt::Write as _;

use secflow_lang::SymbolTable;
use secflow_lattice::Lattice;

use crate::assertion::{Assertion, Atom, Bound, ClassExpr};
use crate::proof::{Proof, Rule};

/// Renders a class expression with variable names.
pub fn render_class_expr<L: Lattice + std::fmt::Display>(
    e: &ClassExpr<L>,
    symbols: &SymbolTable,
) -> String {
    let mut parts: Vec<String> = e
        .atoms()
        .iter()
        .map(|a| match a {
            Atom::VarClass(v) => format!("{}̲", symbols.name(*v)),
            Atom::Local => "local".to_string(),
            Atom::Global => "global".to_string(),
        })
        .collect();
    if parts.is_empty() || !e.literal().is_nil() {
        parts.push(e.literal().to_string());
    }
    parts.join(" ⊕ ")
}

/// Renders a bound with variable names.
pub fn render_bound<L: Lattice + std::fmt::Display>(b: &Bound<L>, symbols: &SymbolTable) -> String {
    format!(
        "{} ≤ {}",
        render_class_expr(&b.lhs, symbols),
        render_class_expr(&b.rhs, symbols)
    )
}

/// Renders an assertion with variable names.
pub fn render_assertion<L: Lattice + std::fmt::Display>(
    a: &Assertion<L>,
    symbols: &SymbolTable,
) -> String {
    let mut parts: Vec<String> = a.state.iter().map(|b| render_bound(b, symbols)).collect();
    if let Some(l) = &a.local {
        parts.push(format!("local ≤ {}", render_class_expr(l, symbols)));
    }
    if let Some(g) = &a.global {
        parts.push(format!("global ≤ {}", render_class_expr(g, symbols)));
    }
    format!("{{{}}}", parts.join(", "))
}

/// Renders a whole proof tree with variable names.
pub fn render_proof<L: Lattice + std::fmt::Display>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
) -> String {
    let mut out = String::new();
    render_at(proof, symbols, 0, &mut out);
    out
}

fn render_at<L: Lattice + std::fmt::Display>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}[{}]", proof.rule_name());
    let _ = writeln!(
        out,
        "{pad}  pre:  {}",
        render_assertion(&proof.pre, symbols)
    );
    let _ = writeln!(
        out,
        "{pad}  post: {}",
        render_assertion(&proof.post, symbols)
    );
    match &proof.rule {
        Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
        Rule::If {
            then_proof,
            else_proof,
        } => {
            render_at(then_proof, symbols, depth + 1, out);
            if let Some(e) = else_proof {
                render_at(e, symbols, depth + 1, out);
            }
        }
        Rule::While { body } => render_at(body, symbols, depth + 1, out),
        Rule::Seq { parts } => parts
            .iter()
            .for_each(|p| render_at(p, symbols, depth + 1, out)),
        Rule::Cobegin { branches } => branches
            .iter()
            .for_each(|p| render_at(p, symbols, depth + 1, out)),
        Rule::Conseq { inner } => render_at(inner, symbols, depth + 1, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{relative_strength_program, relative_strength_proof};
    use crate::theorem1::prove;
    use secflow_core::StaticBinding;
    use secflow_lang::parse;
    use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};

    #[test]
    fn renders_names_not_indices() {
        let (program, _) = relative_strength_program();
        let proof = relative_strength_proof(&program);
        let text = render_proof(&proof, &program.symbols);
        assert!(text.contains("x̲ ≤ High"), "{text}");
        assert!(text.contains("y̲ ≤ Low"), "{text}");
        assert!(!text.contains("class(v0)"), "{text}");
    }

    #[test]
    fn renders_wait_substitutions() {
        let p = parse("var y : integer; sem : semaphore; begin wait(sem); y := 1 end").unwrap();
        let sbind = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        let proof = prove(&p, &sbind, Extended::Nil, Extended::Nil).unwrap();
        let text = render_proof(&proof, &p.symbols);
        assert!(text.contains("sem̲"), "{text}");
        assert!(text.contains("wait axiom"), "{text}");
        assert!(text.contains("local ≤ nil"), "{text}");
    }

    #[test]
    fn bound_and_expr_render_literals() {
        use crate::assertion::Bound;
        let p = parse("var a : integer; a := 1").unwrap();
        let b: Bound<TwoPoint> = Bound::var_le(p.var("a"), TwoPoint::High);
        assert_eq!(render_bound(&b, &p.symbols), "a̲ ≤ High");
        let e: ClassExpr<TwoPoint> = ClassExpr::nil();
        assert_eq!(render_class_expr(&e, &p.symbols), "nil");
    }
}
