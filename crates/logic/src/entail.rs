//! The entailment decision procedure `P |- Q` (§3.1: "using lattice theory
//! and propositional logic Q can be derived from P").
//!
//! The flow logic only ever *upper-bounds* classifications: every conjunct
//! has the shape `join(atoms, literal) ≤ bound`. Over such formulas,
//! entailment has a sound and complete decision procedure:
//!
//! 1. decompose each premise conjunct `a1 ⊕ … ⊕ ak ⊕ c ≤ r` (with `r`
//!    literal) into atomic bounds `ai ≤ r`, and note premise
//!    unsatisfiability when `c ≰ r`;
//! 2. for each atom, take the meet of its atomic bounds — this is the
//!    largest value the atom can take in any model of `P` (and it is
//!    attained: assigning every atom its meet-of-bounds satisfies `P`);
//! 3. `P |- lhs ≤ rhs` iff the premise is unsatisfiable or
//!    `eval(lhs[atom ↦ meet-of-bounds]) ≤ eval(rhs)`.
//!
//! Completeness rests on step 2's attainability: if the check fails there
//! is a concrete information state satisfying `P` but not `Q`.

use std::collections::BTreeMap;

use secflow_lattice::{Extended, Lattice};

use crate::assertion::{Assertion, Atom, Bound, ClassExpr};

/// Why entailment could not be decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EntailError {
    /// A premise or goal bound has a non-literal right-hand side, which
    /// the restricted proof forms never produce.
    NonLiteralRhs(String),
}

impl std::fmt::Display for EntailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntailError::NonLiteralRhs(b) => {
                write!(f, "bound `{b}` has a non-literal right-hand side")
            }
        }
    }
}

impl std::error::Error for EntailError {}

/// The per-atom upper bounds derivable from an assertion.
#[derive(Clone, Debug)]
pub struct UpperBounds<L> {
    bounds: BTreeMap<Atom, Extended<L>>,
    unsat: bool,
}

impl<L: Lattice + std::fmt::Display> UpperBounds<L> {
    /// Derives the upper-bound environment of `p`.
    pub fn of(p: &Assertion<L>) -> Result<Self, EntailError> {
        let mut env = UpperBounds {
            bounds: BTreeMap::new(),
            unsat: false,
        };
        if let Some(l) = &p.local {
            env.absorb(&Bound::new(ClassExpr::local(), l.clone()))?;
        }
        if let Some(g) = &p.global {
            env.absorb(&Bound::new(ClassExpr::global(), g.clone()))?;
        }
        for b in &p.state {
            env.absorb(b)?;
        }
        Ok(env)
    }

    fn absorb(&mut self, bound: &Bound<L>) -> Result<(), EntailError> {
        let r = bound
            .rhs
            .eval_lit()
            .ok_or_else(|| EntailError::NonLiteralRhs(bound.to_string()))?;
        if !bound.lhs.literal().leq(&r) {
            // A literal component exceeds the bound: P is unsatisfiable
            // (it asserts e.g. High ≤ Low), so it entails everything.
            self.unsat = true;
        }
        for a in bound.lhs.atoms() {
            let entry = self.bounds.entry(*a).or_insert_with(|| r.clone());
            *entry = entry.meet(&r);
        }
        Ok(())
    }

    /// `true` iff the originating assertion has no model.
    pub fn unsatisfiable(&self) -> bool {
        self.unsat
    }

    /// The tightest derivable bound on `a`, if any.
    pub fn bound(&self, a: Atom) -> Option<&Extended<L>> {
        self.bounds.get(&a)
    }

    /// The largest value `e` can take in a model of the assertion, or
    /// `None` when some atom of `e` is unbounded.
    pub fn sup(&self, e: &ClassExpr<L>) -> Option<Extended<L>> {
        let mut acc = e.literal().clone();
        for a in e.atoms() {
            acc = acc.join(self.bounds.get(a)?);
        }
        Some(acc)
    }
}

/// Decides `p |- bound`.
pub fn entails_bound<L: Lattice + std::fmt::Display>(
    p: &Assertion<L>,
    bound: &Bound<L>,
) -> Result<bool, EntailError> {
    let env = UpperBounds::of(p)?;
    entails_bound_env(&env, bound)
}

fn entails_bound_env<L: Lattice + std::fmt::Display>(
    env: &UpperBounds<L>,
    bound: &Bound<L>,
) -> Result<bool, EntailError> {
    if env.unsatisfiable() {
        return Ok(true);
    }
    let rhs = bound
        .rhs
        .eval_lit()
        .ok_or_else(|| EntailError::NonLiteralRhs(bound.to_string()))?;
    Ok(match env.sup(&bound.lhs) {
        Some(sup) => sup.leq(&rhs),
        None => false, // an unbounded atom can exceed any literal bound
    })
}

/// Decides `p |- q` for whole assertions (every conjunct of `q`).
pub fn entails<L: Lattice + std::fmt::Display>(
    p: &Assertion<L>,
    q: &Assertion<L>,
) -> Result<bool, EntailError> {
    let env = UpperBounds::of(p)?;
    if env.unsatisfiable() {
        return Ok(true);
    }
    for b in &q.state {
        if !entails_bound_env(&env, b)? {
            return Ok(false);
        }
    }
    if let Some(l) = &q.local {
        if !entails_bound_env(&env, &Bound::new(ClassExpr::local(), l.clone()))? {
            return Ok(false);
        }
    }
    if let Some(g) = &q.global {
        if !entails_bound_env(&env, &Bound::new(ClassExpr::global(), g.clone()))? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Decides mutual entailment (logical equivalence) of two assertions.
pub fn equivalent<L: Lattice + std::fmt::Display>(
    p: &Assertion<L>,
    q: &Assertion<L>,
) -> Result<bool, EntailError> {
    Ok(entails(p, q)? && entails(q, p)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::VarId;
    use secflow_lattice::{Linear, TwoPoint};

    type E = ClassExpr<TwoPoint>;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn hi() -> Extended<TwoPoint> {
        Extended::Elem(TwoPoint::High)
    }

    fn lo() -> Extended<TwoPoint> {
        Extended::Elem(TwoPoint::Low)
    }

    fn policy_two() -> Assertion<TwoPoint> {
        // {x̲ ≤ High, y̲ ≤ Low, local ≤ Low, global ≤ Low}
        Assertion::new(
            vec![
                Bound::var_le(v(0), TwoPoint::High),
                Bound::var_le(v(1), TwoPoint::Low),
            ],
            E::lit(lo()),
            E::lit(lo()),
        )
    }

    #[test]
    fn entails_its_own_conjuncts() {
        let p = policy_two();
        assert!(entails(&p, &p).unwrap());
        assert!(entails_bound(&p, &Bound::var_le(v(0), TwoPoint::High)).unwrap());
        assert!(entails_bound(&p, &Bound::var_le(v(1), TwoPoint::Low)).unwrap());
    }

    #[test]
    fn does_not_entail_tighter_bounds() {
        let p = policy_two();
        assert!(!entails_bound(&p, &Bound::var_le(v(0), TwoPoint::Low)).unwrap());
    }

    #[test]
    fn entails_weaker_bounds() {
        let p = policy_two();
        assert!(entails_bound(&p, &Bound::var_le(v(1), TwoPoint::High)).unwrap());
    }

    #[test]
    fn joins_on_lhs_use_joined_sup() {
        let p = policy_two();
        // x̲ ⊕ y̲ ≤ High holds; ≤ Low does not (x̲ can be High).
        let join = E::var(v(0)).join(&E::var(v(1)));
        assert!(entails_bound(&p, &Bound::new(join.clone(), E::lit(hi()))).unwrap());
        assert!(!entails_bound(&p, &Bound::new(join, E::lit(lo()))).unwrap());
    }

    #[test]
    fn local_and_global_atoms_resolve_via_partition() {
        let p = policy_two();
        // y̲ ⊕ local ⊕ global ≤ Low holds because all three are ≤ Low.
        let lhs = E::var(v(1)).join(&E::local()).join(&E::global());
        assert!(entails_bound(&p, &Bound::new(lhs, E::lit(lo()))).unwrap());
    }

    #[test]
    fn unbounded_atom_blocks_entailment() {
        let p = Assertion::state_only(vec![Bound::var_le(v(0), TwoPoint::High)]);
        // local is unconstrained: local ≤ High is not derivable.
        assert!(!entails_bound(&p, &Bound::new(E::local(), E::lit(hi()))).unwrap());
    }

    #[test]
    fn unsatisfiable_premise_entails_everything() {
        // {High ≤ Low} |- anything.
        let p = Assertion::state_only(vec![Bound::new(E::lit(hi()), E::lit(lo()))]);
        assert!(entails_bound(&p, &Bound::var_le(v(9), TwoPoint::Low)).unwrap());
    }

    #[test]
    fn multiple_bounds_on_one_atom_meet() {
        // {x̲ ≤ L2, x̲ ≤ L1} |- x̲ ≤ L1, not |- x̲ ≤ L0.
        let p = Assertion::state_only(vec![
            Bound::var_le(v(0), Linear(2)),
            Bound::var_le(v(0), Linear(1)),
        ]);
        assert!(entails_bound(&p, &Bound::var_le(v(0), Linear(1))).unwrap());
        assert!(!entails_bound(&p, &Bound::var_le(v(0), Linear(0))).unwrap());
    }

    #[test]
    fn equivalence_is_mutual_entailment() {
        let p = policy_two();
        // Same content, different conjunct order.
        let q = Assertion::new(
            vec![
                Bound::var_le(v(1), TwoPoint::Low),
                Bound::var_le(v(0), TwoPoint::High),
            ],
            E::lit(lo()),
            E::lit(lo()),
        );
        assert!(equivalent(&p, &q).unwrap());
        // Tightening a bound breaks equivalence one way.
        let tight = Assertion::new(
            vec![
                Bound::var_le(v(0), TwoPoint::Low),
                Bound::var_le(v(1), TwoPoint::Low),
            ],
            E::lit(lo()),
            E::lit(lo()),
        );
        assert!(entails(&tight, &p).unwrap());
        assert!(!entails(&p, &tight).unwrap());
    }

    #[test]
    fn missing_local_bound_entails_only_unbound_goals() {
        let p = Assertion::state_only(vec![Bound::var_le(v(0), TwoPoint::Low)]);
        let with_local = Assertion::state_only(vec![]).with_local(E::lit(lo()));
        assert!(!entails(&p, &with_local).unwrap());
        // Conversely a constrained P entails an unconstrained Q.
        let q = Assertion::state_only(vec![]);
        assert!(entails(&policy_two(), &q).unwrap());
    }

    #[test]
    fn non_literal_rhs_is_an_error() {
        let p = policy_two();
        let bad = Bound::new(E::var(v(0)), E::var(v(1)));
        assert!(matches!(
            entails_bound(&p, &bad),
            Err(EntailError::NonLiteralRhs(_))
        ));
    }

    #[test]
    fn nil_lhs_is_below_everything() {
        let p = Assertion::state_only(vec![]);
        assert!(entails_bound(&p, &Bound::new(E::nil(), E::lit(lo()))).unwrap());
        assert!(entails_bound(&p, &Bound::new(E::nil(), E::lit(Extended::Nil))).unwrap());
    }
}
