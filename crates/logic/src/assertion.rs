//! Flow assertions: the `{V, local ≤ l, global ≤ g}` formulas of §3.1.
//!
//! Assertions in the flow logic bound *classifications*, not values. A
//! class expression denotes an element of the extended lattice built from
//! the current classes of variables (`v̲`), the certification variables
//! `local` and `global`, literal classes, and joins (`⊕`). An assertion is
//! a conjunction of upper bounds `lhs ≤ rhs`, partitioned per the paper's
//! `{V, L, G}` notation into state bounds plus the distinguished bounds on
//! `local` and `global` (either of which may be absent = unconstrained).

use std::collections::BTreeMap;
use std::fmt;

use secflow_lang::{Expr, VarId};
use secflow_lattice::{Extended, Lattice};

/// An atom a class expression can mention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// The current class `v̲` of a program variable.
    VarClass(VarId),
    /// The certification variable `local` (local indirect flows).
    Local,
    /// The certification variable `global` (global indirect flows).
    Global,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::VarClass(v) => write!(f, "class(v{})", v.0),
            Atom::Local => write!(f, "local"),
            Atom::Global => write!(f, "global"),
        }
    }
}

/// A class expression: a join of atoms and literal classes.
///
/// Kept in a flattened normal form: a set of atoms plus one literal
/// (`nil` when no literal contributes). This makes syntactic operations
/// (substitution, evaluation, display) straightforward and canonical.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassExpr<L> {
    /// Distinct atoms joined into the expression.
    atoms: Vec<Atom>,
    /// The literal part (join identity: `nil`).
    lit: Extended<L>,
}

impl<L: Lattice> ClassExpr<L> {
    /// The literal expression `c`.
    pub fn lit(c: Extended<L>) -> Self {
        ClassExpr {
            atoms: Vec::new(),
            lit: c,
        }
    }

    /// The literal `nil` (the bottom of the extended scheme).
    pub fn nil() -> Self {
        Self::lit(Extended::Nil)
    }

    /// The single atom `a`.
    pub fn atom(a: Atom) -> Self {
        ClassExpr {
            atoms: vec![a],
            lit: Extended::Nil,
        }
    }

    /// The class `v̲` of a variable.
    pub fn var(v: VarId) -> Self {
        Self::atom(Atom::VarClass(v))
    }

    /// The certification variable `local`.
    pub fn local() -> Self {
        Self::atom(Atom::Local)
    }

    /// The certification variable `global`.
    pub fn global() -> Self {
        Self::atom(Atom::Global)
    }

    /// The class `e̲` of an expression: the join of the classes of its
    /// variables (constants contribute the join identity).
    pub fn of_expr(expr: &Expr) -> Self {
        let mut out = Self::nil();
        expr.for_each_var(&mut |v| out = out.join(&Self::var(v)));
        out
    }

    /// Join (`⊕`) of two class expressions.
    pub fn join(&self, other: &Self) -> Self {
        let mut atoms = self.atoms.clone();
        for a in &other.atoms {
            if !atoms.contains(a) {
                atoms.push(*a);
            }
        }
        atoms.sort();
        ClassExpr {
            atoms,
            lit: self.lit.join(&other.lit),
        }
    }

    /// The distinct atoms of the expression.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The literal part of the expression.
    pub fn literal(&self) -> &Extended<L> {
        &self.lit
    }

    /// Evaluates a fully-literal expression; `None` if any atom remains.
    pub fn eval_lit(&self) -> Option<Extended<L>> {
        self.atoms.is_empty().then(|| self.lit.clone())
    }

    /// Simultaneous substitution of atoms by class expressions.
    ///
    /// Every atom in `map`'s domain is replaced by its image *as it stood
    /// before the substitution* (textual simultaneous substitution, as the
    /// paper's `P[x ← e]` notation requires for the `wait` axiom, which
    /// substitutes `sem̲` and `global` at once).
    pub fn subst(&self, map: &BTreeMap<Atom, ClassExpr<L>>) -> Self {
        let mut out = Self::lit(self.lit.clone());
        for a in &self.atoms {
            match map.get(a) {
                Some(repl) => out = out.join(repl),
                None => out = out.join(&Self::atom(*a)),
            }
        }
        out
    }

    /// `true` iff the expression mentions `a`.
    pub fn mentions(&self, a: Atom) -> bool {
        self.atoms.contains(&a)
    }
}

impl<L: Lattice + fmt::Display> fmt::Display for ClassExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "{}", self.lit);
        }
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, " ⊕ ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        if !self.lit.is_nil() {
            write!(f, " ⊕ {}", self.lit)?;
        }
        Ok(())
    }
}

/// One conjunct: `lhs ≤ rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bound<L> {
    /// The bounded class expression.
    pub lhs: ClassExpr<L>,
    /// The bounding class expression (literal in every proof this crate
    /// produces or checks).
    pub rhs: ClassExpr<L>,
}

impl<L: Lattice> Bound<L> {
    /// Creates `lhs ≤ rhs`.
    pub fn new(lhs: ClassExpr<L>, rhs: ClassExpr<L>) -> Self {
        Bound { lhs, rhs }
    }

    /// `v̲ ≤ c` — the shape of policy-assertion conjuncts.
    pub fn var_le(v: VarId, c: L) -> Self {
        Bound::new(ClassExpr::var(v), ClassExpr::lit(Extended::Elem(c)))
    }

    /// Applies a simultaneous substitution to both sides.
    pub fn subst(&self, map: &BTreeMap<Atom, ClassExpr<L>>) -> Self {
        Bound {
            lhs: self.lhs.subst(map),
            rhs: self.rhs.subst(map),
        }
    }
}

impl<L: Lattice + fmt::Display> fmt::Display for Bound<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ≤ {}", self.lhs, self.rhs)
    }
}

/// A partitioned flow assertion `{V, local ≤ l, global ≤ g}`.
///
/// `state` is the `V` part (it may mention `local`/`global` on bound
/// left-hand sides — substitution instances of the axioms do). The `local`
/// and `global` fields are the distinguished bounds on the certification
/// variables; `None` means unconstrained.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assertion<L> {
    /// The `V` conjuncts.
    pub state: Vec<Bound<L>>,
    /// `l` in `local ≤ l` (`None` = no bound).
    pub local: Option<ClassExpr<L>>,
    /// `g` in `global ≤ g` (`None` = no bound).
    pub global: Option<ClassExpr<L>>,
}

impl<L: Lattice> Assertion<L> {
    /// Creates a fully partitioned assertion.
    pub fn new(state: Vec<Bound<L>>, local: ClassExpr<L>, global: ClassExpr<L>) -> Self {
        Assertion {
            state,
            local: Some(local),
            global: Some(global),
        }
    }

    /// `{V}` with unconstrained `local`/`global`.
    pub fn state_only(state: Vec<Bound<L>>) -> Self {
        Assertion {
            state,
            local: None,
            global: None,
        }
    }

    /// Replaces the `local` bound, keeping everything else.
    pub fn with_local(mut self, l: ClassExpr<L>) -> Self {
        self.local = Some(l);
        self
    }

    /// Replaces the `global` bound, keeping everything else.
    pub fn with_global(mut self, g: ClassExpr<L>) -> Self {
        self.global = Some(g);
        self
    }

    /// Textual simultaneous substitution over the whole assertion.
    ///
    /// Substituting for `local`/`global` converts the corresponding
    /// distinguished bound into a state conjunct (the variable is no
    /// longer constrained by the result), exactly matching the paper's
    /// `wait` axiom `P[sem ← …, global ← …]`.
    pub fn subst(&self, map: &BTreeMap<Atom, ClassExpr<L>>) -> Self {
        let mut state: Vec<Bound<L>> = self.state.iter().map(|b| b.subst(map)).collect();
        let mut local = self.local.clone();
        let mut global = self.global.clone();
        if let Some(repl) = map.get(&Atom::Local) {
            if let Some(l) = local.take() {
                state.push(Bound::new(repl.clone(), l));
            }
        }
        if let Some(repl) = map.get(&Atom::Global) {
            if let Some(g) = global.take() {
                state.push(Bound::new(repl.clone(), g));
            }
        }
        Assertion {
            state,
            local,
            global,
        }
    }
}

impl<L: Lattice + fmt::Display> fmt::Display for Assertion<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for b in &self.state {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(l) = &self.local {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "local ≤ {l}")?;
            first = false;
        }
        if let Some(g) = &self.global {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "global ≤ {g}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lattice::TwoPoint;

    type E = ClassExpr<TwoPoint>;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn join_flattens_and_dedups() {
        let e = E::var(v(0)).join(&E::var(v(1))).join(&E::var(v(0)));
        assert_eq!(e.atoms().len(), 2);
        assert_eq!(*e.literal(), Extended::Nil);
    }

    #[test]
    fn join_merges_literals() {
        let e = E::lit(Extended::Elem(TwoPoint::Low)).join(&E::lit(Extended::Elem(TwoPoint::High)));
        assert_eq!(e.eval_lit(), Some(Extended::Elem(TwoPoint::High)));
    }

    #[test]
    fn eval_lit_fails_on_atoms() {
        let e = E::var(v(0)).join(&E::lit(Extended::Elem(TwoPoint::Low)));
        assert_eq!(e.eval_lit(), None);
    }

    #[test]
    fn subst_is_simultaneous() {
        // [x ← y ⊕ x] applied to x ⊕ y: the replacement's `x` must not be
        // re-substituted.
        let mut map = BTreeMap::new();
        map.insert(Atom::VarClass(v(0)), E::var(v(1)).join(&E::var(v(0))));
        let e = E::var(v(0)).join(&E::var(v(1)));
        let r = e.subst(&map);
        assert_eq!(r.atoms().len(), 2); // {x, y}
        assert!(r.mentions(Atom::VarClass(v(0))));
    }

    #[test]
    fn wait_style_subst_moves_global_bound_into_state() {
        // P = {x̲ ≤ High, local ≤ Low, global ≤ Low};
        // P[sem ← J, global ← J] where J = sem̲ ⊕ local ⊕ global.
        let sem = v(5);
        let j = E::var(sem).join(&E::local()).join(&E::global());
        let p = Assertion::new(
            vec![Bound::var_le(v(0), TwoPoint::High)],
            E::lit(Extended::Elem(TwoPoint::Low)),
            E::lit(Extended::Elem(TwoPoint::Low)),
        );
        let mut map = BTreeMap::new();
        map.insert(Atom::VarClass(sem), j.clone());
        map.insert(Atom::Global, j.clone());
        let q = p.subst(&map);
        assert!(q.global.is_none(), "global becomes unconstrained");
        assert!(q.local.is_some(), "local untouched");
        // The former global bound is now the state conjunct J ≤ Low.
        assert_eq!(q.state.len(), 2);
        assert_eq!(q.state[1].lhs, j);
    }

    #[test]
    fn of_expr_collects_variable_atoms() {
        use secflow_lang::builder::{e, ProgramBuilder};
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let y = b.data("y");
        let expr = e::add(e::var(x), e::mul(e::konst(3), e::var(y)));
        let ce = E::of_expr(&expr);
        assert!(ce.mentions(Atom::VarClass(x)));
        assert!(ce.mentions(Atom::VarClass(y)));
        assert_eq!(*ce.literal(), Extended::Nil);
    }

    #[test]
    fn display_renders_partitioned_form() {
        let a = Assertion::new(
            vec![Bound::var_le(v(0), TwoPoint::High)],
            E::lit(Extended::Elem(TwoPoint::Low)),
            E::lit(Extended::Nil),
        );
        let s = a.to_string();
        assert!(s.contains("class(v0) ≤ High"), "{s}");
        assert!(s.contains("local ≤ Low"), "{s}");
        assert!(s.contains("global ≤ nil"), "{s}");
    }
}
