//! The proof checker: re-derives every rule instance and side condition.
//!
//! [`check_proof`] validates a [`Proof`] against the statement it claims to
//! derive a triple for. Each Figure 1 rule is checked per its definition:
//! axioms by substitution + assertion equivalence, structured rules by
//! premise agreement (the `{V, L, G}` partition discipline of §3.1) plus
//! the entailment side conditions, composition by chaining, consequence by
//! entailment, and concurrent execution by *interference freedom* — for
//! all processes `i ≠ j`, every assertion used in process `i`'s derivation
//! must be preserved by every atomic action of process `j` (checked on the
//! `V` parts only: per §3.2, "indirect flows in one process do not affect
//! indirect flows in another process").

use std::collections::BTreeMap;
use std::fmt;

use secflow_lang::{Expr, Span, Stmt, VarId};
use secflow_lattice::{Extended, Lattice};

use crate::assertion::{Assertion, Atom, Bound, ClassExpr};
use crate::entail::{entails, entails_bound, equivalent, EntailError};
use crate::proof::{Proof, Rule};

/// Why a proof failed to check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckError {
    /// The rule at which checking failed.
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl CheckError {
    fn new(rule: &'static str, message: impl Into<String>) -> Self {
        CheckError {
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for CheckError {}

impl From<EntailError> for CheckError {
    fn from(e: EntailError) -> Self {
        CheckError::new("entailment", e.to_string())
    }
}

/// Checks that `proof` is a valid derivation of `{proof.pre} stmt
/// {proof.post}` in the flow logic.
pub fn check_proof<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    proof: &Proof<L>,
) -> Result<(), CheckError> {
    Checker.check(stmt, proof)
}

/// The substitution `x̲ ← e̲ ⊕ local ⊕ global` of the assignment axiom.
pub fn assign_subst<L: Lattice>(var: VarId, expr: &Expr) -> BTreeMap<Atom, ClassExpr<L>> {
    let repl = ClassExpr::of_expr(expr)
        .join(&ClassExpr::local())
        .join(&ClassExpr::global());
    let mut m = BTreeMap::new();
    m.insert(Atom::VarClass(var), repl);
    m
}

/// The substitution `sem̲ ← sem̲ ⊕ local ⊕ global` of the signal axiom.
pub fn signal_subst<L: Lattice>(sem: VarId) -> BTreeMap<Atom, ClassExpr<L>> {
    let repl = ClassExpr::var(sem)
        .join(&ClassExpr::local())
        .join(&ClassExpr::global());
    let mut m = BTreeMap::new();
    m.insert(Atom::VarClass(sem), repl);
    m
}

/// The simultaneous substitution of the wait axiom:
/// `sem̲ ← sem̲ ⊕ local ⊕ global, global ← sem̲ ⊕ local ⊕ global`.
pub fn wait_subst<L: Lattice>(sem: VarId) -> BTreeMap<Atom, ClassExpr<L>> {
    let repl = ClassExpr::var(sem)
        .join(&ClassExpr::local())
        .join(&ClassExpr::global());
    let mut m = BTreeMap::new();
    m.insert(Atom::VarClass(sem), repl.clone());
    m.insert(Atom::Global, repl);
    m
}

struct Checker;

impl Checker {
    fn check<L: Lattice + fmt::Display>(
        &self,
        stmt: &Stmt,
        proof: &Proof<L>,
    ) -> Result<(), CheckError> {
        match (&proof.rule, stmt) {
            (Rule::Conseq { inner }, _) => {
                if !entails(&proof.pre, &inner.pre)? {
                    return Err(CheckError::new(
                        "consequence rule",
                        format!("{} does not entail {}", proof.pre, inner.pre),
                    ));
                }
                if !entails(&inner.post, &proof.post)? {
                    return Err(CheckError::new(
                        "consequence rule",
                        format!("{} does not entail {}", inner.post, proof.post),
                    ));
                }
                self.check(stmt, inner)
            }

            (Rule::SkipAxiom, Stmt::Skip(_)) => {
                require_equiv(&proof.pre, &proof.post, "skip axiom", "pre must equal post")
            }

            (Rule::AssignAxiom, Stmt::Assign { var, expr, .. }) => {
                let expected = proof.post.subst(&assign_subst(*var, expr));
                require_equiv(
                    &proof.pre,
                    &expected,
                    "assignment axiom",
                    "pre must be post[x̲ ← e̲ ⊕ local ⊕ global]",
                )
            }

            (Rule::SignalAxiom, Stmt::Signal { sem, .. }) => {
                let expected = proof.post.subst(&signal_subst(*sem));
                require_equiv(
                    &proof.pre,
                    &expected,
                    "signal axiom",
                    "pre must be post[sem̲ ← sem̲ ⊕ local ⊕ global]",
                )
            }

            (Rule::WaitAxiom, Stmt::Wait { sem, .. }) => {
                let expected = proof.post.subst(&wait_subst(*sem));
                require_equiv(
                    &proof.pre,
                    &expected,
                    "wait axiom",
                    "pre must be post[sem̲ ← …, global ← …]",
                )
            }

            (
                Rule::If {
                    then_proof,
                    else_proof,
                },
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                },
            ) => self.check_if(
                cond,
                then_branch,
                else_branch.as_deref(),
                then_proof,
                else_proof.as_deref(),
                proof,
            ),

            (
                Rule::While { body },
                Stmt::While {
                    cond, body: sbody, ..
                },
            ) => self.check_while(cond, sbody, body, proof),

            (Rule::Seq { parts }, Stmt::Seq { stmts, .. }) => {
                if parts.len() != stmts.len() {
                    return Err(CheckError::new(
                        "composition rule",
                        format!("{} premises for {} statements", parts.len(), stmts.len()),
                    ));
                }
                require_equiv(&proof.pre, &parts[0].pre, "composition rule", "P0 mismatch")?;
                for i in 0..parts.len() - 1 {
                    require_equiv(
                        &parts[i].post,
                        &parts[i + 1].pre,
                        "composition rule",
                        "adjacent premises must share their intermediate assertion",
                    )?;
                }
                require_equiv(
                    &parts[parts.len() - 1].post,
                    &proof.post,
                    "composition rule",
                    "Pn mismatch",
                )?;
                for (s, p) in stmts.iter().zip(parts) {
                    self.check(s, p)?;
                }
                Ok(())
            }

            (
                Rule::Cobegin { branches },
                Stmt::Cobegin {
                    branches: sbranches,
                    ..
                },
            ) => self.check_cobegin(sbranches, branches, proof),

            (rule_kind, _) => Err(CheckError::new(
                rule_name_of(rule_kind),
                format!(
                    "rule does not match statement {:?}",
                    discriminant_name(stmt)
                ),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_if<L: Lattice + fmt::Display>(
        &self,
        cond: &Expr,
        then_branch: &Stmt,
        else_branch: Option<&Stmt>,
        then_proof: &Proof<L>,
        else_proof: Option<&Proof<L>>,
        node: &Proof<L>,
    ) -> Result<(), CheckError> {
        const RULE: &str = "alternation rule";
        // Premise derivations.
        self.check(then_branch, then_proof)?;
        match (else_branch, else_proof) {
            (Some(sb), Some(pb)) => self.check(sb, pb)?,
            (None, Some(pb)) => self.check(&Stmt::Skip(Span::DUMMY), pb)?,
            (Some(_), None) => {
                return Err(CheckError::new(RULE, "missing proof for the else branch"));
            }
            (None, None) => {
                // The implicit skip-branch proof {V,L',G} skip {V',L',G'}
                // exists iff the precondition entails the postcondition.
                if !entails(&then_proof.pre, &then_proof.post)? {
                    return Err(CheckError::new(
                        RULE,
                        "no valid implicit skip proof for the missing else branch",
                    ));
                }
            }
        }
        // Both premises share pre and post.
        if let Some(pb) = else_proof {
            require_equiv(
                &then_proof.pre,
                &pb.pre,
                RULE,
                "branch preconditions differ",
            )?;
            require_equiv(
                &then_proof.post,
                &pb.post,
                RULE,
                "branch postconditions differ",
            )?;
        }
        // Partition discipline: premises are {V,L',G} Si {V',L',G'} and the
        // conclusion is {V,L,G} if … {V',L,G'}.
        require_same_bound(
            &then_proof.pre.local,
            &then_proof.post.local,
            RULE,
            "L' changes across the branch",
        )?;
        require_same_bound(
            &node.pre.local,
            &node.post.local,
            RULE,
            "L changes across the conclusion",
        )?;
        require_same_bound(
            &node.pre.global,
            &then_proof.pre.global,
            RULE,
            "G differs between conclusion and premise pre",
        )?;
        require_same_bound(
            &node.post.global,
            &then_proof.post.global,
            RULE,
            "G' differs between conclusion and premise post",
        )?;
        require_equiv_states(&node.pre.state, &then_proof.pre.state, RULE, "V differs")?;
        require_equiv_states(&node.post.state, &then_proof.post.state, RULE, "V' differs")?;
        // Side condition: V,L,G |- L'[local ← local ⊕ e̲].
        if let Some(l_prime) = &then_proof.pre.local {
            let lhs = ClassExpr::local().join(&ClassExpr::of_expr(cond));
            if !entails_bound(&node.pre, &Bound::new(lhs, l_prime.clone()))? {
                return Err(CheckError::new(
                    RULE,
                    format!(
                        "side condition fails: {} does not bound local ⊕ e̲ by {}",
                        node.pre, l_prime
                    ),
                ));
            }
        }
        Ok(())
    }

    fn check_while<L: Lattice + fmt::Display>(
        &self,
        cond: &Expr,
        sbody: &Stmt,
        body: &Proof<L>,
        node: &Proof<L>,
    ) -> Result<(), CheckError> {
        const RULE: &str = "iteration rule";
        self.check(sbody, body)?;
        // Premise must be invariant: {V,L',G} S {V,L',G}.
        require_equiv(
            &body.pre,
            &body.post,
            RULE,
            "body derivation is not invariant",
        )?;
        // Partition discipline.
        require_same_bound(
            &node.pre.local,
            &node.post.local,
            RULE,
            "L changes across the conclusion",
        )?;
        require_same_bound(
            &node.pre.global,
            &body.pre.global,
            RULE,
            "G differs between conclusion and premise",
        )?;
        require_equiv_states(&node.pre.state, &body.pre.state, RULE, "V differs (pre)")?;
        require_equiv_states(&node.post.state, &body.pre.state, RULE, "V differs (post)")?;
        // Side condition 1: V,L,G |- L'[local ← local ⊕ e̲].
        if let Some(l_prime) = &body.pre.local {
            let lhs = ClassExpr::local().join(&ClassExpr::of_expr(cond));
            if !entails_bound(&node.pre, &Bound::new(lhs, l_prime.clone()))? {
                return Err(CheckError::new(RULE, "side condition on local fails"));
            }
        }
        // Side condition 2: V,L,G |- G'[global ← global ⊕ local ⊕ e̲].
        if let Some(g_prime) = &node.post.global {
            let lhs = ClassExpr::global()
                .join(&ClassExpr::local())
                .join(&ClassExpr::of_expr(cond));
            if !entails_bound(&node.pre, &Bound::new(lhs, g_prime.clone()))? {
                return Err(CheckError::new(RULE, "side condition on global fails"));
            }
        }
        Ok(())
    }

    fn check_cobegin<L: Lattice + fmt::Display>(
        &self,
        sbranches: &[Stmt],
        branches: &[Proof<L>],
        node: &Proof<L>,
    ) -> Result<(), CheckError> {
        const RULE: &str = "concurrent-execution rule";
        if branches.len() != sbranches.len() {
            return Err(CheckError::new(
                RULE,
                format!(
                    "{} premises for {} processes",
                    branches.len(),
                    sbranches.len()
                ),
            ));
        }
        for (s, p) in sbranches.iter().zip(branches) {
            self.check(s, p)?;
        }
        // Partition discipline: {Vi,L,G} Si {Vi',L,G'}.
        for p in branches {
            require_same_bound(
                &p.pre.local,
                &node.pre.local,
                RULE,
                "premise L differs (pre)",
            )?;
            require_same_bound(
                &p.post.local,
                &node.pre.local,
                RULE,
                "premise L differs (post)",
            )?;
            require_same_bound(&p.pre.global, &node.pre.global, RULE, "premise G differs")?;
            require_same_bound(
                &p.post.global,
                &node.post.global,
                RULE,
                "premise G' differs",
            )?;
        }
        require_same_bound(
            &node.post.local,
            &node.pre.local,
            RULE,
            "conclusion L changes",
        )?;
        // V1,…,Vn conjunction.
        let pre_all: Vec<Bound<L>> = branches.iter().flat_map(|p| p.pre.state.clone()).collect();
        let post_all: Vec<Bound<L>> = branches.iter().flat_map(|p| p.post.state.clone()).collect();
        require_equiv_states(&node.pre.state, &pre_all, RULE, "V1,…,Vn differs (pre)")?;
        require_equiv_states(
            &node.post.state,
            &post_all,
            RULE,
            "V1',…,Vn' differs (post)",
        )?;
        // Interference freedom.
        let atomics: Vec<Vec<AtomicAction<L>>> = sbranches
            .iter()
            .zip(branches)
            .map(|(s, p)| {
                let mut out = Vec::new();
                collect_atomics(s, p, &mut out);
                out
            })
            .collect();
        let assertion_sets: Vec<Vec<Assertion<L>>> = branches
            .iter()
            .map(|p| {
                let mut out = Vec::new();
                p.walk(&mut |n| {
                    if !out.contains(&n.pre) {
                        out.push(n.pre.clone());
                    }
                    if !out.contains(&n.post) {
                        out.push(n.post.clone());
                    }
                });
                out
            })
            .collect();
        for (j, actions) in atomics.iter().enumerate() {
            for (i, assertions) in assertion_sets.iter().enumerate() {
                if i == j {
                    continue;
                }
                for action in actions {
                    for a in assertions {
                        check_preserved(action, a).map_err(|m| CheckError::new(RULE, m))?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// An atomic action of a process, with the precondition its derivation
/// establishes at that point.
struct AtomicAction<L> {
    subst: BTreeMap<Atom, ClassExpr<L>>,
    pre: Assertion<L>,
    what: String,
}

fn collect_atomics<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    proof: &Proof<L>,
    out: &mut Vec<AtomicAction<L>>,
) {
    collect_atomics_ctx(stmt, proof, &proof.pre, out);
}

fn collect_atomics_ctx<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    proof: &Proof<L>,
    ctx_pre: &Assertion<L>,
    out: &mut Vec<AtomicAction<L>>,
) {
    match (&proof.rule, stmt) {
        // A consequence wrapper keeps the outermost (strongest established)
        // precondition for the wrapped statement occurrence.
        (Rule::Conseq { inner }, _) => collect_atomics_ctx(stmt, inner, ctx_pre, out),
        (Rule::AssignAxiom, Stmt::Assign { var, expr, .. }) => out.push(AtomicAction {
            subst: assign_subst(*var, expr),
            pre: ctx_pre.clone(),
            what: format!("assignment to v{}", var.0),
        }),
        (Rule::SignalAxiom, Stmt::Signal { sem, .. }) => out.push(AtomicAction {
            subst: signal_subst(*sem),
            pre: ctx_pre.clone(),
            what: format!("signal(v{})", sem.0),
        }),
        (Rule::WaitAxiom, Stmt::Wait { sem, .. }) => out.push(AtomicAction {
            subst: wait_subst(*sem),
            pre: ctx_pre.clone(),
            what: format!("wait(v{})", sem.0),
        }),
        (Rule::SkipAxiom, _) => {}
        (
            Rule::If {
                then_proof,
                else_proof,
            },
            Stmt::If {
                then_branch,
                else_branch,
                ..
            },
        ) => {
            collect_atomics(then_branch, then_proof, out);
            if let (Some(sb), Some(pb)) = (else_branch, else_proof) {
                collect_atomics(sb, pb, out);
            }
        }
        (Rule::While { body }, Stmt::While { body: sbody, .. }) => {
            collect_atomics(sbody, body, out);
        }
        (Rule::Seq { parts }, Stmt::Seq { stmts, .. }) => {
            for (s, p) in stmts.iter().zip(parts) {
                collect_atomics(s, p, out);
            }
        }
        (Rule::Cobegin { branches }, Stmt::Cobegin { branches: sb, .. }) => {
            for (s, p) in sb.iter().zip(branches) {
                collect_atomics(s, p, out);
            }
        }
        _ => {} // mismatches are reported by the main checker
    }
}

/// Checks `{pre(T) ∧ V(A)} T {V(A)}`: the `V` part of assertion `A` (from
/// another process) survives the atomic action `T`.
///
/// Per §3.2, "indirect flows in one process do not affect indirect flows
/// in another process": the `local`/`global` atoms appearing in `A` are
/// the *other* process's certification variables, which `T` neither
/// modifies nor constrains. `T`'s effect on shared state is therefore the
/// substitution `v̲ ← v̲' ⊕ l_T ⊕ g_T` with the executing process's
/// `local`/`global` *evaluated to literals* from `T`'s precondition —
/// they must not be conflated with `A`'s atoms. In particular a `wait`
/// raises only its own process's `global`, so its cross-process effect is
/// the same as `signal`'s.
fn check_preserved<L: Lattice + fmt::Display>(
    action: &AtomicAction<L>,
    a: &Assertion<L>,
) -> Result<(), String> {
    // The executing process's pc context, as a literal.
    let lit_of = |b: &Option<ClassExpr<L>>| -> Result<Extended<L>, String> {
        match b {
            None => Err(format!(
                "interference check: {} has an unbounded local/global context",
                action.what
            )),
            Some(e) => e.eval_lit().ok_or_else(|| {
                format!(
                    "interference check: {} has a non-literal local/global bound",
                    action.what
                )
            }),
        }
    };
    let lg = lit_of(&action.pre.local)?.join(&lit_of(&action.pre.global)?);

    // Rebuild T's substitution with the context folded in as a literal
    // and without any entry for the `global` atom.
    let mut subst: BTreeMap<Atom, ClassExpr<L>> = BTreeMap::new();
    for (atom, repl) in &action.subst {
        if matches!(atom, Atom::Local | Atom::Global) {
            continue;
        }
        let var_part: ClassExpr<L> = repl
            .atoms()
            .iter()
            .filter(|a| matches!(a, Atom::VarClass(_)))
            .fold(ClassExpr::lit(repl.literal().clone()), |acc, a| {
                acc.join(&ClassExpr::atom(*a))
            });
        subst.insert(*atom, var_part.join(&ClassExpr::lit(lg.clone())));
    }

    // Premise: A's own bounds (its local/global partition applies to its
    // own atoms) plus the Local/Global-free facts of T's precondition
    // (shared-variable bounds mean the same thing in both processes).
    let mut combined_state = a.state.clone();
    combined_state.extend(
        action
            .pre
            .state
            .iter()
            .filter(|b| {
                !b.lhs.mentions(Atom::Local)
                    && !b.lhs.mentions(Atom::Global)
                    && !b.rhs.mentions(Atom::Local)
                    && !b.rhs.mentions(Atom::Global)
            })
            .cloned(),
    );
    let combined = Assertion {
        state: combined_state,
        local: a.local.clone(),
        global: a.global.clone(),
    };
    for b in &a.state {
        let substituted = b.subst(&subst);
        match entails_bound(&combined, &substituted) {
            Ok(true) => {}
            Ok(false) => {
                return Err(format!(
                    "interference: {} invalidates bound {} (needed: {})",
                    action.what, b, substituted
                ));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

fn require_equiv<L: Lattice + fmt::Display>(
    a: &Assertion<L>,
    b: &Assertion<L>,
    rule: &'static str,
    what: &str,
) -> Result<(), CheckError> {
    if equivalent(a, b)? {
        Ok(())
    } else {
        Err(CheckError::new(rule, format!("{what}: {a} vs {b}")))
    }
}

fn require_equiv_states<L: Lattice + fmt::Display>(
    a: &[Bound<L>],
    b: &[Bound<L>],
    rule: &'static str,
    what: &str,
) -> Result<(), CheckError> {
    let pa = Assertion::state_only(a.to_vec());
    let pb = Assertion::state_only(b.to_vec());
    require_equiv(&pa, &pb, rule, what)
}

fn require_same_bound<L: Lattice + fmt::Display>(
    a: &Option<ClassExpr<L>>,
    b: &Option<ClassExpr<L>>,
    rule: &'static str,
    what: &str,
) -> Result<(), CheckError> {
    let same = match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x == y
                || match (x.eval_lit(), y.eval_lit()) {
                    (Some(vx), Some(vy)) => vx == vy,
                    _ => false,
                }
        }
        _ => false,
    };
    if same {
        Ok(())
    } else {
        let show = |o: &Option<ClassExpr<L>>| match o {
            None => "(unbounded)".to_string(),
            Some(e) => e.to_string(),
        };
        Err(CheckError::new(
            rule,
            format!("{what}: {} vs {}", show(a), show(b)),
        ))
    }
}

fn rule_name_of<L>(rule: &Rule<L>) -> &'static str {
    match rule {
        Rule::SkipAxiom => "skip axiom",
        Rule::AssignAxiom => "assignment axiom",
        Rule::SignalAxiom => "signal axiom",
        Rule::WaitAxiom => "wait axiom",
        Rule::If { .. } => "alternation rule",
        Rule::While { .. } => "iteration rule",
        Rule::Seq { .. } => "composition rule",
        Rule::Cobegin { .. } => "concurrent-execution rule",
        Rule::Conseq { .. } => "consequence rule",
    }
}

fn discriminant_name(stmt: &Stmt) -> &'static str {
    match stmt {
        Stmt::Skip(_) => "skip",
        Stmt::Assign { .. } => "assignment",
        Stmt::If { .. } => "if",
        Stmt::While { .. } => "while",
        Stmt::Seq { .. } => "begin/end",
        Stmt::Cobegin { .. } => "cobegin/coend",
        Stmt::Wait { .. } => "wait",
        Stmt::Signal { .. } => "signal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secflow_lang::builder::{e, s, ProgramBuilder};
    use secflow_lattice::{Extended, TwoPoint};

    type E = ClassExpr<TwoPoint>;

    fn lo() -> Extended<TwoPoint> {
        Extended::Elem(TwoPoint::Low)
    }

    fn hi() -> Extended<TwoPoint> {
        Extended::Elem(TwoPoint::High)
    }

    /// The §5.2 counterexample program `begin x := 0; y := x end` with the
    /// paper's verbatim proof, transcribed and machine-checked.
    #[test]
    fn paper_section_5_2_proof_checks() {
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let y = b.data("y");
        let prog = b.finish(s::seq([s::assign(x, e::konst(0)), s::assign(y, e::var(x))]));

        // {x̲ ≤ high, x̲ ≤ low, local ≤ low, global ≤ low}   (pre)
        // x := 0
        // {x̲ ≤ low, y̲ ≤ low, local ≤ low, global ≤ low}    (mid)
        // y := x
        // {x̲ ≤ low, y̲ ≤ low, local ≤ low, global ≤ low}    (post)
        //
        // The paper's rendition of the middle/post assertions writes
        // `x ≤ low` for the second conjunct; we bound both variables.
        let pre = Assertion::new(
            vec![
                Bound::var_le(x, TwoPoint::High),
                Bound::var_le(y, TwoPoint::Low),
            ],
            E::lit(lo()),
            E::lit(lo()),
        );
        let mid = Assertion::new(
            vec![
                Bound::var_le(x, TwoPoint::Low),
                Bound::var_le(y, TwoPoint::Low),
            ],
            E::lit(lo()),
            E::lit(lo()),
        );
        let post = mid.clone();

        // First assignment via the axiom + consequence:
        // axiom pre = mid[x̲ ← 0̲ ⊕ local ⊕ global] = {local⊕global ≤ low, y̲ ≤ low, …}.
        let ax1_pre = mid.subst(&assign_subst(x, &e::konst(0)));
        let p1 = Proof::new(
            pre.clone(),
            mid.clone(),
            Rule::Conseq {
                inner: Box::new(Proof::new(ax1_pre, mid.clone(), Rule::AssignAxiom)),
            },
        );
        // Second assignment likewise.
        let ax2_pre = post.subst(&assign_subst(y, &e::var(x)));
        let p2 = Proof::new(
            mid.clone(),
            post.clone(),
            Rule::Conseq {
                inner: Box::new(Proof::new(ax2_pre, post.clone(), Rule::AssignAxiom)),
            },
        );
        let proof = Proof::new(
            pre,
            post,
            Rule::Seq {
                parts: vec![p1, p2],
            },
        );
        check_proof(&prog.body, &proof).unwrap();
    }

    #[test]
    fn wrong_direction_assignment_fails() {
        // {y̲ ≤ low, x̲ ≤ high, …} y := x {y̲ ≤ low, …} must NOT check:
        // after y := x, y̲ can be High.
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let y = b.data("y");
        let prog = b.finish(s::assign(y, e::var(x)));

        let i = vec![
            Bound::var_le(x, TwoPoint::High),
            Bound::var_le(y, TwoPoint::Low),
        ];
        let pre = Assertion::new(i.clone(), E::lit(lo()), E::lit(lo()));
        let post = pre.clone();
        let ax_pre = post.subst(&assign_subst(y, &e::var(x)));
        let proof = Proof::new(
            pre,
            post.clone(),
            Rule::Conseq {
                inner: Box::new(Proof::new(ax_pre, post, Rule::AssignAxiom)),
            },
        );
        let err = check_proof(&prog.body, &proof).unwrap_err();
        assert_eq!(err.rule, "consequence rule");
    }

    #[test]
    fn skip_axiom_requires_equal_pre_post() {
        let prog_stmt = s::skip();
        let a = Assertion::<TwoPoint>::state_only(vec![]);
        let ok = Proof::new(a.clone(), a.clone(), Rule::SkipAxiom);
        check_proof(&prog_stmt, &ok).unwrap();

        let b = Assertion::state_only(vec![Bound::new(E::lit(hi()), E::lit(lo()))]);
        let bad = Proof::new(a, b, Rule::SkipAxiom);
        assert!(check_proof(&prog_stmt, &bad).is_err());
    }

    #[test]
    fn rule_statement_mismatch_is_reported() {
        let stmt = s::skip();
        let a = Assertion::<TwoPoint>::state_only(vec![]);
        let proof = Proof::new(a.clone(), a, Rule::AssignAxiom);
        let err = check_proof(&stmt, &proof).unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn seq_premise_count_must_match() {
        let mut b = ProgramBuilder::new();
        let x = b.data("x");
        let prog = b.finish(s::seq([s::assign(x, e::konst(0)), s::skip()]));
        let a = Assertion::<TwoPoint>::state_only(vec![]);
        let proof = Proof::new(
            a.clone(),
            a.clone(),
            Rule::Seq {
                parts: vec![Proof::new(a.clone(), a.clone(), Rule::SkipAxiom)],
            },
        );
        let err = check_proof(&prog.body, &proof).unwrap_err();
        assert!(err.message.contains("premises"));
    }
}
