//! The Appendix Lemma, validated over concrete proofs.
//!
//! > **Lemma.** Suppose a proof of `{V, local ≤ l, global ≤ g} S
//! > {V', local ≤ l, global ≤ g'}` exists. If the precondition is
//! > satisfiable, then (a) `l ⊕ g ≤ mod(S)` and (b) `g ⊕ flow(S) ≤ g'`.
//!
//! The paper leaves the proof "to the reader"; this module machine-checks
//! both bounds at every statement-level triple of a derivation (a
//! consequence wrapper and the derivation it wraps count as one triple).
//! The `theorems` integration tests apply it to every proof the Theorem-1
//! builder produces, which is how the reproduction validates the Lemma
//! empirically across random programs.

use std::fmt;

use secflow_core::{mod_flow, StaticBinding};
use secflow_lang::{Span, Stmt};
use secflow_lattice::{Extended, Lattice};

use crate::assertion::ClassExpr;
use crate::proof::{Proof, Rule};

/// A violated Lemma bound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LemmaViolation {
    /// `"a"` for `l ⊕ g ≤ mod(S)`, `"b"` for `g ⊕ flow(S) ≤ g'`.
    pub part: &'static str,
    /// Which rule's triple violated it.
    pub rule: &'static str,
    /// Rendered description.
    pub detail: String,
}

impl fmt::Display for LemmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lemma part ({}) fails at a {} triple: {}",
            self.part, self.rule, self.detail
        )
    }
}

impl std::error::Error for LemmaViolation {}

/// Checks Lemma parts (a) and (b) at every statement-level triple.
///
/// Triples whose `local`/`global` bounds are absent or non-literal are
/// skipped (the Lemma presumes the partitioned literal form).
pub fn check_lemma<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    proof: &Proof<L>,
    sbind: &StaticBinding<L>,
) -> Result<(), LemmaViolation> {
    check_at(stmt, proof, sbind)
}

fn literal_of<L: Lattice>(b: &Option<ClassExpr<L>>) -> Option<Extended<L>> {
    b.as_ref().and_then(|e| e.eval_lit())
}

fn check_at<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    proof: &Proof<L>,
    sbind: &StaticBinding<L>,
) -> Result<(), LemmaViolation> {
    if let (Some(l), Some(g)) = (literal_of(&proof.pre.local), literal_of(&proof.pre.global)) {
        let (mod_s, flow_s) = mod_flow(stmt, sbind);
        // (a) l ⊕ g ≤ mod(S).
        let lg = l.join(&g);
        if !mod_s.bounds(&lg) {
            return Err(LemmaViolation {
                part: "a",
                rule: proof.rule_name(),
                detail: format!("l ⊕ g = {lg} exceeds mod(S) = {mod_s}"),
            });
        }
        // (b) g ⊕ flow(S) ≤ g'.
        if let Some(g_prime) = literal_of(&proof.post.global) {
            let gf = g.join(&flow_s);
            if !gf.leq(&g_prime) {
                return Err(LemmaViolation {
                    part: "b",
                    rule: proof.rule_name(),
                    detail: format!("g ⊕ flow(S) = {gf} exceeds g' = {g_prime}"),
                });
            }
        }
    }
    // Recurse into statement-level children.
    match (&proof.rule, stmt) {
        (Rule::Conseq { inner }, _) => descend_conseq(stmt, inner, sbind),
        (
            Rule::If {
                then_proof,
                else_proof,
            },
            Stmt::If {
                then_branch,
                else_branch,
                ..
            },
        ) => {
            check_at(then_branch, then_proof, sbind)?;
            match (else_branch, else_proof) {
                (Some(sb), Some(pb)) => check_at(sb, pb, sbind),
                (None, Some(pb)) => check_at(&Stmt::Skip(Span::DUMMY), pb, sbind),
                _ => Ok(()),
            }
        }
        (Rule::While { body }, Stmt::While { body: sbody, .. }) => check_at(sbody, body, sbind),
        (Rule::Seq { parts }, Stmt::Seq { stmts, .. }) => {
            for (s, p) in stmts.iter().zip(parts) {
                check_at(s, p, sbind)?;
            }
            Ok(())
        }
        (Rule::Cobegin { branches }, Stmt::Cobegin { branches: sb, .. }) => {
            for (s, p) in sb.iter().zip(branches) {
                check_at(s, p, sbind)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// A consequence wrapper shares its statement: recurse into the wrapped
/// derivation's children without re-treating it as a new triple (its own
/// pre may be the non-partitioned axiom-instance form).
fn descend_conseq<L: Lattice + fmt::Display>(
    stmt: &Stmt,
    inner: &Proof<L>,
    sbind: &StaticBinding<L>,
) -> Result<(), LemmaViolation> {
    match (&inner.rule, stmt) {
        (Rule::Conseq { inner: deeper }, _) => descend_conseq(stmt, deeper, sbind),
        (Rule::SkipAxiom, _)
        | (Rule::AssignAxiom, _)
        | (Rule::SignalAxiom, _)
        | (Rule::WaitAxiom, _) => Ok(()),
        _ => check_at(stmt, inner, sbind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem1::{build_proof, prove};
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn nil() -> Extended<TwoPoint> {
        Extended::Nil
    }

    #[test]
    fn lemma_holds_on_constructed_proofs() {
        let srcs = [
            "var x, y : integer; y := x",
            "var y : integer; sem : semaphore; begin wait(sem); y := 1 end",
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
            "var x : integer; while x > 0 do x := x - 1",
        ];
        for src in srcs {
            let p = parse(src).unwrap();
            let sbind = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
            let proof = prove(&p, &sbind, nil(), nil()).unwrap();
            check_lemma(&p.body, &proof, &sbind).unwrap();
        }
    }

    #[test]
    fn lemma_part_a_detects_excessive_l() {
        // Build with l = High for a Low-mod statement: the builder will
        // happily construct it, and the Lemma flags part (a).
        let p = parse("var x, y : integer; y := x").unwrap();
        let sbind = StaticBinding::uniform(&p.symbols, &TwoPointScheme);
        let proof = build_proof(&p, &sbind, Extended::Elem(TwoPoint::High), nil());
        let err = check_lemma(&p.body, &proof, &sbind).unwrap_err();
        assert_eq!(err.part, "a");
        assert!(err.to_string().contains("mod"));
    }
}
