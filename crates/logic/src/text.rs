//! A textual format for flow proofs: write them out, read them back,
//! check them independently.
//!
//! A proof file is a single node; every node carries its `pre`/`post`
//! assertions and its premise sub-nodes, mirroring Figure 1:
//!
//! ```text
//! seq {
//!   pre  { x <= high, y <= low, local <= low, global <= low }
//!   post { x <= low,  y <= low, local <= low, global <= low }
//!   conseq {
//!     pre  { ... }
//!     post { ... }
//!     assign {
//!       pre  { nil + local + global <= low, y <= low, local <= low, global <= low }
//!       post { x <= low, y <= low, local <= low, global <= low }
//!     }
//!   }
//!   ...
//! }
//! ```
//!
//! Assertions are comma-separated bounds `lhs <= rhs`; a left-hand side
//! is a `+`-join of variable names, `local`, `global` and class literals;
//! right-hand sides are class literals. The special left-hand names
//! `local`/`global` at the top level of an assertion set the partitioned
//! `L`/`G` bounds of §3.1. Class literals are supplied by the caller via
//! a parser/printer pair, so the format works for any lattice the host
//! application exposes (the CLI wires up `low`/`high` and `0..n-1`).
//!
//! Round-trip guarantee: `parse_proof(write_proof(p)) == p` structurally,
//! property-tested over Theorem-1 proofs of random programs.

use std::fmt::Write as _;

use secflow_lang::SymbolTable;
use secflow_lattice::{Extended, Lattice};

use crate::assertion::{Assertion, Atom, Bound, ClassExpr};
use crate::proof::{Proof, Rule};

/// A parse error with a line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProofParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ProofParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "proof syntax error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProofParseError {}

// ---- writing --------------------------------------------------------------

/// Serializes a proof to the textual format.
///
/// `show_lit` renders a class literal (it must be re-readable by the
/// `parse_lit` handed to [`parse_proof`]); `nil` is built in.
pub fn write_proof<L: Lattice>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> String {
    let mut out = String::new();
    write_node(proof, symbols, show_lit, 0, &mut out);
    out
}

fn write_node<L: Lattice>(
    proof: &Proof<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    let name = match &proof.rule {
        Rule::SkipAxiom => "skip",
        Rule::AssignAxiom => "assign",
        Rule::SignalAxiom => "signal",
        Rule::WaitAxiom => "wait",
        Rule::If { .. } => "if",
        Rule::While { .. } => "while",
        Rule::Seq { .. } => "seq",
        Rule::Cobegin { .. } => "cobegin",
        Rule::Conseq { .. } => "conseq",
    };
    let _ = writeln!(out, "{pad}{name} {{");
    let _ = writeln!(
        out,
        "{pad}  pre  {}",
        write_assertion(&proof.pre, symbols, show_lit)
    );
    let _ = writeln!(
        out,
        "{pad}  post {}",
        write_assertion(&proof.post, symbols, show_lit)
    );
    match &proof.rule {
        Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
        Rule::If {
            then_proof,
            else_proof,
        } => {
            write_node(then_proof, symbols, show_lit, depth + 1, out);
            if let Some(e) = else_proof {
                write_node(e, symbols, show_lit, depth + 1, out);
            }
        }
        Rule::While { body } => write_node(body, symbols, show_lit, depth + 1, out),
        Rule::Seq { parts } => {
            for p in parts {
                write_node(p, symbols, show_lit, depth + 1, out);
            }
        }
        Rule::Cobegin { branches } => {
            for p in branches {
                write_node(p, symbols, show_lit, depth + 1, out);
            }
        }
        Rule::Conseq { inner } => write_node(inner, symbols, show_lit, depth + 1, out),
    }
    let _ = writeln!(out, "{pad}}}");
}

fn write_assertion<L: Lattice>(
    a: &Assertion<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> String {
    let mut parts: Vec<String> = a
        .state
        .iter()
        .map(|b| {
            format!(
                "{} <= {}",
                write_expr(&b.lhs, symbols, show_lit),
                write_expr(&b.rhs, symbols, show_lit)
            )
        })
        .collect();
    if let Some(l) = &a.local {
        parts.push(format!("local <= {}", write_expr(l, symbols, show_lit)));
    }
    if let Some(g) = &a.global {
        parts.push(format!("global <= {}", write_expr(g, symbols, show_lit)));
    }
    format!("{{ {} }}", parts.join(", "))
}

fn write_expr<L: Lattice>(
    e: &ClassExpr<L>,
    symbols: &SymbolTable,
    show_lit: &dyn Fn(&L) -> String,
) -> String {
    let mut parts: Vec<String> = e
        .atoms()
        .iter()
        .map(|a| match a {
            Atom::VarClass(v) => symbols.name(*v).to_string(),
            Atom::Local => "local".to_string(),
            Atom::Global => "global".to_string(),
        })
        .collect();
    match e.literal() {
        Extended::Nil => {
            if parts.is_empty() {
                parts.push("nil".to_string());
            }
        }
        Extended::Elem(l) => parts.push(show_lit(l)),
    }
    parts.join(" + ")
}

// ---- reading --------------------------------------------------------------

/// Parses the textual format back into a [`Proof`].
///
/// Variable names resolve against `symbols`; `parse_lit` reads the class
/// literals `show_lit` produced (plus anything else the host wants to
/// accept). `nil` is built in.
pub fn parse_proof<L: Lattice>(
    source: &str,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<Proof<L>, ProofParseError> {
    let mut toks = Tokens::new(source);
    let proof = parse_node(&mut toks, symbols, parse_lit)?;
    if let Some((t, line)) = toks.peek() {
        return Err(ProofParseError {
            line,
            message: format!("unexpected trailing `{t}`"),
        });
    }
    Ok(proof)
}

struct Tokens {
    items: Vec<(String, u32)>,
    pos: usize,
}

impl Tokens {
    fn new(source: &str) -> Self {
        let mut items = Vec::new();
        for (i, raw_line) in source.lines().enumerate() {
            let line = (i + 1) as u32;
            // Strip comments.
            let text = raw_line.split("--").next().unwrap_or("");
            let mut cur = String::new();
            let flush = |cur: &mut String, items: &mut Vec<(String, u32)>| {
                if !cur.is_empty() {
                    items.push((std::mem::take(cur), line));
                }
            };
            let mut chars = text.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    ch if ch.is_whitespace() => flush(&mut cur, &mut items),
                    '{' | '}' | ',' | '+' => {
                        flush(&mut cur, &mut items);
                        items.push((c.to_string(), line));
                    }
                    '<' if chars.peek() == Some(&'=') => {
                        chars.next();
                        flush(&mut cur, &mut items);
                        items.push(("<=".to_string(), line));
                    }
                    _ => cur.push(c),
                }
            }
            flush(&mut cur, &mut items);
        }
        Tokens { items, pos: 0 }
    }

    fn peek(&self) -> Option<(&str, u32)> {
        self.items.get(self.pos).map(|(t, l)| (t.as_str(), *l))
    }

    fn next(&mut self) -> Option<(String, u32)> {
        let item = self.items.get(self.pos).cloned();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn line(&self) -> u32 {
        self.items
            .get(self.pos.min(self.items.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn expect(&mut self, tok: &str) -> Result<(), ProofParseError> {
        match self.next() {
            Some((t, _)) if t == tok => Ok(()),
            Some((t, line)) => Err(ProofParseError {
                line,
                message: format!("expected `{tok}`, found `{t}`"),
            }),
            None => Err(ProofParseError {
                line: self.line(),
                message: format!("expected `{tok}`, found end of input"),
            }),
        }
    }
}

fn err(line: u32, message: impl Into<String>) -> ProofParseError {
    ProofParseError {
        line,
        message: message.into(),
    }
}

fn parse_node<L: Lattice>(
    toks: &mut Tokens,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<Proof<L>, ProofParseError> {
    let (rule_name, line) = toks
        .next()
        .ok_or_else(|| err(0, "expected a rule name, found end of input"))?;
    toks.expect("{")?;
    // pre/post headers.
    let kw = toks.next().ok_or_else(|| err(line, "missing `pre`"))?;
    if kw.0 != "pre" {
        return Err(err(kw.1, format!("expected `pre`, found `{}`", kw.0)));
    }
    let pre = parse_assertion(toks, symbols, parse_lit)?;
    let kw = toks.next().ok_or_else(|| err(line, "missing `post`"))?;
    if kw.0 != "post" {
        return Err(err(kw.1, format!("expected `post`, found `{}`", kw.0)));
    }
    let post = parse_assertion(toks, symbols, parse_lit)?;

    // Children until the closing brace.
    let mut children = Vec::new();
    loop {
        match toks.peek() {
            Some(("}", _)) => {
                toks.next();
                break;
            }
            Some(_) => children.push(parse_node(toks, symbols, parse_lit)?),
            None => return Err(err(toks.line(), "unterminated node (missing `}`)")),
        }
    }

    let n_children = children.len();
    let arity_err = |want: &str| {
        err(
            line,
            format!("rule `{rule_name}` needs {want}, found {n_children} premise(s)"),
        )
    };
    let rule = match rule_name.as_str() {
        "skip" | "assign" | "signal" | "wait" => {
            if !children.is_empty() {
                return Err(arity_err("no premises"));
            }
            match rule_name.as_str() {
                "skip" => Rule::SkipAxiom,
                "assign" => Rule::AssignAxiom,
                "signal" => Rule::SignalAxiom,
                _ => Rule::WaitAxiom,
            }
        }
        "if" => {
            let mut it = children.into_iter();
            match (it.next(), it.next(), it.next()) {
                (Some(t), Some(e), None) => Rule::If {
                    then_proof: Box::new(t),
                    else_proof: Some(Box::new(e)),
                },
                (Some(t), None, _) => Rule::If {
                    then_proof: Box::new(t),
                    else_proof: None,
                },
                _ => return Err(arity_err("one or two premises")),
            }
        }
        "while" => {
            if children.len() != 1 {
                return Err(arity_err("exactly one premise"));
            }
            Rule::While {
                body: Box::new(children.pop_one()),
            }
        }
        "conseq" => {
            if children.len() != 1 {
                return Err(arity_err("exactly one premise"));
            }
            Rule::Conseq {
                inner: Box::new(children.pop_one()),
            }
        }
        "seq" => {
            if children.is_empty() {
                return Err(arity_err("at least one premise"));
            }
            Rule::Seq { parts: children }
        }
        "cobegin" => {
            if children.len() < 2 {
                return Err(arity_err("at least two premises"));
            }
            Rule::Cobegin { branches: children }
        }
        other => return Err(err(line, format!("unknown rule `{other}`"))),
    };
    Ok(Proof::new(pre, post, rule))
}

trait PopOne<T> {
    fn pop_one(self) -> T;
}

impl<T> PopOne<T> for Vec<T> {
    fn pop_one(mut self) -> T {
        self.pop().expect("length checked by caller")
    }
}

fn parse_assertion<L: Lattice>(
    toks: &mut Tokens,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<Assertion<L>, ProofParseError> {
    toks.expect("{")?;
    let mut state = Vec::new();
    let mut local = None;
    let mut global = None;
    if let Some(("}", _)) = toks.peek() {
        toks.next();
        return Ok(Assertion {
            state,
            local,
            global,
        });
    }
    loop {
        let lhs = parse_expr(toks, symbols, parse_lit)?;
        toks.expect("<=")?;
        let rhs = parse_expr(toks, symbols, parse_lit)?;
        // A bare `local <= …` / `global <= …` conjunct is the partition
        // bound; anything else goes into the V part.
        if lhs == ClassExpr::local() {
            local = Some(rhs);
        } else if lhs == ClassExpr::global() {
            global = Some(rhs);
        } else {
            state.push(Bound::new(lhs, rhs));
        }
        match toks.next() {
            Some((t, _)) if t == "," => continue,
            Some((t, _)) if t == "}" => break,
            Some((t, line)) => return Err(err(line, format!("expected `,` or `}}`, found `{t}`"))),
            None => return Err(err(toks.line(), "unterminated assertion")),
        }
    }
    Ok(Assertion {
        state,
        local,
        global,
    })
}

fn parse_expr<L: Lattice>(
    toks: &mut Tokens,
    symbols: &SymbolTable,
    parse_lit: &dyn Fn(&str) -> Option<L>,
) -> Result<ClassExpr<L>, ProofParseError> {
    let mut acc: Option<ClassExpr<L>> = None;
    loop {
        let (t, line) = toks
            .next()
            .ok_or_else(|| err(toks.line(), "expected a class term"))?;
        let term = match t.as_str() {
            "local" => ClassExpr::local(),
            "global" => ClassExpr::global(),
            "nil" => ClassExpr::nil(),
            name => {
                if let Some(v) = symbols.lookup(name) {
                    ClassExpr::var(v)
                } else if let Some(l) = parse_lit(name) {
                    ClassExpr::lit(Extended::Elem(l))
                } else {
                    return Err(err(
                        line,
                        format!("`{name}` is neither a declared variable nor a class literal"),
                    ));
                }
            }
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => prev.join(&term),
        });
        match toks.peek() {
            Some(("+", _)) => {
                toks.next();
            }
            _ => break,
        }
    }
    Ok(acc.expect("at least one term parsed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_proof;
    use crate::examples::{relative_strength_program, relative_strength_proof};
    use crate::theorem1::prove;
    use secflow_core::StaticBinding;
    use secflow_lang::parse;
    use secflow_lattice::{TwoPoint, TwoPointScheme};

    fn show(l: &TwoPoint) -> String {
        match l {
            TwoPoint::Low => "low".into(),
            TwoPoint::High => "high".into(),
        }
    }

    fn read(s: &str) -> Option<TwoPoint> {
        match s {
            "low" => Some(TwoPoint::Low),
            "high" => Some(TwoPoint::High),
            _ => None,
        }
    }

    #[test]
    fn round_trips_the_paper_proof() {
        let (program, _) = relative_strength_program();
        let proof = relative_strength_proof(&program);
        let text = write_proof(&proof, &program.symbols, &show);
        let reparsed =
            parse_proof(&text, &program.symbols, &read).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, proof);
        check_proof(&program.body, &reparsed).unwrap();
    }

    #[test]
    fn round_trips_theorem1_proofs() {
        use secflow_lattice::Extended;
        let srcs = [
            "var x, y : integer; sem : semaphore;
             cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend",
            "var a : integer; while a > 0 do a := a - 1",
            "var a, b : integer; if a = b then skip else b := a",
        ];
        for src in srcs {
            let p = parse(src).unwrap();
            let sbind = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
            let proof = prove(&p, &sbind, Extended::Nil, Extended::Nil).unwrap();
            let text = write_proof(&proof, &p.symbols, &show);
            let reparsed = parse_proof(&text, &p.symbols, &read)
                .unwrap_or_else(|e| panic!("{src}: {e}\n{text}"));
            assert_eq!(reparsed, proof, "{src}");
            check_proof(&p.body, &reparsed).unwrap();
        }
    }

    #[test]
    fn hand_written_proof_checks() {
        let program = parse("var x : integer; skip").unwrap();
        let text = "\
            skip {\n\
              pre  { x <= high, local <= low, global <= low }\n\
              post { x <= high, local <= low, global <= low }\n\
            }\n";
        let proof = parse_proof(text, &program.symbols, &read).unwrap();
        check_proof(&program.body, &proof).unwrap();
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let program = parse("var x : integer; skip").unwrap();
        let text = "\
            skip { -- the trivial proof\n\
              pre  {x<=high,local<=low,global<=low}\n\
              post  {  x <= high , local <= low , global <= low }\n\
            }\n";
        assert!(parse_proof(text, &program.symbols, &read).is_ok());
    }

    #[test]
    fn unknown_names_are_rejected_with_lines() {
        let program = parse("var x : integer; skip").unwrap();
        let text = "skip {\n pre { ghost <= high }\n post { }\n}\n";
        let e = parse_proof(text, &program.symbols, &read).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn arity_errors_are_reported() {
        let program = parse("var x : integer; skip").unwrap();
        let text = "while {\n pre { }\n post { }\n}\n";
        let e = parse_proof(text, &program.symbols, &read).unwrap_err();
        assert!(e.message.contains("exactly one premise"), "{e}");
        let text = "cobegin {\n pre { }\n post { }\n skip { pre { } post { } }\n}\n";
        let e = parse_proof(text, &program.symbols, &read).unwrap_err();
        assert!(e.message.contains("at least two"), "{e}");
    }

    #[test]
    fn unknown_rule_and_trailing_garbage() {
        let program = parse("var x : integer; skip").unwrap();
        let e = parse_proof(
            "frobnicate {\n pre { }\n post { }\n}",
            &program.symbols,
            &read,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown rule"));
        let e = parse_proof(
            "skip {\n pre { }\n post { }\n}\nextra",
            &program.symbols,
            &read,
        )
        .unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn empty_assertions_parse() {
        let program = parse("var x : integer; skip").unwrap();
        let proof = parse_proof("skip {\n pre { }\n post { }\n}", &program.symbols, &read).unwrap();
        assert!(proof.pre.state.is_empty());
        assert!(proof.pre.local.is_none());
    }

    #[test]
    fn a_tampered_proof_fails_the_checker_not_the_parser() {
        // Flip the paper proof's middle assertion: still parses, no
        // longer checks — the format carries no authority.
        let (program, _) = relative_strength_program();
        let proof = relative_strength_proof(&program);
        let text =
            write_proof(&proof, &program.symbols, &show).replacen("x <= low", "x <= high", 1);
        let reparsed = parse_proof(&text, &program.symbols, &read).unwrap();
        assert!(check_proof(&program.body, &reparsed).is_err());
    }
}
