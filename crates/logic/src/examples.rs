//! Ready-made paper artifacts: the §5.2 relative-strength example.
//!
//! §5.2 exhibits the program `begin x := 0; y := x end` under the binding
//! `sbind(x) = high, sbind(y) = low`: CFM rejects it (the direct-flow
//! check at `y := x` compares *static* bindings), yet the paper gives a
//! flow proof that the policy is never violated — the logic can prove the
//! intermediate fact `x̲ ≤ low` after `x := 0`, which a static binding
//! cannot express. This module packages the program, the binding and the
//! paper's verbatim proof for reuse by examples, tests and benches.

use secflow_core::StaticBinding;
use secflow_lang::builder::{e, s, ProgramBuilder};
use secflow_lang::Program;
use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};

use crate::assertion::{Assertion, Bound, ClassExpr};
use crate::check::assign_subst;
use crate::proof::{Proof, Rule};

/// The §5.2 program `begin x := 0; y := x end` and the binding
/// `sbind(x) = high, sbind(y) = low`.
pub fn relative_strength_program() -> (Program, StaticBinding<TwoPoint>) {
    let mut b = ProgramBuilder::new();
    let x = b.data("x");
    let y = b.data("y");
    let program = b.finish(s::seq([s::assign(x, e::konst(0)), s::assign(y, e::var(x))]));
    let sbind = StaticBinding::uniform(&program.symbols, &TwoPointScheme).with(x, TwoPoint::High);
    (program, sbind)
}

/// The paper's verbatim §5.2 flow proof:
///
/// ```text
/// {x̲ ≤ high, y̲ ≤ low, local ≤ low, global ≤ low}
///     x := 0;
/// {x̲ ≤ low, y̲ ≤ low, local ≤ low, global ≤ low}
///     y := x
/// {x̲ ≤ low, y̲ ≤ low, local ≤ low, global ≤ low}
/// ```
///
/// It shows the policy assertion (`x̲ ≤ high ∧ y̲ ≤ low`) is never
/// violated, although the *strengthened* intermediate assertion
/// `x̲ ≤ low` is not the policy assertion itself — which is exactly why
/// the proof is not completely invariant, and why CFM (Theorem 2) cannot
/// certify the program.
pub fn relative_strength_proof(program: &Program) -> Proof<TwoPoint> {
    let x = program.var("x");
    let y = program.var("y");
    let lo = ClassExpr::lit(Extended::Elem(TwoPoint::Low));

    let pre = Assertion::new(
        vec![
            Bound::var_le(x, TwoPoint::High),
            Bound::var_le(y, TwoPoint::Low),
        ],
        lo.clone(),
        lo.clone(),
    );
    let mid = Assertion::new(
        vec![
            Bound::var_le(x, TwoPoint::Low),
            Bound::var_le(y, TwoPoint::Low),
        ],
        lo.clone(),
        lo.clone(),
    );
    let post = mid.clone();

    let ax1_pre = mid.subst(&assign_subst(x, &e::konst(0)));
    let p1 = Proof::new(
        pre.clone(),
        mid.clone(),
        Rule::Conseq {
            inner: Box::new(Proof::new(ax1_pre, mid.clone(), Rule::AssignAxiom)),
        },
    );
    let ax2_pre = post.subst(&assign_subst(y, &e::var(x)));
    let p2 = Proof::new(
        mid,
        post.clone(),
        Rule::Conseq {
            inner: Box::new(Proof::new(ax2_pre, post.clone(), Rule::AssignAxiom)),
        },
    );
    Proof::new(
        pre,
        post,
        Rule::Seq {
            parts: vec![p1, p2],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_proof;
    use crate::theorem1::{is_completely_invariant, policy_assertion};
    use secflow_core::certify;

    #[test]
    fn cfm_rejects_but_the_flow_proof_checks() {
        let (program, sbind) = relative_strength_program();
        // CFM rejects: sbind(x) = High ≰ sbind(y) = Low at `y := x`.
        assert!(!certify(&program, &sbind).certified());
        // Yet the paper's proof is valid.
        let proof = relative_strength_proof(&program);
        check_proof(&program.body, &proof).unwrap();
    }

    #[test]
    fn the_proof_is_not_completely_invariant() {
        // The strengthened intermediate assertion `x̲ ≤ low` ≠ I, so the
        // proof falls outside the restricted form of Definition 7 —
        // consistent with Theorem 2.
        let (program, sbind) = relative_strength_program();
        let proof = relative_strength_proof(&program);
        let i = policy_assertion(&program, &sbind);
        assert!(!is_completely_invariant(&proof, &i).unwrap());
    }

    #[test]
    fn the_proof_post_establishes_the_policy() {
        use crate::entail::entails;
        let (program, sbind) = relative_strength_program();
        let proof = relative_strength_proof(&program);
        let i = Assertion::state_only(policy_assertion(&program, &sbind));
        // The postcondition (x̲ ≤ low, y̲ ≤ low) entails the policy.
        assert!(entails(&proof.post, &i).unwrap());
        // And so does the precondition (it IS the policy plus bounds).
        assert!(entails(&proof.pre, &i).unwrap());
    }
}
