//! Proof trees for the flow logic (Figure 1).
//!
//! A [`Proof`] is an explicit derivation: each node records its
//! pre/post-assertions and the rule used, with premise sub-proofs as
//! children. Proofs are *data* — the independent [`crate::check`] module
//! re-derives every side condition, so a proof produced by any means
//! (including the Theorem-1 builder) carries no authority of its own.

use std::fmt;

use secflow_lattice::Lattice;

use crate::assertion::Assertion;

/// A flow-logic derivation of `{pre} S {post}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Proof<L> {
    /// The precondition of the triple.
    pub pre: Assertion<L>,
    /// The postcondition of the triple.
    pub post: Assertion<L>,
    /// The final rule applied, with its premise sub-proofs.
    pub rule: Rule<L>,
}

/// The rules of Figure 1 (plus the structural `skip` axiom).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Rule<L> {
    /// `{P} skip {P}` — not in the paper's Figure 1 (the paper's language
    /// has no `skip`), but required for one-armed `if` and harmless: `skip`
    /// produces no flows.
    SkipAxiom,
    /// `{P[x̲ ← e̲ ⊕ local ⊕ global]} x := e {P}`
    AssignAxiom,
    /// `{P[sem̲ ← sem̲ ⊕ local ⊕ global]} signal(sem) {P}`
    SignalAxiom,
    /// `{P[sem̲ ← sem̲ ⊕ local ⊕ global, global ← sem̲ ⊕ local ⊕ global]}
    /// wait(sem) {P}`
    WaitAxiom,
    /// The alternation rule. A one-armed `if` may omit `else_proof`; the
    /// checker then validates the implicit `skip` branch.
    If {
        /// Derivation for the `then` branch.
        then_proof: Box<Proof<L>>,
        /// Derivation for the `else` branch (over `skip` when the program
        /// statement has no `else`).
        else_proof: Option<Box<Proof<L>>>,
    },
    /// The iteration rule; the premise derivation must be invariant.
    While {
        /// Derivation for the loop body.
        body: Box<Proof<L>>,
    },
    /// The composition rule: premises chain pre/post.
    Seq {
        /// One derivation per component statement, in order.
        parts: Vec<Proof<L>>,
    },
    /// The concurrent-execution rule: premises must be interference-free.
    Cobegin {
        /// One derivation per process.
        branches: Vec<Proof<L>>,
    },
    /// The consequence rule: `{P'} S {Q'}, P |- P', Q' |- Q ⟹ {P} S {Q}`.
    Conseq {
        /// The strengthened/weakened premise derivation.
        inner: Box<Proof<L>>,
    },
}

impl<L: Lattice> Proof<L> {
    /// Creates a proof node.
    pub fn new(pre: Assertion<L>, post: Assertion<L>, rule: Rule<L>) -> Self {
        Proof { pre, post, rule }
    }

    /// Number of nodes in the derivation.
    pub fn size(&self) -> usize {
        1 + match &self.rule {
            Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => 0,
            Rule::If {
                then_proof,
                else_proof,
            } => then_proof.size() + else_proof.as_ref().map_or(0, |p| p.size()),
            Rule::While { body } => body.size(),
            Rule::Seq { parts } => parts.iter().map(Proof::size).sum(),
            Rule::Cobegin { branches } => branches.iter().map(Proof::size).sum(),
            Rule::Conseq { inner } => inner.size(),
        }
    }

    /// Calls `f` on every node of the derivation (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Proof<L>)) {
        f(self);
        match &self.rule {
            Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => {}
            Rule::If {
                then_proof,
                else_proof,
            } => {
                then_proof.walk(f);
                if let Some(e) = else_proof {
                    e.walk(f);
                }
            }
            Rule::While { body } => body.walk(f),
            Rule::Seq { parts } => parts.iter().for_each(|p| p.walk(f)),
            Rule::Cobegin { branches } => branches.iter().for_each(|p| p.walk(f)),
            Rule::Conseq { inner } => inner.walk(f),
        }
    }

    /// The name of the final rule.
    pub fn rule_name(&self) -> &'static str {
        match &self.rule {
            Rule::SkipAxiom => "skip axiom",
            Rule::AssignAxiom => "assignment axiom",
            Rule::SignalAxiom => "signal axiom",
            Rule::WaitAxiom => "wait axiom",
            Rule::If { .. } => "alternation rule",
            Rule::While { .. } => "iteration rule",
            Rule::Seq { .. } => "composition rule",
            Rule::Cobegin { .. } => "concurrent-execution rule",
            Rule::Conseq { .. } => "consequence rule",
        }
    }
}

impl<L: Lattice + fmt::Display> Proof<L> {
    fn fmt_at(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        writeln!(f, "{pad}[{}]", self.rule_name())?;
        writeln!(f, "{pad}  pre:  {}", self.pre)?;
        writeln!(f, "{pad}  post: {}", self.post)?;
        match &self.rule {
            Rule::SkipAxiom | Rule::AssignAxiom | Rule::SignalAxiom | Rule::WaitAxiom => Ok(()),
            Rule::If {
                then_proof,
                else_proof,
            } => {
                then_proof.fmt_at(f, depth + 1)?;
                if let Some(e) = else_proof {
                    e.fmt_at(f, depth + 1)?;
                }
                Ok(())
            }
            Rule::While { body } => body.fmt_at(f, depth + 1),
            Rule::Seq { parts } => {
                for p in parts {
                    p.fmt_at(f, depth + 1)?;
                }
                Ok(())
            }
            Rule::Cobegin { branches } => {
                for p in branches {
                    p.fmt_at(f, depth + 1)?;
                }
                Ok(())
            }
            Rule::Conseq { inner } => inner.fmt_at(f, depth + 1),
        }
    }
}

impl<L: Lattice + fmt::Display> fmt::Display for Proof<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_at(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Assertion;
    use secflow_lattice::TwoPoint;

    fn trivial() -> Proof<TwoPoint> {
        Proof::new(
            Assertion::state_only(vec![]),
            Assertion::state_only(vec![]),
            Rule::SkipAxiom,
        )
    }

    #[test]
    fn size_counts_nodes() {
        let leaf = trivial();
        let seq = Proof::new(
            Assertion::state_only(vec![]),
            Assertion::state_only(vec![]),
            Rule::Seq {
                parts: vec![leaf.clone(), leaf.clone()],
            },
        );
        assert_eq!(seq.size(), 3);
        let wrapped = Proof::new(
            Assertion::state_only(vec![]),
            Assertion::state_only(vec![]),
            Rule::Conseq {
                inner: Box::new(seq),
            },
        );
        assert_eq!(wrapped.size(), 4);
    }

    #[test]
    fn walk_visits_every_node() {
        let leaf = trivial();
        let cob = Proof::new(
            Assertion::state_only(vec![]),
            Assertion::state_only(vec![]),
            Rule::Cobegin {
                branches: vec![leaf.clone(), leaf.clone(), leaf],
            },
        );
        let mut n = 0;
        cob.walk(&mut |_| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    fn display_shows_rule_names() {
        let s = trivial().to_string();
        assert!(s.contains("skip axiom"), "{s}");
        assert!(s.contains("pre:"), "{s}");
    }
}
