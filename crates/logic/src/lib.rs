//! The Andrews–Reitman flow logic (Figure 1 of the paper), as machine-
//! checkable data.
//!
//! §3 of the paper sketches a deductive logic for information flow:
//! assertions bound the *classifications* of variables (not their
//! values), and the triple `{P} S {Q}` means "if the initial information
//! state satisfies `P` and `S` terminates, the final state satisfies
//! `Q`". This crate implements the logic end to end:
//!
//! - [`assertion`] — the `{V, local ≤ l, global ≤ g}` assertion language
//!   of §3.1, with textual simultaneous substitution;
//! - [`entail`] — a sound-and-complete decision procedure for the
//!   `P |- Q` side conditions (§3.1's "lattice theory and propositional
//!   logic");
//! - [`proof`] — explicit derivation trees for the Figure 1 rules;
//! - [`check`] — an independent proof checker, including the
//!   interference-freedom obligation of the concurrent-execution rule;
//! - [`theorem1`] — the constructive prover of Theorem 1 (every CFM-
//!   certified program has a completely invariant flow proof) and the
//!   Definition 7 validator;
//! - [`lemma`] — the Appendix Lemma bounds, checked over concrete proofs;
//! - [`examples`] — the §5.2 relative-strength artifact, verbatim.
//!
//! # Examples
//!
//! ```
//! use secflow_core::{certify, StaticBinding};
//! use secflow_lang::parse;
//! use secflow_lattice::{Extended, TwoPoint, TwoPointScheme};
//! use secflow_logic::{check_proof, is_completely_invariant, policy_assertion, prove};
//!
//! let p = parse("var x, y : integer; if x = 0 then y := 1 else y := 2").unwrap();
//! let sbind = StaticBinding::constant(&p.symbols, &TwoPointScheme, TwoPoint::High);
//! assert!(certify(&p, &sbind).certified());
//!
//! // Theorem 1: a completely invariant proof exists and checks.
//! let proof = prove(&p, &sbind, Extended::Nil, Extended::Nil).unwrap();
//! check_proof(&p.body, &proof).unwrap();
//! let i = policy_assertion(&p, &sbind);
//! assert!(is_completely_invariant(&proof, &i).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertion;
pub mod check;
pub mod entail;
pub mod examples;
pub mod lemma;
pub mod proof;
pub mod render;
pub mod text;
pub mod theorem1;

pub use assertion::{Assertion, Atom, Bound, ClassExpr};
pub use check::{check_proof, CheckError};
pub use entail::{entails, entails_bound, equivalent, EntailError, UpperBounds};
pub use lemma::{check_lemma, LemmaViolation};
pub use proof::{Proof, Rule};
pub use render::{render_assertion, render_bound, render_class_expr, render_proof};
pub use text::{parse_proof, write_proof, ProofParseError};
pub use theorem1::{build_proof, is_completely_invariant, policy_assertion, prove, ProveError};
