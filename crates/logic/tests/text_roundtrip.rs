//! The textual proof format round-trips every proof the Theorem-1 prover
//! produces, across a random program corpus.

use proptest::prelude::*;

use secflow_core::StaticBinding;
use secflow_lattice::{Extended, Linear, LinearScheme, TwoPoint, TwoPointScheme};
use secflow_logic::{check_proof, parse_proof, prove, write_proof};
use secflow_workload::{generate, GenConfig};

fn cfg() -> GenConfig {
    GenConfig {
        target_stmts: 30,
        max_depth: 5,
        n_vars: 4,
        n_sems: 2,
        bounded_loops: true,
    }
}

fn show_two(l: &TwoPoint) -> String {
    match l {
        TwoPoint::Low => "low".into(),
        TwoPoint::High => "high".into(),
    }
}

fn read_two(s: &str) -> Option<TwoPoint> {
    match s {
        "low" => Some(TwoPoint::Low),
        "high" => Some(TwoPoint::High),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// write → parse is the identity on constructed proofs (two-point).
    #[test]
    fn roundtrip_two_point(seed in 0u64..100_000) {
        let program = generate(&cfg(), seed);
        let sbind = StaticBinding::constant(&program.symbols, &TwoPointScheme, TwoPoint::High);
        let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
        let text = write_proof(&proof, &program.symbols, &show_two);
        let reparsed = parse_proof(&text, &program.symbols, &read_two)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(&reparsed, &proof);
        prop_assert!(check_proof(&program.body, &reparsed).is_ok());
    }

    /// Same over a linear chain with numeric literals.
    #[test]
    fn roundtrip_linear(seed in 0u64..100_000) {
        let scheme = LinearScheme::new(5).unwrap();
        let program = generate(&cfg(), seed);
        let sbind = StaticBinding::constant(&program.symbols, &scheme, Linear(3));
        let proof = prove(&program, &sbind, Extended::Nil, Extended::Nil).unwrap();
        let text = write_proof(&proof, &program.symbols, &|l: &Linear| l.0.to_string());
        let reparsed = parse_proof(&text, &program.symbols, &|s: &str| {
            s.parse::<u32>().ok().map(Linear)
        })
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(&reparsed, &proof);
    }
}

#[test]
fn variable_named_like_a_literal_prefers_the_variable() {
    // A program variable called `low` must resolve as the variable (the
    // symbol table is consulted first), so proofs about it stay sound.
    let program = secflow_lang::parse("var low : integer; skip").unwrap();
    let proof = parse_proof(
        "skip {\n pre { low <= high }\n post { low <= high }\n}",
        &program.symbols,
        &read_two,
    )
    .unwrap();
    // The bound constrains the *variable* `low`.
    assert_eq!(proof.pre.state.len(), 1);
    assert!(proof.pre.state[0]
        .lhs
        .mentions(secflow_logic::Atom::VarClass(program.var("low"))));
}
