//! Soundness AND completeness of the entailment decision procedure,
//! validated against brute-force model enumeration.
//!
//! §3.1 justifies side conditions "using lattice theory and propositional
//! logic": derivability in the equational theory of lattices, uniformly
//! over all lattices — NOT per finite lattice. (`global ≤ High` is a
//! tautology inside the two-point lattice, but not a lattice-theoretic
//! consequence of the empty premise; the scheme-agnostic procedure
//! rightly refuses it.) The ground truth here therefore evaluates models
//! in a chain with a *phantom element above every literal*: literals are
//! `L0`/`L1` (playing Low/High) and atom values range over
//! {nil, L0, L1, L2}, so a bound is semantically valid iff it is valid in
//! every extension. On that semantics the procedure must be exactly
//! sound and complete — the property that justifies trusting the proof
//! checker's side conditions.

use proptest::prelude::*;

use secflow_lang::VarId;
use secflow_lattice::{Extended, Lattice, Linear};
use secflow_logic::{entails, Assertion, Atom, Bound, ClassExpr};

type L = Linear;
type Val = Extended<L>;

const VALUES: [Val; 4] = [
    Extended::Nil,
    Extended::Elem(Linear(0)),
    Extended::Elem(Linear(1)),
    Extended::Elem(Linear(2)), // the phantom top: above every literal
];

/// Atoms used by generated assertions: 2 variables + local + global.
fn atoms() -> [Atom; 4] {
    [
        Atom::VarClass(VarId(0)),
        Atom::VarClass(VarId(1)),
        Atom::Local,
        Atom::Global,
    ]
}

#[derive(Clone, Debug)]
struct Model {
    vals: [Val; 4],
}

impl Model {
    fn eval(&self, e: &ClassExpr<L>) -> Val {
        let mut acc = e.literal().clone();
        for a in e.atoms() {
            let idx = atoms().iter().position(|x| x == a).unwrap();
            acc = acc.join(&self.vals[idx]);
        }
        acc
    }

    fn satisfies_bound(&self, b: &Bound<L>) -> bool {
        self.eval(&b.lhs).leq(&self.eval(&b.rhs))
    }

    fn satisfies(&self, a: &Assertion<L>) -> bool {
        let state_ok = a.state.iter().all(|b| self.satisfies_bound(b));
        let local_ok = a
            .local
            .as_ref()
            .is_none_or(|l| self.vals[2].leq(&self.eval(l)));
        let global_ok = a
            .global
            .as_ref()
            .is_none_or(|g| self.vals[3].leq(&self.eval(g)));
        state_ok && local_ok && global_ok
    }
}

fn all_models() -> Vec<Model> {
    let mut out = Vec::with_capacity(256);
    for a in &VALUES {
        for b in &VALUES {
            for c in &VALUES {
                for d in &VALUES {
                    out.push(Model {
                        vals: [a.clone(), b.clone(), c.clone(), d.clone()],
                    });
                }
            }
        }
    }
    out
}

fn semantic_entails(p: &Assertion<L>, q: &Assertion<L>) -> bool {
    all_models()
        .iter()
        .all(|m| !m.satisfies(p) || m.satisfies(q))
}

// ---- random instance generation ----------------------------------------

fn arb_lit() -> impl Strategy<Value = ClassExpr<L>> {
    // Only the classes real proofs mention: nil and the binding literals.
    prop_oneof![
        Just(ClassExpr::nil()),
        Just(ClassExpr::lit(Extended::Elem(Linear(0)))),
        Just(ClassExpr::lit(Extended::Elem(Linear(1)))),
    ]
}

/// A random lhs: a join of a subset of atoms and a literal.
fn arb_lhs() -> impl Strategy<Value = ClassExpr<L>> {
    (proptest::bits::u8::between(0, 4), arb_lit()).prop_map(|(mask, lit)| {
        let mut e = lit;
        for (i, a) in atoms().into_iter().enumerate() {
            if mask & (1 << i) != 0 {
                e = e.join(&ClassExpr::atom(a));
            }
        }
        e
    })
}

/// The restricted form the logic uses: literal right-hand sides.
fn arb_bound() -> impl Strategy<Value = Bound<L>> {
    (arb_lhs(), arb_lit()).prop_map(|(lhs, rhs)| Bound::new(lhs, rhs))
}

fn arb_assertion() -> impl Strategy<Value = Assertion<L>> {
    (
        proptest::collection::vec(arb_bound(), 0..4),
        proptest::option::of(arb_lit()),
        proptest::option::of(arb_lit()),
    )
        .prop_map(|(state, local, global)| {
            let mut a = Assertion::state_only(state);
            if let Some(l) = local {
                a = a.with_local(l);
            }
            if let Some(g) = global {
                a = a.with_global(g);
            }
            a
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The decision procedure coincides with model-theoretic entailment.
    #[test]
    fn decision_procedure_is_sound_and_complete(
        p in arb_assertion(),
        q in arb_assertion(),
    ) {
        let decided = entails(&p, &q).unwrap();
        let semantic = semantic_entails(&p, &q);
        prop_assert_eq!(
            decided,
            semantic,
            "P = {} ; Q = {}",
            p,
            q
        );
    }

    /// Entailment is reflexive and transitive on random instances.
    #[test]
    fn entailment_is_a_preorder(
        p in arb_assertion(),
        q in arb_assertion(),
        r in arb_assertion(),
    ) {
        prop_assert!(entails(&p, &p).unwrap());
        if entails(&p, &q).unwrap() && entails(&q, &r).unwrap() {
            prop_assert!(entails(&p, &r).unwrap());
        }
    }

    /// Strengthening the premise preserves entailment (monotonicity).
    #[test]
    fn extra_premise_conjuncts_only_help(
        p in arb_assertion(),
        q in arb_assertion(),
        extra in arb_bound(),
    ) {
        if entails(&p, &q).unwrap() {
            let mut stronger = p.clone();
            stronger.state.push(extra);
            prop_assert!(entails(&stronger, &q).unwrap());
        }
    }
}

#[test]
fn known_edge_cases() {
    // Unsat premise entails everything.
    let p = Assertion::state_only(vec![Bound::new(
        ClassExpr::lit(Extended::Elem(Linear(1))),
        ClassExpr::lit(Extended::Nil),
    )]);
    let q = Assertion::state_only(vec![Bound::new(
        ClassExpr::var(VarId(0)),
        ClassExpr::lit(Extended::Nil),
    )]);
    assert!(entails(&p, &q).unwrap());
    assert!(semantic_entails(&p, &q));

    // nil rhs forces the atom to nil; then atom ≤ anything.
    let p = Assertion::state_only(vec![Bound::new(
        ClassExpr::var(VarId(0)),
        ClassExpr::lit(Extended::Nil),
    )]);
    let q = Assertion::state_only(vec![Bound::new(
        ClassExpr::var(VarId(0)),
        ClassExpr::lit(Extended::Elem(Linear(0))),
    )]);
    assert!(entails(&p, &q).unwrap());

    // The free-theory reading: an unconstrained atom is NOT below High,
    // because a larger lattice may place it above.
    let p = Assertion::state_only(vec![]);
    let q = Assertion::state_only(vec![Bound::new(
        ClassExpr::global(),
        ClassExpr::lit(Extended::Elem(Linear(1))),
    )]);
    assert!(!entails(&p, &q).unwrap());
    assert!(!semantic_entails(&p, &q));
}
