//! Deterministic, seeded fault injection ("chaos mode").
//!
//! A [`FaultPlan`] makes the server misbehave *on purpose* — IO errors,
//! artificial latency, worker panics, short reads/writes at the TCP
//! framing layer, dropped connection attempts — so the robustness
//! machinery (supervision, deadlines, the retrying client) can be
//! exercised in tests and CI instead of waiting for production to do
//! it.
//!
//! Two properties make the chaos usable:
//!
//! - **Determinism**: every decision is a pure function of the seed and
//!   a global decision counter (`splitmix64`), so a failing soak run
//!   reproduces exactly from its seed.
//! - **Convergence**: `max_faults` is a fuse — after that many injected
//!   faults the plan goes quiet, so a retrying client always succeeds
//!   eventually and a chaos soak can assert equivalence with the
//!   fault-free run.
//!
//! Production pays nothing: the serve path is generic over [`Faults`]
//! and monomorphizes against [`NoFaults`], whose hooks are all
//! constant-`false` inlines.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Where a fault can be injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Fail a read/write with `ErrorKind::Other`.
    Io,
    /// Sleep before serving a request.
    Latency,
    /// Panic inside the worker running a job.
    Panic,
    /// Truncate a read/write to 1 byte (short IO at the framing layer).
    ShortIo,
    /// Drop an accepted connection before reading anything.
    DropConnect,
    /// Stall a connection's reads for one poll tick (slowloris-style).
    Stall,
    /// Tear a journal append in half (crash mid-`write(2)`).
    TornWrite,
    /// Skip an fsync the configured durability mode required.
    ShortFsync,
    /// Drop an outbound peer call before it leaves (network partition).
    Partition,
}

/// Fault-injection hooks consulted by the serve path. Implementations
/// must be cheap and thread-safe; every hook answers "inject here?".
pub trait Faults: Send + Sync + 'static {
    /// Inject a panic into the worker about to run a job?
    fn worker_panic(&self) -> bool;

    /// Artificial latency to add before serving a request.
    fn latency(&self) -> Option<std::time::Duration>;

    /// Fail this stream read with an IO error?
    fn read_error(&self) -> bool;

    /// Fail this stream write with an IO error?
    fn write_error(&self) -> bool;

    /// Truncate this read/write to a single byte?
    fn short_io(&self) -> bool;

    /// Drop this freshly-accepted connection?
    fn drop_connection(&self) -> bool;

    /// Tear this journal append in half, as a crash mid-write would?
    /// (Consulted by the durable store; default quiet so third-party
    /// impls predating persistence keep compiling.)
    fn torn_write(&self) -> bool {
        false
    }

    /// Silently skip an fsync the durability mode asked for?
    fn short_fsync(&self) -> bool {
        false
    }

    /// Pretend this connection produced no bytes this poll tick, as a
    /// stalled (slowloris-style) sender would? (Consulted only by the
    /// readiness-driven front-end; defaulted quiet for the same
    /// compatibility reason as [`Faults::torn_write`].)
    fn stall_read(&self) -> bool {
        false
    }

    /// Drop this outbound peer call to `addr` before it leaves, as an
    /// asymmetric network partition would? Consulted by the cluster's
    /// peer-call path (forwarding, replication, probes); defaulted
    /// quiet for the same compatibility reason as
    /// [`Faults::torn_write`].
    fn drop_peer(&self, _addr: &str) -> bool {
        false
    }
}

impl<F: Faults> Faults for std::sync::Arc<F> {
    fn worker_panic(&self) -> bool {
        (**self).worker_panic()
    }

    fn latency(&self) -> Option<std::time::Duration> {
        (**self).latency()
    }

    fn read_error(&self) -> bool {
        (**self).read_error()
    }

    fn write_error(&self) -> bool {
        (**self).write_error()
    }

    fn short_io(&self) -> bool {
        (**self).short_io()
    }

    fn drop_connection(&self) -> bool {
        (**self).drop_connection()
    }

    fn torn_write(&self) -> bool {
        (**self).torn_write()
    }

    fn short_fsync(&self) -> bool {
        (**self).short_fsync()
    }

    fn stall_read(&self) -> bool {
        (**self).stall_read()
    }

    fn drop_peer(&self, addr: &str) -> bool {
        (**self).drop_peer(addr)
    }
}

/// The production plan: no faults, ever. All hooks inline to constants.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoFaults;

impl Faults for NoFaults {
    #[inline(always)]
    fn worker_panic(&self) -> bool {
        false
    }

    #[inline(always)]
    fn latency(&self) -> Option<std::time::Duration> {
        None
    }

    #[inline(always)]
    fn read_error(&self) -> bool {
        false
    }

    #[inline(always)]
    fn write_error(&self) -> bool {
        false
    }

    #[inline(always)]
    fn short_io(&self) -> bool {
        false
    }

    #[inline(always)]
    fn drop_connection(&self) -> bool {
        false
    }

    #[inline(always)]
    fn torn_write(&self) -> bool {
        false
    }

    #[inline(always)]
    fn short_fsync(&self) -> bool {
        false
    }

    #[inline(always)]
    fn stall_read(&self) -> bool {
        false
    }

    #[inline(always)]
    fn drop_peer(&self, _addr: &str) -> bool {
        false
    }
}

/// Per-mille injection rates and limits for a seeded chaos run.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Decision counter: each hook call consumes one tick.
    ticks: AtomicU64,
    /// Faults injected so far (stops at `max_faults`).
    injected: AtomicU64,
    /// Fuse: total faults to inject before going quiet (ensures
    /// convergence). `u64::MAX` = unlimited.
    pub max_faults: u64,
    /// Per-mille probability of an IO error per read/write.
    pub io_error_per_mille: u32,
    /// Per-mille probability of latency injection per request.
    pub latency_per_mille: u32,
    /// Injected latency when the dice say so.
    pub latency_ms: u64,
    /// Per-mille probability of a worker panic per job.
    pub panic_per_mille: u32,
    /// Per-mille probability of truncating an IO op to 1 byte.
    pub short_io_per_mille: u32,
    /// Per-mille probability of a connection stalling (delivering
    /// nothing) for one poll tick.
    pub stall_per_mille: u32,
    /// Per-mille probability of tearing a journal append in half.
    pub torn_write_per_mille: u32,
    /// Per-mille probability of skipping a required fsync.
    pub short_fsync_per_mille: u32,
    /// Drop the first N accepted connections outright (deterministic,
    /// not probabilistic — exercises the client's connect retry).
    pub drop_connects: u64,
    accepted: AtomicU64,
    /// Per-peer partition rules: outbound calls to a matching address
    /// are dropped with the given per-mille probability (charged
    /// against the fuse, so partitions heal once it blows). Asymmetric
    /// partitions fall out of giving different nodes different rules.
    pub partitions: Vec<(String, u32)>,
}

impl FaultPlan {
    /// A quiet plan (all rates zero) with the given seed; set the
    /// public rate fields to taste.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ticks: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            max_faults: u64::MAX,
            io_error_per_mille: 0,
            latency_per_mille: 0,
            latency_ms: 1,
            panic_per_mille: 0,
            short_io_per_mille: 0,
            stall_per_mille: 0,
            torn_write_per_mille: 0,
            short_fsync_per_mille: 0,
            drop_connects: 0,
            accepted: AtomicU64::new(0),
            partitions: Vec::new(),
        }
    }

    /// Parses a plan from a spec string of `key=value` pairs separated
    /// by commas, e.g. `seed=7,io=20,latency=50,panic=5,short=10,`
    /// `torn=5,short_fsync=5,drop_connects=3,max_faults=40,latency_ms=2`.
    /// `partition=addr~permille` adds a per-peer outbound drop rule and
    /// may repeat (one rule per peer). Unknown keys are rejected. The
    /// same format is accepted from `SECFLOW_CHAOS` by the CLI.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad chaos spec entry `{pair}` (want key=value)"))?;
            if key.trim() == "partition" {
                // `partition=addr~permille` — repeatable; each entry
                // adds one per-peer drop rule.
                let (addr, rate) = value.trim().split_once('~').ok_or_else(|| {
                    format!("bad chaos value `{value}` for `partition` (want addr~permille)")
                })?;
                let rate: u64 = rate
                    .parse()
                    .map_err(|_| format!("bad partition rate `{rate}`"))?;
                plan.partitions
                    .push((addr.to_string(), rate.min(1000) as u32));
                continue;
            }
            let parsed: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad chaos value `{value}` for `{key}`"))?;
            match key.trim() {
                "seed" => plan.seed = parsed,
                "io" => plan.io_error_per_mille = parsed.min(1000) as u32,
                "latency" => plan.latency_per_mille = parsed.min(1000) as u32,
                "latency_ms" => plan.latency_ms = parsed,
                "panic" => plan.panic_per_mille = parsed.min(1000) as u32,
                "short" => plan.short_io_per_mille = parsed.min(1000) as u32,
                "stall" => plan.stall_per_mille = parsed.min(1000) as u32,
                "torn" => plan.torn_write_per_mille = parsed.min(1000) as u32,
                "short_fsync" => plan.short_fsync_per_mille = parsed.min(1000) as u32,
                "drop_connects" => plan.drop_connects = parsed,
                "max_faults" => plan.max_faults = parsed,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan's seed (for logging a reproducible run).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Relaxed)
    }

    /// One deterministic dice roll: true with `per_mille`/1000
    /// probability, charged against the fuse when it fires.
    fn roll(&self, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        let tick = self.ticks.fetch_add(1, Relaxed);
        if self.injected.load(Relaxed) >= self.max_faults {
            return false;
        }
        let hit = splitmix64(self.seed.wrapping_add(tick)) % 1000 < per_mille as u64;
        if hit {
            // Racy double-increment past the fuse is possible but only
            // over-counts by the number of threads; the fuse still
            // quenches the plan promptly, which is all convergence needs.
            self.injected.fetch_add(1, Relaxed);
        }
        hit
    }
}

impl Faults for FaultPlan {
    fn worker_panic(&self) -> bool {
        self.roll(self.panic_per_mille)
    }

    fn latency(&self) -> Option<std::time::Duration> {
        self.roll(self.latency_per_mille)
            .then(|| std::time::Duration::from_millis(self.latency_ms))
    }

    fn read_error(&self) -> bool {
        self.roll(self.io_error_per_mille)
    }

    fn write_error(&self) -> bool {
        self.roll(self.io_error_per_mille)
    }

    fn short_io(&self) -> bool {
        self.roll(self.short_io_per_mille)
    }

    fn stall_read(&self) -> bool {
        self.roll(self.stall_per_mille)
    }

    fn torn_write(&self) -> bool {
        self.roll(self.torn_write_per_mille)
    }

    fn short_fsync(&self) -> bool {
        self.roll(self.short_fsync_per_mille)
    }

    fn drop_connection(&self) -> bool {
        // Deterministic first-N drop, not charged against the fuse:
        // the retry client must outlast all N regardless of rates.
        self.accepted.fetch_add(1, Relaxed) < self.drop_connects
    }

    fn drop_peer(&self, addr: &str) -> bool {
        let rate = self
            .partitions
            .iter()
            .find(|(a, _)| a == addr)
            .map(|(_, r)| *r)
            .unwrap_or(0);
        self.roll(rate)
    }
}

/// `splitmix64` — a tiny, high-quality 64-bit mixer (public domain
/// constant set; see Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators").
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stream wrapper that injects IO faults per the plan: errors and
/// 1-byte short reads/writes, which exercise every resynchronization
/// path in the line framing.
pub struct ChaosStream<'a, S, F: Faults> {
    inner: S,
    faults: &'a F,
}

impl<'a, S, F: Faults> ChaosStream<'a, S, F> {
    /// Wraps `inner` with the given fault hooks.
    pub fn new(inner: S, faults: &'a F) -> ChaosStream<'a, S, F> {
        ChaosStream { inner, faults }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read, F: Faults> Read for ChaosStream<'_, S, F> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.faults.read_error() {
            return Err(io::Error::other("chaos: injected read error"));
        }
        if self.faults.short_io() && buf.len() > 1 {
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

impl<S: Write, F: Faults> Write for ChaosStream<'_, S, F> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.faults.write_error() {
            return Err(io::Error::other("chaos: injected write error"));
        }
        if self.faults.short_io() && buf.len() > 1 {
            return self.inner.write(&buf[..1]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let decide = |seed: u64| -> Vec<bool> {
            let mut plan = FaultPlan::new(seed);
            plan.io_error_per_mille = 300;
            (0..64).map(|_| plan.read_error()).collect()
        };
        assert_eq!(decide(7), decide(7));
        assert_ne!(decide(7), decide(8), "different seeds should diverge");
        assert!(decide(7).iter().any(|&b| b), "300‰ over 64 rolls must hit");
    }

    #[test]
    fn fuse_quenches_the_plan() {
        let mut plan = FaultPlan::new(1);
        plan.io_error_per_mille = 1000;
        plan.max_faults = 3;
        let hits = (0..100).filter(|_| plan.read_error()).count();
        assert_eq!(hits, 3, "fuse must cap injected faults");
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn drop_connects_is_first_n_only() {
        let mut plan = FaultPlan::new(1);
        plan.drop_connects = 2;
        assert!(plan.drop_connection());
        assert!(plan.drop_connection());
        assert!(!plan.drop_connection());
        assert!(!plan.drop_connection());
    }

    #[test]
    fn parse_round_trip_and_rejection() {
        let plan = FaultPlan::parse(
            "seed=9,io=20,latency=50,latency_ms=2,panic=5,short=10,stall=4,torn=7,short_fsync=3,max_faults=40",
        )
        .unwrap();
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.io_error_per_mille, 20);
        assert_eq!(plan.latency_per_mille, 50);
        assert_eq!(plan.latency_ms, 2);
        assert_eq!(plan.panic_per_mille, 5);
        assert_eq!(plan.short_io_per_mille, 10);
        assert_eq!(plan.stall_per_mille, 4);
        assert_eq!(plan.torn_write_per_mille, 7);
        assert_eq!(plan.short_fsync_per_mille, 3);
        assert_eq!(plan.max_faults, 40);
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("io=lots").is_err());
        assert!(FaultPlan::parse("warp=9").is_err());
        assert!(FaultPlan::parse("").is_ok(), "empty spec is a quiet plan");
    }

    #[test]
    fn partition_rules_parse_and_drop_per_peer() {
        let plan = FaultPlan::parse(
            "seed=5,partition=127.0.0.1:4601~1000,partition=127.0.0.1:4602~0,max_faults=10",
        )
        .unwrap();
        assert_eq!(
            plan.partitions,
            vec![
                ("127.0.0.1:4601".to_string(), 1000),
                ("127.0.0.1:4602".to_string(), 0),
            ]
        );
        // The partitioned peer drops until the fuse blows; others never.
        let drops = (0..100)
            .filter(|_| plan.drop_peer("127.0.0.1:4601"))
            .count();
        assert_eq!(drops, 10, "partition rolls are charged to the fuse");
        assert!(!plan.drop_peer("127.0.0.1:4602"));
        assert!(!plan.drop_peer("127.0.0.1:4699"), "unlisted peers pass");

        assert!(FaultPlan::parse("partition=nope").is_err());
        assert!(FaultPlan::parse("partition=a~lots").is_err());
        assert!(!NoFaults.drop_peer("anything"));
    }

    #[test]
    fn chaos_stream_injects_short_reads() {
        let mut plan = FaultPlan::new(3);
        plan.short_io_per_mille = 1000;
        let data = b"hello world".to_vec();
        let mut stream = ChaosStream::new(&data[..], &plan);
        let mut buf = [0u8; 8];
        let n = std::io::Read::read(&mut stream, &mut buf).unwrap();
        assert_eq!(n, 1, "short read must deliver a single byte");
    }

    #[test]
    fn no_faults_is_quiet() {
        let f = NoFaults;
        assert!(!f.worker_panic());
        assert!(!f.read_error());
        assert!(!f.write_error());
        assert!(!f.short_io());
        assert!(!f.drop_connection());
        assert!(f.latency().is_none());
    }
}
