//! `secflow-server` — a batched, cached, parallel certification
//! service.
//!
//! The paper's §6 observation that CFM certification is linear in
//! program length makes certification cheap enough to run as an
//! always-on service rather than a one-shot compiler pass. This crate
//! provides that service, std-only:
//!
//! - [`protocol`]: a hand-rolled JSON-lines request/response format
//!   (`certify`, `infer`, `flows`, `stats`, `shutdown`), served over
//!   stdin/stdout ([`serve_stdio`]) or TCP ([`serve_tcp`]);
//! - [`conn`] / [`poller`]: the readiness-driven TCP front-end — a
//!   resumable line decoder and per-connection state machine, driven by
//!   a single nonblocking poll loop with pipelining, bounded in-flight
//!   windows, stall/idle timeouts, and slow-reader disconnects;
//! - [`pool`]: a supervised, bounded worker pool (`std::thread` +
//!   `mpsc`) with fail-fast backpressure, per-job panic isolation,
//!   automatic respawn of dead workers, a deadline watchdog, and
//!   graceful drain on shutdown;
//! - [`deadline`]: per-request deadlines as shared cancellation tokens,
//!   polled cooperatively by the long-running searches;
//! - [`client`]: a retrying TCP client (exponential backoff with
//!   decorrelated jitter, bounded attempt budget, retryable/permanent
//!   error taxonomy) used by `secflow batch --remote`;
//! - [`fault`]: deterministic, seeded chaos injection behind a
//!   zero-cost trait — worker panics, IO errors, short reads/writes,
//!   latency, dropped connections, all bounded by a fault fuse;
//! - [`cache`]: a content-addressed result cache keyed by an FNV-1a
//!   fingerprint of (op, lattice, binding, fuel, source) with exact LRU
//!   eviction — repeated certifications skip re-parsing entirely;
//! - [`persist`] / [`snapshot`]: a crash-safe durable store for the
//!   cache — an append-only CRC32-framed journal compacted into an
//!   atomically-published snapshot, with a recovery path that skips
//!   torn, truncated or bit-flipped records instead of failing
//!   (`serve --cache-dir`);
//! - [`ring`] / [`peer`]: the sharded-cluster layer — a deterministic
//!   consistent-hash ring over the cache fingerprint, a `forward` peer
//!   op that makes any computation happen exactly once cluster-wide,
//!   and `peer-sync` journal shipping so cold nodes warm-start from a
//!   loaded peer (`secflow serve --peers`, `secflow router`);
//! - [`health`] / [`hints`]: the self-healing layer — a per-peer
//!   consecutive-failure circuit breaker with jittered `ping` probes,
//!   replica pushes (`serve --replication`), a bounded hinted-handoff
//!   queue for writes owed to DOWN replicas, and digest-compared
//!   anti-entropy `repair` as the backstop;
//! - [`metrics`]: request/cache/error counters and a fixed-bucket
//!   latency histogram, reported by the `stats` request;
//! - [`batch`]: bulk certification of `*.sf` directories through the
//!   same pool (`secflow batch`).
//!
//! # Quick start
//!
//! ```
//! use secflow_server::{Limits, Service};
//!
//! let service = Service::new(1024, Limits::default());
//! let response = service.handle_line(
//!     r#"{"id":1,"op":"certify",
//!         "source":"var x, y : integer; y := x",
//!         "classes":{"x":"high","y":"low"}}"#,
//! );
//! assert!(response.contains(r#""certified":false"#));
//! // The identical request again: answered from the cache.
//! let again = service.handle_line(
//!     r#"{"id":2,"op":"certify",
//!         "source":"var x, y : integer; y := x",
//!         "classes":{"x":"high","y":"low"}}"#,
//! );
//! assert!(again.contains(r#""cached":true"#));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod conn;
pub mod deadline;
pub mod fault;
pub mod health;
pub mod hints;
pub mod metrics;
pub mod peer;
pub mod persist;
pub mod poller;
pub mod pool;
pub mod protocol;
pub mod ring;
pub mod serve;
pub mod service;
pub mod snapshot;

/// The JSON value model of the line protocol (re-export of
/// `secflow_cert::json`, where it moved so certificates and the
/// protocol share one parser).
pub use secflow_cert::json;

pub use batch::{render_summary, run_batch, run_batch_remote, BatchSummary, FileOutcome};
pub use cache::{fnv1a, CacheKey, CachedResult, ResultCache};
pub use client::{Backoff, ClientError, ClusterClient, PipelinedClient, RemoteClient, RetryPolicy};
pub use conn::{Conn, ConnToken, Decoded, LineDecoder};
pub use deadline::{deadline_after_ms, CancelToken};
pub use fault::{ChaosStream, FaultKind, FaultPlan, Faults, NoFaults};
pub use health::{HealthTracker, PeerHealth, PeerReport};
pub use hints::HintStore;
pub use json::{Json, JsonError};
pub use metrics::{Metrics, LATENCY_BUCKETS_US};
pub use peer::{sync_from_peer, ClusterConfig, SyncReport};
pub use persist::{DurableStore, FsyncMode, PersistConfig, PersistStats, RecoveredEntry};
pub use pool::{Pool, PoolHealth, SubmitError};
pub use protocol::{ErrorKind, Op, Request, Response};
pub use ring::HashRing;
pub use serve::{
    bind_ephemeral, serve_listener, serve_stdio, serve_tcp, FrontEnd, ServerConfig, TcpServer,
};
pub use service::{route_fingerprint, Limits, Service};
pub use snapshot::{
    carries_certificate, inspect_store, publish_snapshot, render_report, StoreReport,
};
