//! Peer plumbing for the sharded cluster: topology configuration, the
//! one-shot peer call used by forwarding, and the `peer-sync` client
//! that warm-starts a cold node from a loaded peer's cache.
//!
//! The cluster has no membership protocol and no coordinator — every
//! node (and every router) is handed the same static member list and
//! independently builds the same [`HashRing`](crate::ring::HashRing)
//! over it. Requests are content-addressed by their cache fingerprint,
//! so "which node owns this request" is a pure function any party can
//! evaluate. A node that receives a request it does not own forwards it
//! to the owner (`forward` op) so the computation happens exactly once
//! cluster-wide; a node that starts cold drains a peer's cache
//! (`peer-sync` op) so it never re-explores work the cluster already
//! paid for. See `DESIGN.md` §14 for the invariants.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::cache::{canon_hash, CacheKey};
use crate::json::Json;
use crate::persist::decode_record;
use crate::protocol::{Op, Request};
use crate::ring::HashRing;
use crate::service::Service;

/// Longest chain of `forward` hops allowed before a node must compute
/// locally. Two nodes that disagree about the ring (mid-reconfiguration)
/// can bounce a request between them; the hop budget turns that loop
/// into one extra network round-trip plus a local computation.
pub const DEFAULT_MAX_HOPS: u64 = 3;

/// Default per-call socket timeout for peer traffic (connect, read,
/// write). Peer calls sit on a worker thread, so they must fail fast
/// when a peer is down rather than stall the pool.
pub const DEFAULT_PEER_TIMEOUT_MS: u64 = 5_000;

/// Largest `peer-sync` page a node will serve, whatever the request
/// asks for (bounds the reply line length).
pub const MAX_SYNC_PAGE: u64 = 1_024;

/// Static cluster topology for one node or router.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Every node address in the cluster (including this node's own
    /// advertised address, when it is a node). All members must be
    /// handed the same list — the ring is derived from it.
    pub peers: Vec<String>,
    /// This node's advertised address as it appears in `peers`. `None`
    /// makes this process a router: it owns no shard and forwards
    /// everything.
    pub self_addr: Option<String>,
    /// Forward-chain budget (see [`DEFAULT_MAX_HOPS`]).
    pub max_hops: u64,
    /// Socket timeout for peer calls, in milliseconds.
    pub peer_timeout_ms: u64,
    /// Address of a loaded peer to `peer-sync` from at startup, before
    /// serving (journal shipping instead of re-exploring).
    pub sync_from: Option<String>,
}

impl ClusterConfig {
    /// Topology over `peers` with the default hop and timeout budgets;
    /// a router until [`self_addr`](Self::self_addr) is set.
    pub fn new<S: AsRef<str>>(peers: &[S]) -> ClusterConfig {
        ClusterConfig {
            peers: peers.iter().map(|p| p.as_ref().to_string()).collect(),
            self_addr: None,
            max_hops: DEFAULT_MAX_HOPS,
            peer_timeout_ms: DEFAULT_PEER_TIMEOUT_MS,
            sync_from: None,
        }
    }
}

/// A node's live view of the cluster: the config plus the ring built
/// from it.
pub(crate) struct ClusterState {
    config: ClusterConfig,
    ring: HashRing,
}

impl ClusterState {
    pub(crate) fn new(config: ClusterConfig) -> ClusterState {
        let ring = HashRing::new(&config.peers);
        ClusterState { config, ring }
    }

    pub(crate) fn ring(&self) -> &HashRing {
        &self.ring
    }

    pub(crate) fn max_hops(&self) -> u64 {
        self.config.max_hops
    }

    pub(crate) fn peer_timeout(&self) -> Duration {
        Duration::from_millis(self.config.peer_timeout_ms.max(1))
    }

    /// The peers to try for `key_hash`, in order. For a node: the
    /// owner, unless this node *is* the owner (then nothing — compute
    /// locally). For a router: the owner followed by its ring
    /// successors, so a dead owner re-routes instead of failing.
    pub(crate) fn route(&self, key_hash: u64) -> Vec<String> {
        match &self.config.self_addr {
            Some(me) => match self.ring.node_for(key_hash) {
                Some(owner) if owner != me => vec![owner.to_string()],
                _ => Vec::new(),
            },
            None => self
                .ring
                .preference_list(key_hash)
                .into_iter()
                .map(str::to_string)
                .collect(),
        }
    }
}

/// One-shot peer call: connect, send one request line, read one reply
/// line. Every socket phase is bounded by `timeout` so a dead or
/// stalled peer costs one timeout, not a stuck worker.
pub(crate) fn call(addr: &str, line: &str, timeout: Duration) -> io::Result<String> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before replying",
        ));
    }
    Ok(reply.trim_end().to_string())
}

/// What one [`sync_from_peer`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// `peer-sync` pages fetched.
    pub pages: u64,
    /// Entries decoded, verified, and installed into the local cache.
    pub entries_installed: u64,
    /// Entries dropped: undecodable record payloads or fingerprints
    /// that do not match their canonical text (forged or corrupt).
    pub entries_rejected: u64,
}

/// Warm-starts `service` from `peer`: pages the peer's cached results
/// over `peer-sync` and installs each verified entry locally (and into
/// the local journal, when persistence is on). Entries ship in the
/// journal record encoding, so this is journal shipping over TCP —
/// the receiving node never re-parses, re-proves, or re-explores.
///
/// Each entry is verified before installation: its claimed fingerprint
/// must equal [`canon_hash`] of its canonical text. A lying peer can
/// therefore waste bandwidth but cannot poison the cache — a forged
/// entry either fails verification here or sits under a fingerprint no
/// genuine request resolves to (lookups compare canonical text).
pub fn sync_from_peer(service: &Service, peer: &str, timeout: Duration) -> io::Result<SyncReport> {
    let mut report = SyncReport::default();
    let mut cursor = 0u64;
    loop {
        let mut req = Request::new(Op::PeerSync, "");
        req.cursor = Some(cursor);
        req.limit = Some(256);
        let reply = call(peer, &req.to_line(), timeout)?;
        let v = Json::parse(&reply).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad sync reply: {e}"))
        })?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(io::Error::other(format!("peer refused sync: {reply}")));
        }
        report.pages += 1;
        let entries = v.get("entries").and_then(Json::as_arr).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "sync reply lacks entries")
        })?;
        for entry in entries {
            let Some(payload) = entry.as_str() else {
                report.entries_rejected += 1;
                continue;
            };
            match verified_entry(payload) {
                Some((key, value)) => {
                    service.install_synced(&key, value);
                    report.entries_installed += 1;
                }
                None => report.entries_rejected += 1,
            }
        }
        let done = v.get("done").and_then(Json::as_bool).unwrap_or(true);
        let next = v.get("next").and_then(Json::as_u64).unwrap_or(cursor);
        if done || next <= cursor {
            return Ok(report);
        }
        cursor = next;
    }
}

/// Decodes one shipped journal record payload and verifies its
/// fingerprint against its canonical text. `None` = reject.
fn verified_entry(payload: &str) -> Option<(CacheKey, crate::cache::CachedResult)> {
    let entry = decode_record(payload.as_bytes())?;
    if canon_hash(&entry.key.canon) != Some(entry.key.hash) {
        return None; // forged or corrupt fingerprint
    }
    Some((entry.key, entry.value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedResult;
    use crate::persist::encode_record;

    #[test]
    fn verified_entry_accepts_genuine_records_and_rejects_forgeries() {
        let key = CacheKey::of(&["certify", "two", "var x : integer; x := 0"]);
        let value = CachedResult {
            ok: true,
            fields: vec![("certified".to_string(), Json::Bool(true))],
        };
        let payload = String::from_utf8(encode_record(key.hash, &key.canon, &value)).unwrap();
        let (got_key, got_value) = verified_entry(&payload).expect("genuine record verifies");
        assert_eq!(got_key.hash, key.hash);
        assert_eq!(got_key.canon, key.canon);
        assert!(got_value.ok);

        // A forged fingerprint over someone else's canon is rejected.
        let forged = String::from_utf8(encode_record(key.hash ^ 1, &key.canon, &value)).unwrap();
        assert!(verified_entry(&forged).is_none());

        // Canonical text that is not canonical at all is rejected even
        // with a self-consistent JSON shape.
        let junk = String::from_utf8(encode_record(key.hash, "not canonical", &value)).unwrap();
        assert!(verified_entry(&junk).is_none());

        // Byte soup and truncations never decode.
        assert!(verified_entry("").is_none());
        assert!(verified_entry("{\"h\":\"zz\"}").is_none());
        assert!(verified_entry(&payload[..payload.len() / 2]).is_none());
    }

    #[test]
    fn cluster_state_routes_around_itself() {
        let peers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.self_addr = Some(peers[0].to_string());
        let node = ClusterState::new(cfg.clone());
        let mut saw_self_owned = false;
        let mut saw_forwarded = false;
        for key in 0..2000u64 {
            let hash = crate::fault::splitmix64(key);
            let route = node.route(hash);
            match node.ring().node_for(hash) {
                Some(owner) if owner == peers[0] => {
                    assert!(route.is_empty(), "own keys compute locally");
                    saw_self_owned = true;
                }
                Some(owner) => {
                    assert_eq!(route, vec![owner.to_string()]);
                    saw_forwarded = true;
                }
                None => unreachable!("ring is non-empty"),
            }
        }
        assert!(saw_self_owned && saw_forwarded);

        // A router routes everything and walks the whole ring.
        cfg.self_addr = None;
        let router = ClusterState::new(cfg);
        let route = router.route(crate::fault::splitmix64(7));
        assert_eq!(route.len(), peers.len());
    }
}
