//! Peer plumbing for the sharded cluster: topology configuration, the
//! one-shot peer call used by forwarding, and the `peer-sync` client
//! that warm-starts a cold node from a loaded peer's cache.
//!
//! The cluster has no membership protocol and no coordinator — every
//! node (and every router) is handed the same static member list and
//! independently builds the same [`HashRing`](crate::ring::HashRing)
//! over it. Requests are content-addressed by their cache fingerprint,
//! so "which node owns this request" is a pure function any party can
//! evaluate. A node that receives a request it does not own forwards it
//! to the owner (`forward` op) so the computation happens exactly once
//! cluster-wide; a node that starts cold drains a peer's cache
//! (`peer-sync` op) so it never re-explores work the cluster already
//! paid for. See `DESIGN.md` §14 for the invariants.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::{canon_hash, CacheKey};
use crate::fault::Faults;
use crate::health::HealthTracker;
use crate::json::Json;
use crate::persist::decode_record;
use crate::protocol::{Op, Request};
use crate::ring::HashRing;
use crate::service::Service;

/// Longest chain of `forward` hops allowed before a node must compute
/// locally. Two nodes that disagree about the ring (mid-reconfiguration)
/// can bounce a request between them; the hop budget turns that loop
/// into one extra network round-trip plus a local computation.
pub const DEFAULT_MAX_HOPS: u64 = 3;

/// Default per-call socket timeout for peer traffic (connect, read,
/// write). Peer calls sit on a worker thread, so they must fail fast
/// when a peer is down rather than stall the pool.
pub const DEFAULT_PEER_TIMEOUT_MS: u64 = 5_000;

/// Largest `peer-sync` page a node will serve, whatever the request
/// asks for (bounds the reply line length).
pub const MAX_SYNC_PAGE: u64 = 1_024;

/// Static cluster topology for one node or router.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Every node address in the cluster (including this node's own
    /// advertised address, when it is a node). All members must be
    /// handed the same list — the ring is derived from it.
    pub peers: Vec<String>,
    /// This node's advertised address as it appears in `peers`. `None`
    /// makes this process a router: it owns no shard and forwards
    /// everything.
    pub self_addr: Option<String>,
    /// Forward-chain budget (see [`DEFAULT_MAX_HOPS`]).
    pub max_hops: u64,
    /// Socket timeout for peer calls, in milliseconds.
    pub peer_timeout_ms: u64,
    /// Address of a loaded peer to `peer-sync` from at startup, before
    /// serving (journal shipping instead of re-exploring).
    pub sync_from: Option<String>,
    /// Replication factor: each fingerprint lives on the first
    /// `replication` distinct preference-list nodes. 1 = shard only
    /// (PR 9 behaviour); the primary pushes fresh entries to the other
    /// `replication - 1` replicas via the verified `replicate` path.
    pub replication: u64,
}

impl ClusterConfig {
    /// Topology over `peers` with the default hop and timeout budgets;
    /// a router until [`self_addr`](Self::self_addr) is set.
    pub fn new<S: AsRef<str>>(peers: &[S]) -> ClusterConfig {
        ClusterConfig {
            peers: peers.iter().map(|p| p.as_ref().to_string()).collect(),
            self_addr: None,
            max_hops: DEFAULT_MAX_HOPS,
            peer_timeout_ms: DEFAULT_PEER_TIMEOUT_MS,
            sync_from: None,
            replication: 1,
        }
    }
}

/// A node's live view of the cluster: the config, the ring built from
/// it, the per-peer failure detector, and the chaos hooks for
/// simulated partitions.
pub(crate) struct ClusterState {
    config: ClusterConfig,
    ring: HashRing,
    health: HealthTracker,
    faults: Arc<dyn Faults>,
}

impl ClusterState {
    /// Chaos-free construction (tests; the serve path threads its
    /// fault plan through [`with_faults`](Self::with_faults)).
    #[cfg(test)]
    pub(crate) fn new(config: ClusterConfig) -> ClusterState {
        ClusterState::with_faults(config, Arc::new(crate::fault::NoFaults))
    }

    /// [`new`](Self::new) with chaos hooks wired into the outbound
    /// peer-call path (per-peer `partition` drop rules).
    pub(crate) fn with_faults(config: ClusterConfig, faults: Arc<dyn Faults>) -> ClusterState {
        let ring = HashRing::new(&config.peers);
        let others: Vec<&String> = config
            .peers
            .iter()
            .filter(|p| Some(p.as_str()) != config.self_addr.as_deref())
            .collect();
        let health = HealthTracker::new(&others, 0xC1A0);
        ClusterState {
            config,
            ring,
            health,
            faults,
        }
    }

    pub(crate) fn ring(&self) -> &HashRing {
        &self.ring
    }

    pub(crate) fn health(&self) -> &HealthTracker {
        &self.health
    }

    pub(crate) fn max_hops(&self) -> u64 {
        self.config.max_hops
    }

    pub(crate) fn replication(&self) -> u64 {
        self.config.replication.max(1)
    }

    pub(crate) fn peer_timeout(&self) -> Duration {
        Duration::from_millis(self.config.peer_timeout_ms.max(1))
    }

    /// The peers to try for `key_hash`, in order, with DOWN peers
    /// skipped. For a node: the first `replication` preference-list
    /// members, unless this node is one of them (then nothing —
    /// compute/serve locally; as a replica it usually has the entry)
    /// or every candidate is DOWN (then nothing — degrade to local
    /// computation rather than burn the timeout budget). For a router:
    /// the full preference walk, falling back to the unfiltered list
    /// when the detector claims everyone is DOWN (a router cannot
    /// compute, so it must try *something*).
    pub(crate) fn route(&self, key_hash: u64) -> Vec<String> {
        match &self.config.self_addr {
            Some(me) => {
                let rf = self.replication() as usize;
                let prefs = self.ring.preference_list(key_hash, rf);
                if prefs.iter().any(|p| p == me) {
                    return Vec::new();
                }
                prefs
                    .into_iter()
                    .filter(|p| !self.health.is_down(p))
                    .map(str::to_string)
                    .collect()
            }
            None => {
                let all: Vec<String> = self
                    .ring
                    .preference_list(key_hash, self.ring.len())
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                let up: Vec<String> = all
                    .iter()
                    .filter(|p| !self.health.is_down(p))
                    .cloned()
                    .collect();
                if up.is_empty() {
                    all
                } else {
                    up
                }
            }
        }
    }

    /// The peers (excluding self) that should hold a replica of
    /// `key_hash` — the primary pushes fresh entries to these.
    pub(crate) fn replica_targets(&self, key_hash: u64) -> Vec<String> {
        let rf = self.replication() as usize;
        if rf <= 1 {
            return Vec::new();
        }
        let me = self.config.self_addr.as_deref();
        self.ring
            .preference_list(key_hash, rf)
            .into_iter()
            .filter(|p| Some(*p) != me)
            .map(str::to_string)
            .collect()
    }

    /// One-shot call to `addr` through the chaos layer (a partitioned
    /// peer fails as a connection would) with the outcome fed to the
    /// failure detector.
    pub(crate) fn call_peer(&self, addr: &str, line: &str) -> io::Result<String> {
        if self.faults.drop_peer(addr) {
            self.health.record_failure(addr);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("chaos: partitioned from {addr}"),
            ));
        }
        match call(addr, line, self.peer_timeout()) {
            Ok(reply) => {
                self.health.record_success(addr);
                Ok(reply)
            }
            Err(e) => {
                self.health.record_failure(addr);
                Err(e)
            }
        }
    }
}

/// One-shot peer call: connect, send one request line, read one reply
/// line. Every socket phase is bounded by `timeout` so a dead or
/// stalled peer costs one timeout, not a stuck worker.
pub(crate) fn call(addr: &str, line: &str, timeout: Duration) -> io::Result<String> {
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before replying",
        ));
    }
    Ok(reply.trim_end().to_string())
}

/// What one [`sync_from_peer`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// `peer-sync` pages fetched.
    pub pages: u64,
    /// Entries decoded, verified, and installed into the local cache.
    pub entries_installed: u64,
    /// Entries dropped: undecodable record payloads or fingerprints
    /// that do not match their canonical text (forged or corrupt).
    pub entries_rejected: u64,
}

/// Warm-starts `service` from `peer`: pages the peer's cached results
/// over `peer-sync` and installs each verified entry locally (and into
/// the local journal, when persistence is on). Entries ship in the
/// journal record encoding, so this is journal shipping over TCP —
/// the receiving node never re-parses, re-proves, or re-explores.
///
/// Each entry is verified before installation: its claimed fingerprint
/// must equal [`canon_hash`] of its canonical text. A lying peer can
/// therefore waste bandwidth but cannot poison the cache — a forged
/// entry either fails verification here or sits under a fingerprint no
/// genuine request resolves to (lookups compare canonical text).
pub fn sync_from_peer(service: &Service, peer: &str, timeout: Duration) -> io::Result<SyncReport> {
    let mut report = SyncReport::default();
    let mut cursor = 0u64;
    loop {
        let mut req = Request::new(Op::PeerSync, "");
        req.cursor = Some(cursor);
        req.limit = Some(256);
        let reply = call(peer, &req.to_line(), timeout)?;
        let v = Json::parse(&reply).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad sync reply: {e}"))
        })?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(io::Error::other(format!("peer refused sync: {reply}")));
        }
        report.pages += 1;
        let entries = v.get("entries").and_then(Json::as_arr).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "sync reply lacks entries")
        })?;
        for entry in entries {
            let Some(payload) = entry.as_str() else {
                report.entries_rejected += 1;
                continue;
            };
            match verified_entry(payload) {
                Some((key, value)) => {
                    if service.install_synced(&key, value) {
                        report.entries_installed += 1;
                    }
                }
                None => report.entries_rejected += 1,
            }
        }
        let done = v.get("done").and_then(Json::as_bool).unwrap_or(true);
        let next = v.get("next").and_then(Json::as_u64).unwrap_or(cursor);
        if done || next <= cursor {
            return Ok(report);
        }
        cursor = next;
    }
}

/// Decodes one shipped journal record payload and verifies its
/// fingerprint against its canonical text. `None` = reject. This is
/// the single gate every remotely-sourced entry passes through —
/// `peer-sync` pulls, `replicate` pushes, and hint drains all verify
/// here before anything touches the cache.
pub(crate) fn verified_entry(payload: &str) -> Option<(CacheKey, crate::cache::CachedResult)> {
    let entry = decode_record(payload.as_bytes())?;
    if canon_hash(&entry.key.canon) != Some(entry.key.hash) {
        return None; // forged or corrupt fingerprint
    }
    Some((entry.key, entry.value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedResult;
    use crate::persist::encode_record;

    #[test]
    fn verified_entry_accepts_genuine_records_and_rejects_forgeries() {
        let key = CacheKey::of(&["certify", "two", "var x : integer; x := 0"]);
        let value = CachedResult {
            ok: true,
            fields: vec![("certified".to_string(), Json::Bool(true))],
        };
        let payload = String::from_utf8(encode_record(key.hash, &key.canon, &value)).unwrap();
        let (got_key, got_value) = verified_entry(&payload).expect("genuine record verifies");
        assert_eq!(got_key.hash, key.hash);
        assert_eq!(got_key.canon, key.canon);
        assert!(got_value.ok);

        // A forged fingerprint over someone else's canon is rejected.
        let forged = String::from_utf8(encode_record(key.hash ^ 1, &key.canon, &value)).unwrap();
        assert!(verified_entry(&forged).is_none());

        // Canonical text that is not canonical at all is rejected even
        // with a self-consistent JSON shape.
        let junk = String::from_utf8(encode_record(key.hash, "not canonical", &value)).unwrap();
        assert!(verified_entry(&junk).is_none());

        // Byte soup and truncations never decode.
        assert!(verified_entry("").is_none());
        assert!(verified_entry("{\"h\":\"zz\"}").is_none());
        assert!(verified_entry(&payload[..payload.len() / 2]).is_none());
    }

    #[test]
    fn cluster_state_routes_around_itself() {
        let peers = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.self_addr = Some(peers[0].to_string());
        let node = ClusterState::new(cfg.clone());
        let mut saw_self_owned = false;
        let mut saw_forwarded = false;
        for key in 0..2000u64 {
            let hash = crate::fault::splitmix64(key);
            let route = node.route(hash);
            match node.ring().node_for(hash) {
                Some(owner) if owner == peers[0] => {
                    assert!(route.is_empty(), "own keys compute locally");
                    saw_self_owned = true;
                }
                Some(owner) => {
                    assert_eq!(route, vec![owner.to_string()]);
                    saw_forwarded = true;
                }
                None => unreachable!("ring is non-empty"),
            }
        }
        assert!(saw_self_owned && saw_forwarded);

        // A router routes everything and walks the whole ring.
        cfg.self_addr = None;
        let router = ClusterState::new(cfg);
        let route = router.route(crate::fault::splitmix64(7));
        assert_eq!(route.len(), peers.len());
    }

    #[test]
    fn routing_skips_down_peers_and_replication_widens_routes() {
        let peers = ["127.0.0.1:7201", "127.0.0.1:7202", "127.0.0.1:7203"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.replication = 2;
        cfg.self_addr = Some(peers[0].to_string());
        let node = ClusterState::new(cfg.clone());

        // Find a key whose 2-node replica set excludes this node.
        let hash = (0..5000u64)
            .map(crate::fault::splitmix64)
            .find(|&h| {
                !node
                    .ring()
                    .preference_list(h, 2)
                    .iter()
                    .any(|p| *p == peers[0])
            })
            .expect("some key is owned elsewhere");
        let full = node.route(hash);
        assert_eq!(full.len(), 2, "rf=2 offers both replicas");

        // Opening the owner's circuit drops it from the route.
        for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
            node.health().record_failure(&full[0]);
        }
        let degraded = node.route(hash);
        assert_eq!(degraded, full[1..].to_vec());

        // All replicas down: degrade to local computation (empty).
        for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
            node.health().record_failure(&full[1]);
        }
        assert!(node.route(hash).is_empty());

        // A replica set containing self always computes locally.
        let own = (0..5000u64)
            .map(crate::fault::splitmix64)
            .find(|&h| node.ring().node_for(h) == Some(peers[0]))
            .unwrap();
        assert!(node.route(own).is_empty());

        // replica_targets: the other members of the replica set.
        let targets = node.replica_targets(own);
        assert_eq!(targets.len(), 1);
        assert_ne!(targets[0], peers[0]);
        let mut rf1 = ClusterConfig::new(&peers);
        rf1.self_addr = Some(peers[0].to_string());
        assert!(ClusterState::new(rf1).replica_targets(own).is_empty());

        // A router whose detector lost everyone fails open.
        cfg.self_addr = None;
        let router = ClusterState::new(cfg);
        for p in &peers {
            for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
                router.health().record_failure(p);
            }
        }
        assert_eq!(router.route(hash).len(), peers.len());
    }

    #[test]
    fn partitioned_peer_calls_fail_fast_and_open_the_circuit() {
        let peers = ["127.0.0.1:7301", "127.0.0.1:7302"];
        let mut cfg = ClusterConfig::new(&peers);
        cfg.self_addr = Some(peers[0].to_string());
        let mut plan = crate::fault::FaultPlan::new(3);
        plan.partitions = vec![(peers[1].to_string(), 1000)];
        let node = ClusterState::with_faults(cfg, Arc::new(plan));
        for _ in 0..crate::health::DEFAULT_FAILURE_THRESHOLD {
            let err = node.call_peer(peers[1], "{\"op\":\"ping\"}").unwrap_err();
            assert!(err.to_string().contains("partitioned"), "{err}");
        }
        assert!(node.health().is_down(peers[1]));
    }
}
