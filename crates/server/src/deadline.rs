//! Per-request deadlines and cooperative cancellation.
//!
//! A [`CancelToken`] is created when a request is accepted (its
//! deadline computed from the request's `timeout_ms`, capped by
//! [`crate::Limits`]) and shared between the connection, the worker
//! running the request, and the pool watchdog. Long-running work
//! (deadlock exploration in `secflow-analyze`, the interleaving
//! explorer in `secflow-runtime`) polls the token every few hundred
//! states and unwinds cooperatively; the service then answers with a
//! structured `timeout` error instead of running unbounded.
//!
//! Deadline arithmetic is saturating everywhere: a `timeout_ms` of
//! `u64::MAX` (or anything that would push an [`Instant`] past its
//! platform range) degrades to "no deadline", never to a panic or a
//! wrapped time in the past.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, clonable cancellation token with an optional deadline.
///
/// Cancellation is level-triggered and sticky: once [`expired`]
/// (explicitly via [`cancel`], or implicitly by passing the deadline)
/// the token stays expired forever.
///
/// [`expired`]: CancelToken::expired
/// [`cancel`]: CancelToken::cancel
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own (explicit [`cancel`] only).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn unbounded() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token expiring `timeout_ms` milliseconds from now. `0` and
    /// values too large to represent both mean "no deadline".
    pub fn after_ms(timeout_ms: u64) -> CancelToken {
        match deadline_after_ms(Instant::now(), timeout_ms) {
            Some(deadline) => CancelToken::with_deadline(deadline),
            None => CancelToken::unbounded(),
        }
    }

    /// Explicitly cancels the token (idempotent).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once cancelled or past the deadline; sticky thereafter.
    pub fn expired(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so `expired` stays cheap and monotone.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline (`None` without one; zero once
    /// past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// `now + timeout_ms`, saturating: `None` means "no deadline" (either
/// `timeout_ms == 0`, i.e. disabled, or the sum is unrepresentable).
pub fn deadline_after_ms(now: Instant, timeout_ms: u64) -> Option<Instant> {
    if timeout_ms == 0 {
        return None;
    }
    now.checked_add(Duration::from_millis(timeout_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_expires() {
        let t = CancelToken::unbounded();
        assert!(!t.expired());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
        t.cancel();
        assert!(t.expired());
    }

    #[test]
    fn deadline_expiry_is_sticky_and_shared() {
        let t = CancelToken::after_ms(1);
        let clone = t.clone();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.expired());
        assert!(clone.expired(), "clones share the latch");
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn zero_and_huge_timeouts_mean_no_deadline() {
        assert!(!CancelToken::after_ms(0).expired());
        assert_eq!(CancelToken::after_ms(0).deadline(), None);
        // Saturates instead of panicking near the Instant range end.
        let t = CancelToken::after_ms(u64::MAX);
        assert!(!t.expired());
    }
}
