//! Per-peer failure detection for the cluster: a consecutive-failure
//! circuit breaker with jittered probe scheduling.
//!
//! Every peer call reports its outcome here ([`record_success`] /
//! [`record_failure`](HealthTracker::record_failure)). A peer that
//! fails [`DEFAULT_FAILURE_THRESHOLD`] calls in a row is marked DOWN
//! and the routing layers stop sending it work — forwarding falls back
//! to local computation, replication queues hints, the cluster client
//! advances down the preference list. A background probe loop asks
//! [`due_probes`](HealthTracker::due_probes) which non-UP peers are
//! ready for a `ping` and feeds the result back, so a recovered peer
//! is readmitted without operator action.
//!
//! Probe deadlines use decorrelated jitter (the same shape as the
//! retry client's backoff): each failure pushes the next probe out to
//! `base + rand(0, 3·prev)` capped at [`PROBE_CAP_MS`], with the
//! randomness drawn from the seeded `splitmix64` mixer so a seeded
//! test run schedules probes deterministically.
//!
//! States are UP (healthy or unproven), SUSPECT (some failures, circuit
//! still closed), DOWN (circuit open). Only DOWN changes routing:
//! SUSPECT peers still get traffic, which either heals them or pushes
//! them over the threshold. See `DESIGN.md` §15.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::fault::splitmix64;

/// Consecutive failures that open the circuit (UP/SUSPECT → DOWN).
pub const DEFAULT_FAILURE_THRESHOLD: u32 = 3;

/// First probe delay after a failure, in milliseconds.
pub const PROBE_BASE_MS: u64 = 100;

/// Probe delay ceiling, in milliseconds. Low enough that a healed peer
/// is readmitted within about a second of answering pings again.
pub const PROBE_CAP_MS: u64 = 1_000;

/// A peer's health as the detector sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerHealth {
    /// Answering calls (or never tried — optimistic until proven bad).
    Up,
    /// Recent failures, but fewer than the threshold; still routed to.
    Suspect,
    /// Circuit open: skipped by routing until a probe succeeds.
    Down,
}

impl PeerHealth {
    /// Wire/display name (`up`, `suspect`, `down`).
    pub fn name(self) -> &'static str {
        match self {
            PeerHealth::Up => "up",
            PeerHealth::Suspect => "suspect",
            PeerHealth::Down => "down",
        }
    }
}

struct PeerState {
    failures: u32,
    last_seen: Option<Instant>,
    /// When the next probe may run (None = no probe owed).
    probe_at: Option<Instant>,
    /// Previous probe delay, for the decorrelated-jitter recurrence.
    probe_ms: u64,
}

impl PeerState {
    fn new() -> PeerState {
        PeerState {
            failures: 0,
            last_seen: None,
            probe_at: None,
            probe_ms: PROBE_BASE_MS,
        }
    }

    fn health(&self, threshold: u32) -> PeerHealth {
        match self.failures {
            0 => PeerHealth::Up,
            f if f < threshold => PeerHealth::Suspect,
            _ => PeerHealth::Down,
        }
    }
}

/// One line of a health [`snapshot`](HealthTracker::snapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerReport {
    /// The peer's advertised address.
    pub addr: String,
    /// Current detector state.
    pub health: PeerHealth,
    /// Milliseconds since the last successful call, `None` if never.
    pub last_seen_ms: Option<u64>,
}

/// Thread-safe per-peer failure detector (see the module docs).
pub struct HealthTracker {
    peers: Mutex<HashMap<String, PeerState>>,
    threshold: u32,
    seed: u64,
    ticks: AtomicU64,
}

impl HealthTracker {
    /// A tracker over `peers` (typically the member list minus self),
    /// all initially UP.
    pub fn new<S: AsRef<str>>(peers: &[S], seed: u64) -> HealthTracker {
        let map = peers
            .iter()
            .map(|p| (p.as_ref().to_string(), PeerState::new()))
            .collect();
        HealthTracker {
            peers: Mutex::new(map),
            threshold: DEFAULT_FAILURE_THRESHOLD,
            seed,
            ticks: AtomicU64::new(0),
        }
    }

    /// A call to `addr` succeeded: close the circuit and stamp
    /// last-seen. Returns `true` when this flipped the peer from DOWN
    /// to UP (the caller should drain any hints owed to it).
    pub fn record_success(&self, addr: &str) -> bool {
        let mut peers = self.peers.lock().unwrap();
        let state = peers.entry(addr.to_string()).or_insert_with(PeerState::new);
        let was_down = state.health(self.threshold) == PeerHealth::Down;
        state.failures = 0;
        state.last_seen = Some(Instant::now());
        state.probe_at = None;
        state.probe_ms = PROBE_BASE_MS;
        was_down
    }

    /// A call to `addr` failed: count it, maybe open the circuit, and
    /// schedule the next probe with decorrelated jitter.
    pub fn record_failure(&self, addr: &str) {
        let mut peers = self.peers.lock().unwrap();
        let state = peers.entry(addr.to_string()).or_insert_with(PeerState::new);
        state.failures = state.failures.saturating_add(1);
        let tick = self.ticks.fetch_add(1, Relaxed);
        let span = (state.probe_ms * 3).max(PROBE_BASE_MS + 1);
        let next = PROBE_BASE_MS + splitmix64(self.seed.wrapping_add(tick)) % span;
        state.probe_ms = next.min(PROBE_CAP_MS);
        state.probe_at = Some(Instant::now() + Duration::from_millis(state.probe_ms));
    }

    /// Is `addr` currently DOWN (circuit open)?
    pub fn is_down(&self, addr: &str) -> bool {
        self.health(addr) == PeerHealth::Down
    }

    /// `addr`'s current state (unknown peers are UP — optimism keeps a
    /// misconfigured tracker from blackholing traffic).
    pub fn health(&self, addr: &str) -> PeerHealth {
        let peers = self.peers.lock().unwrap();
        peers
            .get(addr)
            .map(|s| s.health(self.threshold))
            .unwrap_or(PeerHealth::Up)
    }

    /// The non-UP peers whose probe deadline has passed: the probe loop
    /// should `ping` each and report the outcome back. Claiming a probe
    /// pushes its deadline out, so concurrent ticks never double-probe.
    pub fn due_probes(&self) -> Vec<String> {
        let now = Instant::now();
        let mut peers = self.peers.lock().unwrap();
        let mut due = Vec::new();
        for (addr, state) in peers.iter_mut() {
            if state.failures == 0 {
                continue;
            }
            match state.probe_at {
                Some(at) if at <= now => {
                    state.probe_at = Some(now + Duration::from_millis(state.probe_ms));
                    due.push(addr.clone());
                }
                _ => {}
            }
        }
        due.sort();
        due
    }

    /// Every tracked peer's state, sorted by address (for `stats` and
    /// `cluster-status`).
    pub fn snapshot(&self) -> Vec<PeerReport> {
        let now = Instant::now();
        let peers = self.peers.lock().unwrap();
        let mut out: Vec<PeerReport> = peers
            .iter()
            .map(|(addr, state)| PeerReport {
                addr: addr.clone(),
                health: state.health(self.threshold),
                last_seen_ms: state
                    .last_seen
                    .map(|t| now.saturating_duration_since(t).as_millis() as u64),
            })
            .collect();
        out.sort_by(|a, b| a.addr.cmp(&b.addr));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_opens_and_success_closes_the_circuit() {
        let t = HealthTracker::new(&["a", "b"], 7);
        assert_eq!(t.health("a"), PeerHealth::Up);
        t.record_failure("a");
        assert_eq!(t.health("a"), PeerHealth::Suspect);
        t.record_failure("a");
        assert_eq!(t.health("a"), PeerHealth::Suspect);
        t.record_failure("a");
        assert_eq!(t.health("a"), PeerHealth::Down);
        assert!(t.is_down("a"));
        assert!(!t.is_down("b"), "peers fail independently");

        // One success heals completely and reports the DOWN→UP flip.
        assert!(t.record_success("a"), "flip from DOWN is reported");
        assert_eq!(t.health("a"), PeerHealth::Up);
        assert!(!t.record_success("a"), "already-UP success is quiet");

        // A single failure after healing is SUSPECT again, not DOWN.
        t.record_failure("a");
        assert_eq!(t.health("a"), PeerHealth::Suspect);
    }

    #[test]
    fn unknown_peers_are_optimistically_up() {
        let t = HealthTracker::new(&["a"], 1);
        assert_eq!(t.health("never-heard-of-it"), PeerHealth::Up);
        assert!(!t.is_down("never-heard-of-it"));
    }

    #[test]
    fn probes_come_due_only_for_failing_peers() {
        let t = HealthTracker::new(&["a", "b", "c"], 11);
        assert!(t.due_probes().is_empty(), "healthy cluster owes no probes");
        t.record_failure("a");
        t.record_failure("c");
        // Deadlines are in the future (jittered ≥ base); force them due
        // by waiting out the cap in a test would be slow, so check the
        // claim-and-reschedule contract instead: nothing is due yet.
        assert!(t.due_probes().is_empty());
        std::thread::sleep(Duration::from_millis(PROBE_CAP_MS + PROBE_BASE_MS + 50));
        let due = t.due_probes();
        assert_eq!(due, vec!["a".to_string(), "c".to_string()]);
        // Claiming rescheduled them — an immediate re-ask owes nothing.
        assert!(t.due_probes().is_empty(), "claimed probes are rescheduled");
        t.record_success("a");
        t.record_success("c");
        std::thread::sleep(Duration::from_millis(PROBE_CAP_MS + PROBE_BASE_MS + 50));
        assert!(t.due_probes().is_empty(), "healed peers owe no probes");
    }

    #[test]
    fn snapshot_reports_every_peer_sorted() {
        let t = HealthTracker::new(&["b", "a"], 3);
        t.record_success("b");
        t.record_failure("a");
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].addr, "a");
        assert_eq!(snap[0].health, PeerHealth::Suspect);
        assert_eq!(snap[0].last_seen_ms, None);
        assert_eq!(snap[1].addr, "b");
        assert_eq!(snap[1].health, PeerHealth::Up);
        assert!(snap[1].last_seen_ms.is_some());
        assert_eq!(PeerHealth::Down.name(), "down");
    }
}
