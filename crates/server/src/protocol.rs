//! The JSON-lines wire protocol.
//!
//! One request object per line in, one response object per line out.
//! Requests:
//!
//! ```text
//! {"id":1,"op":"certify","source":"…","classes":{"x":"high"},
//!  "default":"low","lattice":"linear:4","baseline":false,"fuel":50000}
//! {"id":2,"op":"infer","source":"…","pins":{"x":"high"}}
//! {"id":3,"op":"flows","source":"…","dot":true}
//! {"id":4,"op":"lint","source":"…"}
//! {"id":5,"op":"explore","source":"…","inputs":{"x":1},"max_states":100000,"threads":4}
//! {"id":6,"op":"checkproof","source":"…","cert":"{…}"}
//! {"id":7,"op":"stats"}
//! {"id":8,"op":"shutdown"}
//! {"id":9,"op":"forward","hops":1,"req":"{\"op\":\"certify\",…}"}
//! {"id":10,"op":"peer-sync","cursor":0,"limit":256}
//! {"id":11,"op":"ping"}
//! {"id":12,"op":"replicate","payload":"{\"h\":…}"}
//! {"id":13,"op":"repair","peer":"127.0.0.1:4601"}
//! ```
//!
//! `certify` additionally accepts `"with_proof":true`: when the program
//! certifies, the reply carries a self-contained proof `certificate`
//! (the `secflow-cert` wire format) plus its `proof_digest` and
//! `proof_nodes`. `checkproof` validates such a certificate against
//! `source`; `cert` may be the certificate string or the certificate
//! object itself (re-serialized canonically on parse).
//!
//! The peer ops are cluster plumbing. `forward` wraps a complete
//! inner request line in `req` with a `hops` count; a node receiving
//! one answers it exactly as it would the inner line (so forwarded
//! replies are byte-compatible with direct ones) and the hop count
//! guards against routing loops while nodes disagree about the ring —
//! a forward whose hop count exceeds the receiver's budget is refused
//! with a structured `max_hops_exhausted` error. `peer-sync` pages a
//! node's cached results to a warm-starting peer as journal record
//! payloads (`entries`, each a string in the
//! [`crate::persist::encode_record`] format), `cursor`/`limit`
//! controlling the page and the reply's `next`/`done` fields telling
//! the receiver how to continue. `ping` is the failure detector's
//! probe: answered inline (never queued), it carries the node's shard
//! `digest` so health checks double as anti-entropy comparisons.
//! `replicate` pushes one freshly computed cache entry (a single
//! `encode_record` payload) to a replica, which verifies it exactly
//! like a `peer-sync` page before installing. `repair` tells a node to
//! anti-entropy against `peer`: compare shard digests and, when they
//! differ, pull the peer's entries through `peer-sync`.
//!
//! Every work-carrying request additionally accepts `"timeout_ms":N` —
//! a per-request deadline. Work that overruns it is cancelled
//! cooperatively and answered with a `timeout` error.
//!
//! Responses always carry `ok` and echo `id` (when one was given) and
//! `op`. Failures carry an `error` object with a machine-readable
//! `kind` (`protocol`, `parse`, `binding`, `fuel`, `timeout`,
//! `overloaded`, `internal`, `max_hops_exhausted`) and a
//! human-readable `message`. Responses to pipelined requests may
//! arrive out of order; correlate by `id`.
//!
//! # Retryable vs. permanent failures
//!
//! The error kinds split into two disjoint classes, which the retrying
//! client ([`crate::client`]) uses to decide whether another attempt
//! can help:
//!
//! | kind         | class     | rationale |
//! |--------------|-----------|-----------|
//! | `overloaded` | retryable | the queue was momentarily full |
//! | `timeout`    | retryable | the deadline raced the work; a retry may win |
//! | `internal`   | retryable | a worker crashed mid-request (transient fault) |
//! | `protocol`   | permanent | the request line itself is malformed |
//! | `parse`      | permanent | the program will never parse |
//! | `binding`    | permanent | the class/lattice spec is invalid |
//! | `fuel`       | permanent | a policy rejection; retrying cannot change it |
//! | `max_hops_exhausted` | permanent | re-asking the *same* node re-enters the same loop |
//!
//! `max_hops_exhausted` is permanent against the node that answered it
//! — the forward chain it refused is deterministic — but the
//! cluster-aware client treats it as "advance to the next
//! preference-list node", which breaks the loop instead of retrying
//! into it.

use crate::json::Json;

/// The operation a request asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// CFM-certify a program under a binding.
    Certify,
    /// Infer the least certifying binding given pinned classes.
    Infer,
    /// Render the program's flow graph (text or DOT).
    Flows,
    /// Run the static analysis passes and return unified diagnostics.
    Lint,
    /// Exhaustively explore the program's interleavings (bounded).
    Explore,
    /// Validate a proof certificate against its source program.
    Checkproof,
    /// Report service counters and latency histogram.
    Stats,
    /// Stop the service, draining queued work first.
    Shutdown,
    /// Peer op: answer the inner request in `req` on behalf of another
    /// node (the sender's ring said this node owns the fingerprint).
    Forward,
    /// Peer op: page cached results to a warm-starting peer as journal
    /// record payloads.
    PeerSync,
    /// Liveness probe, answered inline; the reply carries the node's
    /// shard digest for anti-entropy comparisons.
    Ping,
    /// Peer op: install one freshly computed cache entry pushed by the
    /// primary (verified before installation, like `peer-sync`).
    Replicate,
    /// Anti-entropy: compare shard digests with `peer` and pull its
    /// entries through `peer-sync` when they differ.
    Repair,
}

impl Op {
    /// Wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            Op::Certify => "certify",
            Op::Infer => "infer",
            Op::Flows => "flows",
            Op::Lint => "lint",
            Op::Explore => "explore",
            Op::Checkproof => "checkproof",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::Forward => "forward",
            Op::PeerSync => "peer-sync",
            Op::Ping => "ping",
            Op::Replicate => "replicate",
            Op::Repair => "repair",
        }
    }
}

/// A parsed request line.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Requested operation.
    pub op: Op,
    /// Program source text (empty for `stats`/`shutdown`).
    pub source: String,
    /// `certify`: variable classes; `infer`: pinned classes. Sorted by
    /// name so equivalent requests fingerprint identically.
    pub classes: Vec<(String, String)>,
    /// Class given to unlisted variables (`certify` only).
    pub default_class: Option<String>,
    /// Lattice spec: `two` (default) or `linear:N`.
    pub lattice: String,
    /// Use the sequential Denning baseline instead of CFM.
    pub baseline: bool,
    /// Attach a proof certificate to a certifying reply (`certify`).
    pub with_proof: bool,
    /// The certificate to validate (`checkproof` only; required there).
    pub cert: Option<String>,
    /// Emit DOT instead of text (`flows` only).
    pub dot: bool,
    /// Per-request work limit in statements (capped by the server).
    pub fuel: Option<u64>,
    /// Per-request deadline in milliseconds (capped by the server); the
    /// server default applies when absent.
    pub timeout_ms: Option<u64>,
    /// Initial variable values (`explore` only), sorted by name.
    pub inputs: Vec<(String, i64)>,
    /// State cap for `explore` (capped by the server).
    pub max_states: Option<u64>,
    /// Partial-order reduction for `explore` (default `true`; send
    /// `"por":false` for the full interleaving search). Part of the
    /// cache key: the reply's `states` count depends on it.
    pub por: bool,
    /// Worker threads for `explore`/`lint` state-space search (clamped
    /// by the server; the reply reports the effective count).
    pub threads: Option<u64>,
    /// How many times this request has been forwarded between nodes
    /// (`forward` only; the anti-loop guard). Default 0.
    pub hops: u64,
    /// The wrapped inner request line (`forward` only; required there).
    pub req: Option<String>,
    /// Page start for `peer-sync`: skip this many entries. Default 0.
    pub cursor: Option<u64>,
    /// Page size cap for `peer-sync` (capped by the server).
    pub limit: Option<u64>,
    /// One journal record payload to install (`replicate` only;
    /// required there).
    pub payload: Option<String>,
    /// The peer address to anti-entropy against (`repair` only;
    /// required there).
    pub peer: Option<String>,
}

impl Request {
    /// Parses one protocol line. On failure the caller should answer
    /// with a `protocol` error; the `Option<Json>` is whatever id could
    /// be salvaged for the error response.
    pub fn parse(line: &str) -> Result<Request, (Option<Json>, String)> {
        let value = Json::parse(line).map_err(|e| (None, format!("bad JSON: {e}")))?;
        let id = value.get("id").cloned();
        let fail = |msg: String| (id.clone(), msg);

        if value.as_obj().is_none() {
            return Err(fail("request must be a JSON object".into()));
        }
        let op = match value.get("op").and_then(Json::as_str) {
            Some("certify") => Op::Certify,
            Some("infer") => Op::Infer,
            Some("flows") => Op::Flows,
            Some("lint") => Op::Lint,
            Some("explore") => Op::Explore,
            Some("checkproof") => Op::Checkproof,
            Some("stats") => Op::Stats,
            Some("shutdown") => Op::Shutdown,
            Some("forward") => Op::Forward,
            Some("peer-sync") => Op::PeerSync,
            Some("ping") => Op::Ping,
            Some("replicate") => Op::Replicate,
            Some("repair") => Op::Repair,
            Some(other) => return Err(fail(format!("unknown op `{other}`"))),
            None => return Err(fail("missing string field `op`".into())),
        };

        let source = match value.get("source") {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err(fail("`source` must be a string".into())),
            None => {
                if matches!(
                    op,
                    Op::Certify | Op::Infer | Op::Flows | Op::Lint | Op::Explore | Op::Checkproof
                ) {
                    return Err(fail(format!("op `{}` needs `source`", op.name())));
                }
                String::new()
            }
        };

        let class_field = match op {
            Op::Infer => "pins",
            _ => "classes",
        };
        let mut classes = Vec::new();
        match value.get(class_field) {
            None => {}
            Some(Json::Obj(fields)) => {
                for (name, class) in fields {
                    match class {
                        Json::Str(c) => classes.push((name.clone(), c.clone())),
                        _ => {
                            return Err(fail(format!(
                                "`{class_field}.{name}` must be a string class"
                            )))
                        }
                    }
                }
            }
            Some(_) => return Err(fail(format!("`{class_field}` must be an object"))),
        }
        classes.sort();

        let default_class = match value.get("default") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(fail("`default` must be a string".into())),
        };
        let lattice = match value.get("lattice") {
            None => "two".to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err(fail("`lattice` must be a string".into())),
        };
        let flag = |name: &str| -> Result<bool, (Option<Json>, String)> {
            match value.get(name) {
                None => Ok(false),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(fail(format!("`{name}` must be a boolean"))),
            }
        };
        let baseline = flag("baseline")?;
        let dot = flag("dot")?;
        let with_proof = flag("with_proof")?;
        let cert = match value.get("cert") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            // An inline certificate object: re-serialize it (the
            // validator normalizes whitespace, so this is lossless).
            Some(obj @ Json::Obj(_)) => Some(obj.to_string()),
            Some(_) => return Err(fail("`cert` must be a string or object".into())),
        };
        if op == Op::Checkproof && cert.is_none() {
            return Err(fail("op `checkproof` needs `cert`".into()));
        }
        let uint = |name: &str| -> Result<Option<u64>, (Option<Json>, String)> {
            match value.get(name) {
                None => Ok(None),
                Some(v) => Ok(Some(v.as_u64().ok_or_else(|| {
                    fail(format!("`{name}` must be a non-negative integer"))
                })?)),
            }
        };
        let fuel = uint("fuel")?;
        let timeout_ms = uint("timeout_ms")?;
        let max_states = uint("max_states")?;
        let threads = uint("threads")?;
        let hops = uint("hops")?.unwrap_or(0);
        let req = match value.get("req") {
            None => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err(fail("`req` must be a string".into())),
        };
        if op == Op::Forward && req.is_none() {
            return Err(fail("op `forward` needs `req`".into()));
        }
        let cursor = uint("cursor")?;
        let limit = uint("limit")?;
        let string_field = |name: &str| -> Result<Option<String>, (Option<Json>, String)> {
            match value.get(name) {
                None => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(fail(format!("`{name}` must be a string"))),
            }
        };
        let payload = string_field("payload")?;
        if op == Op::Replicate && payload.is_none() {
            return Err(fail("op `replicate` needs `payload`".into()));
        }
        let peer = string_field("peer")?;
        if op == Op::Repair && peer.is_none() {
            return Err(fail("op `repair` needs `peer`".into()));
        }
        let por = match value.get("por") {
            None => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(fail("`por` must be a boolean".into())),
        };

        let mut inputs = Vec::new();
        match value.get("inputs") {
            None => {}
            Some(Json::Obj(fields)) => {
                for (name, v) in fields {
                    match v.as_i64() {
                        Some(n) => inputs.push((name.clone(), n)),
                        None => {
                            return Err(fail(format!("`inputs.{name}` must be an integer")));
                        }
                    }
                }
            }
            Some(_) => return Err(fail("`inputs` must be an object".into())),
        }
        inputs.sort();

        Ok(Request {
            id,
            op,
            source,
            classes,
            default_class,
            lattice,
            baseline,
            with_proof,
            cert,
            dot,
            fuel,
            timeout_ms,
            inputs,
            max_states,
            por,
            threads,
            hops,
            req,
            cursor,
            limit,
            payload,
            peer,
        })
    }

    /// A request with every optional field absent (the wire defaults).
    pub fn new(op: Op, source: impl Into<String>) -> Request {
        Request {
            id: None,
            op,
            source: source.into(),
            classes: Vec::new(),
            default_class: None,
            lattice: "two".to_string(),
            baseline: false,
            with_proof: false,
            cert: None,
            dot: false,
            fuel: None,
            timeout_ms: None,
            inputs: Vec::new(),
            max_states: None,
            por: true,
            threads: None,
            hops: 0,
            req: None,
            cursor: None,
            limit: None,
            payload: None,
            peer: None,
        }
    }

    /// Renders the request as one protocol line (the inverse of
    /// [`parse`](Self::parse); defaults are omitted).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(id) = &self.id {
            fields.push(("id".to_string(), id.clone()));
        }
        fields.push(("op".to_string(), Json::Str(self.op.name().to_string())));
        if !self.source.is_empty() {
            fields.push(("source".to_string(), Json::Str(self.source.clone())));
        }
        if !self.classes.is_empty() {
            let key = if self.op == Op::Infer {
                "pins"
            } else {
                "classes"
            };
            let obj = self
                .classes
                .iter()
                .map(|(n, c)| (n.clone(), Json::Str(c.clone())))
                .collect();
            fields.push((key.to_string(), Json::Obj(obj)));
        }
        if let Some(d) = &self.default_class {
            fields.push(("default".to_string(), Json::Str(d.clone())));
        }
        if self.lattice != "two" {
            fields.push(("lattice".to_string(), Json::Str(self.lattice.clone())));
        }
        if self.baseline {
            fields.push(("baseline".to_string(), Json::Bool(true)));
        }
        if self.with_proof {
            fields.push(("with_proof".to_string(), Json::Bool(true)));
        }
        if let Some(cert) = &self.cert {
            fields.push(("cert".to_string(), Json::Str(cert.clone())));
        }
        if self.dot {
            fields.push(("dot".to_string(), Json::Bool(true)));
        }
        if let Some(fuel) = self.fuel {
            fields.push(("fuel".to_string(), Json::Num(fuel as f64)));
        }
        if let Some(t) = self.timeout_ms {
            fields.push(("timeout_ms".to_string(), Json::Num(t as f64)));
        }
        if !self.inputs.is_empty() {
            let obj = self
                .inputs
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                .collect();
            fields.push(("inputs".to_string(), Json::Obj(obj)));
        }
        if let Some(n) = self.max_states {
            fields.push(("max_states".to_string(), Json::Num(n as f64)));
        }
        if !self.por {
            fields.push(("por".to_string(), Json::Bool(false)));
        }
        if let Some(n) = self.threads {
            fields.push(("threads".to_string(), Json::Num(n as f64)));
        }
        if self.hops != 0 {
            fields.push(("hops".to_string(), Json::Num(self.hops as f64)));
        }
        if let Some(req) = &self.req {
            fields.push(("req".to_string(), Json::Str(req.clone())));
        }
        if let Some(c) = self.cursor {
            fields.push(("cursor".to_string(), Json::Num(c as f64)));
        }
        if let Some(l) = self.limit {
            fields.push(("limit".to_string(), Json::Num(l as f64)));
        }
        if let Some(p) = &self.payload {
            fields.push(("payload".to_string(), Json::Str(p.clone())));
        }
        if let Some(p) = &self.peer {
            fields.push(("peer".to_string(), Json::Str(p.clone())));
        }
        Json::Obj(fields).to_string()
    }
}

/// Machine-readable failure categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The request line itself was malformed.
    Protocol,
    /// The program source did not parse.
    Parse,
    /// A class/binding/lattice spec was invalid.
    Binding,
    /// The program exceeded the request's or server's fuel limit.
    Fuel,
    /// The request's deadline expired before the work finished.
    Timeout,
    /// The queue was full; retry later.
    Overloaded,
    /// A worker panicked or the service misbehaved.
    Internal,
    /// A `forward` arrived with its hop budget already spent: the
    /// cluster is looping this request between nodes. Permanent against
    /// the answering node (the refused chain is deterministic); the
    /// cluster-aware client advances to the next preference-list node.
    MaxHopsExhausted,
}

impl ErrorKind {
    /// Wire name of the category.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Parse => "parse",
            ErrorKind::Binding => "binding",
            ErrorKind::Fuel => "fuel",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
            ErrorKind::MaxHopsExhausted => "max_hops_exhausted",
        }
    }

    /// Whether a retry can plausibly succeed (see the module-level
    /// taxonomy table): transient server-side conditions are retryable,
    /// deterministic rejections of the request itself are permanent.
    pub fn retryable(self) -> bool {
        match self {
            ErrorKind::Overloaded | ErrorKind::Timeout | ErrorKind::Internal => true,
            ErrorKind::Protocol
            | ErrorKind::Parse
            | ErrorKind::Binding
            | ErrorKind::Fuel
            | ErrorKind::MaxHopsExhausted => false,
        }
    }

    /// Parses a wire name back into a kind (for client-side triage).
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "protocol" => ErrorKind::Protocol,
            "parse" => ErrorKind::Parse,
            "binding" => ErrorKind::Binding,
            "fuel" => ErrorKind::Fuel,
            "timeout" => ErrorKind::Timeout,
            "overloaded" => ErrorKind::Overloaded,
            "internal" => ErrorKind::Internal,
            "max_hops_exhausted" => ErrorKind::MaxHopsExhausted,
            _ => return None,
        })
    }
}

/// Builder for response lines.
pub struct Response {
    fields: Vec<(String, Json)>,
}

impl Response {
    /// A success response for `op`, echoing `id`.
    pub fn ok(id: Option<&Json>, op: Op) -> Response {
        let mut fields = Vec::new();
        if let Some(id) = id {
            fields.push(("id".to_string(), id.clone()));
        }
        fields.push(("ok".to_string(), Json::Bool(true)));
        fields.push(("op".to_string(), Json::Str(op.name().to_string())));
        Response { fields }
    }

    /// A failure response, echoing `id`.
    pub fn error(id: Option<&Json>, kind: ErrorKind, message: &str) -> Response {
        let mut fields = Vec::new();
        if let Some(id) = id {
            fields.push(("id".to_string(), id.clone()));
        }
        fields.push(("ok".to_string(), Json::Bool(false)));
        fields.push((
            "error".to_string(),
            Json::Obj(vec![
                ("kind".to_string(), Json::Str(kind.name().to_string())),
                ("message".to_string(), Json::Str(message.to_string())),
            ]),
        ));
        Response { fields }
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: Json) -> Response {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends every field in `extra` (used to splice cached payloads).
    pub fn fields(mut self, extra: &[(String, Json)]) -> Response {
        self.fields.extend(extra.iter().cloned());
        self
    }

    /// Finishes into a single JSON line (no trailing newline).
    pub fn into_line(self) -> String {
        Json::Obj(self.fields).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_certify() {
        let r = Request::parse(
            r#"{"id":9,"op":"certify","source":"var x : integer; x := 0",
               "classes":{"y":"low","x":"high"},"default":"low",
               "lattice":"linear:3","baseline":true,"fuel":10}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Certify);
        assert_eq!(r.id, Some(Json::Num(9.0)));
        // Sorted for canonical fingerprinting.
        assert_eq!(
            r.classes,
            vec![
                ("x".to_string(), "high".to_string()),
                ("y".to_string(), "low".to_string())
            ]
        );
        assert_eq!(r.default_class.as_deref(), Some("low"));
        assert_eq!(r.lattice, "linear:3");
        assert!(r.baseline);
        assert_eq!(r.fuel, Some(10));
    }

    #[test]
    fn parses_timeout_and_explore_fields() {
        let r = Request::parse(
            r#"{"op":"explore","source":"var x : integer; x := 0",
               "inputs":{"x":-3,"a":7},"max_states":500,"timeout_ms":250,"threads":4}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Explore);
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.max_states, Some(500));
        assert_eq!(r.threads, Some(4));
        // Sorted by name for canonical fingerprinting.
        assert_eq!(r.inputs, vec![("a".to_string(), 7), ("x".to_string(), -3)]);
        assert!(Request::parse(r#"{"op":"certify","source":"x","timeout_ms":-1}"#).is_err());
        assert!(Request::parse(r#"{"op":"explore","source":"x","inputs":{"x":"hi"}}"#).is_err());
    }

    #[test]
    fn to_line_round_trips() {
        let full = Request::parse(
            r#"{"id":9,"op":"certify","source":"var x : integer; x := 0",
               "classes":{"x":"high"},"default":"low","lattice":"linear:3",
               "baseline":true,"dot":true,"fuel":10,"timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(Request::parse(&full.to_line()).unwrap(), full);

        let mut explore = Request::new(Op::Explore, "var x : integer; x := 0");
        explore.inputs = vec![("x".to_string(), -3)];
        explore.max_states = Some(500);
        explore.threads = Some(4);
        assert_eq!(Request::parse(&explore.to_line()).unwrap(), explore);

        // `por` defaults to true and only serializes when disabled.
        assert!(explore.por);
        assert!(!explore.to_line().contains("por"));
        explore.por = false;
        assert!(explore.to_line().contains(r#""por":false"#));
        assert_eq!(Request::parse(&explore.to_line()).unwrap(), explore);
        assert!(Request::parse(r#"{"op":"explore","source":"x","por":1}"#).is_err());

        let infer = Request::parse(r#"{"op":"infer","source":"x","pins":{"x":"high"}}"#).unwrap();
        assert_eq!(Request::parse(&infer.to_line()).unwrap(), infer);

        let minimal = Request::new(Op::Stats, "");
        assert_eq!(Request::parse(&minimal.to_line()).unwrap(), minimal);

        let mut proof = Request::new(Op::Certify, "var x : integer; x := 0");
        proof.with_proof = true;
        assert_eq!(Request::parse(&proof.to_line()).unwrap(), proof);

        let mut check = Request::new(Op::Checkproof, "var x : integer; x := 0");
        check.cert = Some(r#"{"format":"secflow-cert"}"#.to_string());
        assert_eq!(Request::parse(&check.to_line()).unwrap(), check);
    }

    #[test]
    fn checkproof_requires_cert_and_accepts_inline_objects() {
        let (_, msg) =
            Request::parse(r#"{"op":"checkproof","source":"var x : integer; skip"}"#).unwrap_err();
        assert!(msg.contains("needs `cert`"), "{msg}");
        assert!(Request::parse(r#"{"op":"checkproof","cert":"{}"}"#).is_err());
        assert!(Request::parse(r#"{"op":"checkproof","source":"x","cert":7}"#).is_err());

        // An inline object is re-serialized to its compact form.
        let r =
            Request::parse(r#"{"op":"checkproof","source":"x","cert":{"format": "secflow-cert"}}"#)
                .unwrap();
        assert_eq!(r.cert.as_deref(), Some(r#"{"format":"secflow-cert"}"#));

        // `with_proof` is an ordinary boolean flag.
        let r = Request::parse(r#"{"op":"certify","source":"x","with_proof":true}"#).unwrap();
        assert!(r.with_proof);
        assert!(Request::parse(r#"{"op":"certify","source":"x","with_proof":1}"#).is_err());
    }

    #[test]
    fn peer_ops_parse_and_round_trip() {
        // forward wraps a complete inner line and carries a hop count.
        let inner = Request::new(Op::Certify, "var x : integer; x := 0");
        let mut fwd = Request::new(Op::Forward, "");
        fwd.req = Some(inner.to_line());
        fwd.hops = 2;
        let parsed = Request::parse(&fwd.to_line()).unwrap();
        assert_eq!(parsed, fwd);
        assert_eq!(
            Request::parse(parsed.req.as_deref().unwrap()).unwrap(),
            inner
        );

        // hops defaults to 0 and only serializes when nonzero.
        fwd.hops = 0;
        assert!(!fwd.to_line().contains("hops"));
        assert_eq!(Request::parse(&fwd.to_line()).unwrap(), fwd);

        // forward without a wrapped request is a protocol error.
        let (_, msg) = Request::parse(r#"{"op":"forward"}"#).unwrap_err();
        assert!(msg.contains("needs `req`"), "{msg}");
        assert!(Request::parse(r#"{"op":"forward","req":7}"#).is_err());
        assert!(Request::parse(r#"{"op":"forward","req":"x","hops":-1}"#).is_err());

        // peer-sync needs no source; paging fields round-trip.
        let mut sync = Request::new(Op::PeerSync, "");
        sync.cursor = Some(128);
        sync.limit = Some(64);
        assert_eq!(Request::parse(&sync.to_line()).unwrap(), sync);
        let bare = Request::parse(r#"{"op":"peer-sync"}"#).unwrap();
        assert_eq!(bare.op, Op::PeerSync);
        assert_eq!(bare.cursor, None);
        assert!(Request::parse(r#"{"op":"peer-sync","cursor":"a"}"#).is_err());

        // ping needs nothing at all.
        let ping = Request::new(Op::Ping, "");
        assert_eq!(Request::parse(&ping.to_line()).unwrap(), ping);
        assert_eq!(Request::parse(r#"{"op":"ping"}"#).unwrap().op, Op::Ping);

        // replicate carries exactly one record payload.
        let mut rep = Request::new(Op::Replicate, "");
        rep.payload = Some(r#"{"h":"00","c":"x","ok":true,"f":{}}"#.to_string());
        assert_eq!(Request::parse(&rep.to_line()).unwrap(), rep);
        let (_, msg) = Request::parse(r#"{"op":"replicate"}"#).unwrap_err();
        assert!(msg.contains("needs `payload`"), "{msg}");
        assert!(Request::parse(r#"{"op":"replicate","payload":7}"#).is_err());

        // repair names the peer to anti-entropy against.
        let mut rpr = Request::new(Op::Repair, "");
        rpr.peer = Some("127.0.0.1:4601".to_string());
        assert_eq!(Request::parse(&rpr.to_line()).unwrap(), rpr);
        let (_, msg) = Request::parse(r#"{"op":"repair"}"#).unwrap_err();
        assert!(msg.contains("needs `peer`"), "{msg}");
        assert!(Request::parse(r#"{"op":"repair","peer":[]}"#).is_err());
    }

    #[test]
    fn taxonomy_splits_retryable_from_permanent() {
        for kind in [
            ErrorKind::Overloaded,
            ErrorKind::Timeout,
            ErrorKind::Internal,
        ] {
            assert!(kind.retryable(), "{}", kind.name());
            assert_eq!(ErrorKind::from_name(kind.name()), Some(kind));
        }
        for kind in [
            ErrorKind::Protocol,
            ErrorKind::Parse,
            ErrorKind::Binding,
            ErrorKind::Fuel,
            ErrorKind::MaxHopsExhausted,
        ] {
            assert!(!kind.retryable(), "{}", kind.name());
            assert_eq!(ErrorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("nope"), None);
    }

    #[test]
    fn stats_needs_no_source() {
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap().op, Op::Stats);
        assert!(Request::parse(r#"{"op":"certify"}"#).is_err());
    }

    #[test]
    fn salvages_id_from_bad_requests() {
        let (id, _) = Request::parse(r#"{"id":"a7","op":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(Json::Str("a7".to_string())));
        let (id, _) = Request::parse("not json at all").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn response_lines() {
        let line = Response::ok(Some(&Json::Num(3.0)), Op::Certify)
            .field("certified", Json::Bool(true))
            .into_line();
        assert_eq!(
            line,
            r#"{"id":3,"ok":true,"op":"certify","certified":true}"#
        );
        let line = Response::error(None, ErrorKind::Overloaded, "queue full").into_line();
        assert_eq!(
            line,
            r#"{"ok":false,"error":{"kind":"overloaded","message":"queue full"}}"#
        );
    }
}
