//! Snapshot publication and offline store inspection.
//!
//! # Crash-consistency protocol
//!
//! A compaction must never lose data that was durable before it began,
//! no matter where a crash lands. The protocol:
//!
//! 1. Write every live cache entry to `snapshot.tmp` (fresh file).
//! 2. `fsync` the tmp file (skipped under `--fsync never`).
//! 3. Atomically `rename(snapshot.tmp, snapshot.sfs)`.
//! 4. `fsync` the directory so the rename itself is durable.
//! 5. Truncate the journal to zero.
//!
//! Crash cases:
//!
//! - **Before 3**: `snapshot.tmp` may exist, possibly torn. The old
//!   snapshot and full journal are untouched; recovery removes the tmp
//!   and replays both — nothing lost.
//! - **Between 3 and 5**: the new snapshot is published and the journal
//!   still holds records the snapshot already contains. Recovery
//!   replays snapshot first, then journal; duplicates are idempotent
//!   (later wins, values are identical because certification is
//!   deterministic) — nothing lost, nothing wrong.
//! - **After 5**: the compaction simply completed.
//!
//! At no point is the published snapshot written in place, and the
//! journal is only truncated after the rename that supersedes it.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use crate::cache::CachedResult;
use crate::persist::{
    encode_frame, encode_record, scan_file, RecoveredEntry, JOURNAL_FILE, SNAPSHOT_FILE,
    SNAPSHOT_TMP_FILE,
};

/// Writes `live` entries as a new snapshot and publishes it atomically
/// (steps 1–4 above). `durable` controls the fsyncs; the rename is
/// atomic either way.
pub fn publish_snapshot(
    dir: &Path,
    live: &[(u64, String, CachedResult)],
    durable: bool,
) -> io::Result<()> {
    let tmp_path = dir.join(SNAPSHOT_TMP_FILE);
    let mut tmp = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    for (hash, canon, value) in live {
        tmp.write_all(&encode_frame(&encode_record(*hash, canon, value)))?;
    }
    if durable {
        tmp.sync_all()?;
    }
    drop(tmp);
    std::fs::rename(&tmp_path, dir.join(SNAPSHOT_FILE))?;
    if durable {
        // Make the rename durable: fsync the containing directory.
        // Directory fsync is not supported everywhere; a failure here
        // only widens the loss window, it cannot corrupt.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Everything `secflow cache-inspect` learns from one store directory,
/// without mutating it (leftover tmp files are reported, not removed).
pub struct StoreReport {
    /// Entries decoded from the published snapshot, in file order.
    pub snapshot_entries: Vec<RecoveredEntry>,
    /// Entries decoded from the journal, in file order.
    pub journal_entries: Vec<RecoveredEntry>,
    /// Frames skipped across both files (corruption indicator).
    pub frames_skipped: u64,
    /// Snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Journal size in bytes.
    pub journal_bytes: u64,
    /// Whether an unpublished `snapshot.tmp` is lying around (a
    /// compaction was interrupted; harmless, removed at next open).
    pub tmp_present: bool,
}

impl StoreReport {
    /// Distinct entries a recovery of this store would load (journal
    /// records override snapshot records with the same content hash).
    pub fn unique_entries(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in self.snapshot_entries.iter().chain(&self.journal_entries) {
            seen.insert((e.key.hash, e.key.canon.clone()));
        }
        seen.len()
    }

    /// Entries whose persisted reply carries a proof certificate — the
    /// results a warm-started server re-serves with zero re-proving.
    pub fn cert_entries(&self) -> usize {
        self.snapshot_entries
            .iter()
            .chain(&self.journal_entries)
            .filter(|e| carries_certificate(&e.value))
            .count()
    }

    /// True when every frame in the store scanned clean.
    pub fn clean(&self) -> bool {
        self.frames_skipped == 0
    }
}

/// Whether a persisted result's fields include a proof certificate.
pub fn carries_certificate(value: &CachedResult) -> bool {
    value
        .fields
        .iter()
        .any(|(k, v)| k == "certificate" && v.as_str().is_some())
}

/// Scans a store directory read-only (the offline `cache-inspect`
/// path). Errors only on unreadable files, never on corrupt content.
pub fn inspect_store(dir: &Path) -> io::Result<StoreReport> {
    if !dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("`{}` is not a directory", dir.display()),
        ));
    }
    let snapshot = scan_file(&dir.join(SNAPSHOT_FILE))?;
    let journal = scan_file(&dir.join(JOURNAL_FILE))?;
    Ok(StoreReport {
        frames_skipped: snapshot.skipped + journal.skipped,
        snapshot_bytes: snapshot.bytes,
        journal_bytes: journal.bytes,
        snapshot_entries: snapshot.entries,
        journal_entries: journal.entries,
        tmp_present: dir.join(SNAPSHOT_TMP_FILE).exists(),
    })
}

/// Renders a human-readable inspection report (the `cache-inspect`
/// output without `--json`).
pub fn render_report(report: &StoreReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut section = |name: &str, entries: &[RecoveredEntry], bytes: u64| {
        let _ = writeln!(out, "{name}: {} entries, {bytes} bytes", entries.len());
        for e in entries {
            let _ = writeln!(
                out,
                "  {:016x}  ok={}  {} field(s)  {}{}",
                e.key.hash,
                e.value.ok,
                e.value.fields.len(),
                summarize_canon(&e.key.canon),
                if carries_certificate(&e.value) {
                    "  +cert"
                } else {
                    ""
                },
            );
        }
    };
    section("snapshot", &report.snapshot_entries, report.snapshot_bytes);
    section("journal", &report.journal_entries, report.journal_bytes);
    let _ = writeln!(
        out,
        "unique entries: {}   with certificates: {}   frames skipped: {}{}{}",
        report.unique_entries(),
        report.cert_entries(),
        report.frames_skipped,
        if report.tmp_present {
            "   (interrupted compaction tmp present)"
        } else {
            ""
        },
        if report.clean() {
            "   CLEAN"
        } else {
            "   CORRUPT FRAMES"
        },
    );
    out
}

/// First length-prefixed part of a canonical key — the operation name —
/// so inspection output shows what kind of result each record holds.
fn summarize_canon(canon: &str) -> String {
    let Some((len, rest)) = canon.split_once(':') else {
        return String::from("?");
    };
    let Ok(n) = len.parse::<usize>() else {
        return String::from("?");
    };
    rest.get(..n)
        .map_or_else(|| String::from("?"), str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::json::Json;
    use crate::persist::{DurableStore, PersistConfig};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secflow-snapshot-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn live(tags: &[&str]) -> Vec<(u64, String, CachedResult)> {
        tags.iter()
            .map(|tag| {
                let key = CacheKey::of(&["certify", tag]);
                (
                    key.hash,
                    key.canon,
                    CachedResult {
                        ok: true,
                        fields: vec![("tag".to_string(), Json::Str(tag.to_string()))],
                    },
                )
            })
            .collect()
    }

    #[test]
    fn publish_then_recover_round_trips() {
        let dir = tmp_dir("publish");
        publish_snapshot(&dir, &live(&["a", "b"]), true).unwrap();
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.drain_recovered().len(), 2);
        assert_eq!(store.stats().frames_skipped, 0);
    }

    #[test]
    fn compaction_truncates_journal_and_drops_nothing_live() {
        let dir = tmp_dir("compact");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = live(&["a", "b", "c"]);
        for (hash, canon, value) in &entries {
            store
                .append(
                    &CacheKey {
                        hash: *hash,
                        canon: canon.clone(),
                    },
                    value,
                )
                .unwrap();
        }
        store.compact(&entries).unwrap();
        assert_eq!(store.stats().journal_bytes, 0);
        assert_eq!(store.stats().compactions, 1);
        drop(store);

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(reopened.drain_recovered().len(), 3);
    }

    #[test]
    fn interrupted_compaction_leaves_old_state_recoverable() {
        let dir = tmp_dir("interrupted");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = live(&["a", "b"]);
        for (hash, canon, value) in &entries {
            store
                .append(
                    &CacheKey {
                        hash: *hash,
                        canon: canon.clone(),
                    },
                    value,
                )
                .unwrap();
        }
        drop(store);
        // Simulate a crash mid-step-1: a torn tmp file, journal intact.
        std::fs::write(dir.join(SNAPSHOT_TMP_FILE), b"torn half-written snapsh").unwrap();

        let report = inspect_store(&dir).unwrap();
        assert!(report.tmp_present);
        assert_eq!(report.journal_entries.len(), 2);

        let mut reopened = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(reopened.drain_recovered().len(), 2);
        assert_eq!(reopened.stats().frames_skipped, 0, "tmp is not scanned");
        assert!(!dir.join(SNAPSHOT_TMP_FILE).exists(), "tmp removed on open");
    }

    #[test]
    fn truncated_snapshot_skips_without_crashing() {
        let dir = tmp_dir("snap-trunc");
        publish_snapshot(&dir, &live(&["a", "b", "c"]), true).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        let entries = store.drain_recovered();
        assert_eq!(entries.len(), 2, "valid prefix of the snapshot survives");
        assert_eq!(store.stats().frames_skipped, 1);
    }

    #[test]
    fn inspect_reports_corruption_and_op_names() {
        let dir = tmp_dir("inspect");
        let mut store = DurableStore::open(PersistConfig::new(&dir)).unwrap();
        for (hash, canon, value) in live(&["a", "b"]) {
            store.append(&CacheKey { hash, canon }, &value).unwrap();
        }
        drop(store);
        let clean = inspect_store(&dir).unwrap();
        assert!(clean.clean());
        assert_eq!(clean.unique_entries(), 2);
        let rendered = render_report(&clean);
        assert!(rendered.contains("certify"), "{rendered}");
        assert!(rendered.contains("CLEAN"), "{rendered}");

        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let corrupt = inspect_store(&dir).unwrap();
        assert!(!corrupt.clean());
        assert_eq!(corrupt.frames_skipped, 1);
        assert!(render_report(&corrupt).contains("CORRUPT"));
    }

    #[test]
    fn inspect_counts_certificate_entries() {
        let dir = tmp_dir("certs");
        let mut entries = live(&["plain"]);
        let key = CacheKey::of(&["certify", "with-proof"]);
        entries.push((
            key.hash,
            key.canon,
            CachedResult {
                ok: true,
                fields: vec![
                    ("certified".to_string(), Json::Bool(true)),
                    (
                        "certificate".to_string(),
                        Json::Str(r#"{"format":"secflow-cert"}"#.to_string()),
                    ),
                ],
            },
        ));
        publish_snapshot(&dir, &entries, true).unwrap();
        let report = inspect_store(&dir).unwrap();
        assert_eq!(report.unique_entries(), 2);
        assert_eq!(report.cert_entries(), 1);
        let rendered = render_report(&report);
        assert!(rendered.contains("+cert"), "{rendered}");
        assert!(rendered.contains("with certificates: 1"), "{rendered}");
    }

    #[test]
    fn inspect_missing_dir_errors() {
        let missing = std::env::temp_dir().join("secflow-snapshot-definitely-missing");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(inspect_store(&missing).is_err());
    }
}
