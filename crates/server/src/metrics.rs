//! Service counters and a fixed-bucket latency histogram.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — the
//! counters are statistics, not synchronization), so workers never
//! contend while recording.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use crate::json::Json;

/// Upper bounds (µs) of the latency histogram buckets; a final
/// unbounded bucket catches everything slower.
pub const LATENCY_BUCKETS_US: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// Live counters for one service instance.
#[derive(Default)]
pub struct Metrics {
    /// Requests received (any op, including malformed lines).
    pub requests: AtomicU64,
    /// `certify` requests processed.
    pub certify: AtomicU64,
    /// `infer` requests processed.
    pub infer: AtomicU64,
    /// `flows` requests processed.
    pub flows: AtomicU64,
    /// `lint` requests processed.
    pub lint: AtomicU64,
    /// `explore` requests processed.
    pub explore: AtomicU64,
    /// `checkproof` requests processed.
    pub checkproof: AtomicU64,
    /// Proof certificates emitted by the Theorem 1 prover (`certify`
    /// with `with_proof`, freshly computed — cached re-serves do not
    /// count, which is exactly what makes "zero re-proving" checkable).
    pub proofs_emitted: AtomicU64,
    /// Total bytes of every certificate emitted.
    pub proof_bytes_total: AtomicU64,
    /// Certificates that validated (freshly computed verdicts).
    pub checkproof_valid: AtomicU64,
    /// Certificates rejected with a structured stage error.
    pub checkproof_rejected: AtomicU64,
    /// `checkproof` verdicts served from the digest-addressed cache.
    pub checkproof_cache_hits: AtomicU64,
    /// Results served from the cache.
    pub cache_hits: AtomicU64,
    /// Results computed because the cache had no entry.
    pub cache_misses: AtomicU64,
    /// Error responses of any kind.
    pub errors: AtomicU64,
    /// Requests refused because the queue was full.
    pub overloaded: AtomicU64,
    /// Worker panics survived (the job got an `internal` error).
    pub panics: AtomicU64,
    /// Requests whose deadline expired (structured `timeout` errors).
    pub timeouts: AtomicU64,
    /// Analysis passes that panicked and were degraded to `SF000`.
    pub pass_panics: AtomicU64,
    /// Requests whose `threads` field exceeded the server cap and was
    /// clamped down.
    pub threads_clamped: AtomicU64,
    /// Abstract states visited by (non-cached) `explore` requests.
    pub explore_states: AtomicU64,
    /// States skipped by partial-order reduction in (non-cached)
    /// `explore` requests.
    pub explore_pruned: AtomicU64,
    /// Wall time spent inside (non-cached) `explore` requests, in µs.
    pub explore_us: AtomicU64,
    /// TCP connections currently open on the poll-loop front-end.
    pub conn_open: AtomicU64,
    /// TCP connections ever accepted by the poll-loop front-end.
    pub conn_accepted_total: AtomicU64,
    /// Connections disconnected for exceeding the write-buffer
    /// high-water mark (unbounded-slow readers).
    pub conn_rejected_overloaded: AtomicU64,
    /// Connections closed by the stall (mid-line slowloris) or idle
    /// timeout.
    pub conn_stalled_closed: AtomicU64,
    /// Deepest per-connection pipeline observed (requests in flight on
    /// one connection at once).
    pub pipelined_depth_max: AtomicU64,
    /// Requests that attached to another request's in-flight
    /// computation instead of recomputing (single-flight coalescing).
    pub coalesced_hits: AtomicU64,
    /// Requests this node forwarded to the shard owner instead of
    /// computing locally.
    pub cluster_forwards: AtomicU64,
    /// Forwarded requests whose relayed reply was already cached at the
    /// owner (`"cached":true`) — cluster-wide dedup working.
    pub cluster_forward_hits: AtomicU64,
    /// `peer-sync` pages this node served to warm-starting peers.
    pub cluster_peer_syncs: AtomicU64,
    /// Nodes on this node's hash ring (gauge; 0 when not clustered).
    pub cluster_hash_ring_size: AtomicU64,
    /// Forwards refused because the request's hop count reached the
    /// budget (structured `max_hops_exhausted` — a routing loop guard).
    pub cluster_forward_hop_exhausted: AtomicU64,
    /// Replica pushes this node sent that the replica acknowledged.
    pub cluster_replicas_sent: AtomicU64,
    /// Verified replica entries this node installed via `replicate`.
    pub cluster_replica_installs: AtomicU64,
    /// Replica writes queued as hints because the replica was DOWN or
    /// the push failed.
    pub cluster_hints_queued: AtomicU64,
    /// Queued hints later delivered to their recovered replica.
    pub cluster_hints_delivered: AtomicU64,
    /// Hints dropped to keep the hint journal inside its byte budget
    /// (anti-entropy `repair` is the backstop for these).
    pub cluster_hints_dropped: AtomicU64,
    /// Anti-entropy `repair` rounds that actually pulled entries.
    pub cluster_repairs: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_total_us: AtomicU64,
    latency_count: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }

    /// Records one request's service latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency[idx].fetch_add(1, Relaxed);
        self.latency_total_us.fetch_add(us, Relaxed);
        self.latency_count.fetch_add(1, Relaxed);
    }

    /// Snapshot as response fields for the `stats` op.
    pub fn snapshot_fields(&self) -> Vec<(String, Json)> {
        let n = |a: &AtomicU64| Json::Num(a.load(Relaxed) as f64);
        let count = self.latency_count.load(Relaxed);
        let mean_us = if count == 0 {
            0.0
        } else {
            self.latency_total_us.load(Relaxed) as f64 / count as f64
        };
        let explore_us = self.explore_us.load(Relaxed);
        let explore_rate = if explore_us == 0 {
            0.0
        } else {
            self.explore_states.load(Relaxed) as f64 / (explore_us as f64 / 1_000_000.0)
        };
        let visited = self.explore_states.load(Relaxed);
        let pruned = self.explore_pruned.load(Relaxed);
        // Fraction of the encountered frontier the reduction skipped.
        let reduction_ratio = if visited + pruned == 0 {
            0.0
        } else {
            pruned as f64 / (visited + pruned) as f64
        };
        let histogram: Vec<Json> = self
            .latency
            .iter()
            .enumerate()
            .map(|(i, bucket)| {
                let bound = LATENCY_BUCKETS_US
                    .get(i)
                    .map_or_else(|| "inf".to_string(), u64::to_string);
                Json::Obj(vec![
                    ("le_us".to_string(), Json::Str(bound)),
                    ("count".to_string(), Json::Num(bucket.load(Relaxed) as f64)),
                ])
            })
            .collect();
        vec![
            ("requests".to_string(), n(&self.requests)),
            ("certify".to_string(), n(&self.certify)),
            ("infer".to_string(), n(&self.infer)),
            ("flows".to_string(), n(&self.flows)),
            ("lint".to_string(), n(&self.lint)),
            ("explore".to_string(), n(&self.explore)),
            ("checkproof".to_string(), n(&self.checkproof)),
            (
                "cert".to_string(),
                Json::Obj(vec![
                    ("proofs_emitted".to_string(), n(&self.proofs_emitted)),
                    ("checkproof_requests".to_string(), n(&self.checkproof)),
                    ("checkproof_valid".to_string(), n(&self.checkproof_valid)),
                    (
                        "checkproof_rejected".to_string(),
                        n(&self.checkproof_rejected),
                    ),
                    ("proof_bytes_total".to_string(), n(&self.proof_bytes_total)),
                    (
                        "cache_hits_by_digest".to_string(),
                        n(&self.checkproof_cache_hits),
                    ),
                ]),
            ),
            ("cache_hits".to_string(), n(&self.cache_hits)),
            ("cache_misses".to_string(), n(&self.cache_misses)),
            ("errors".to_string(), n(&self.errors)),
            ("overloaded".to_string(), n(&self.overloaded)),
            ("panics".to_string(), n(&self.panics)),
            ("timeouts".to_string(), n(&self.timeouts)),
            ("pass_panics".to_string(), n(&self.pass_panics)),
            ("threads_clamped".to_string(), n(&self.threads_clamped)),
            ("explore_states".to_string(), n(&self.explore_states)),
            ("explore_states_pruned".to_string(), n(&self.explore_pruned)),
            (
                "explore_reduction_ratio".to_string(),
                Json::Num(reduction_ratio),
            ),
            (
                "explore_states_per_sec".to_string(),
                Json::Num(explore_rate),
            ),
            (
                "conn".to_string(),
                Json::Obj(vec![
                    ("open".to_string(), n(&self.conn_open)),
                    ("accepted_total".to_string(), n(&self.conn_accepted_total)),
                    (
                        "rejected_overloaded".to_string(),
                        n(&self.conn_rejected_overloaded),
                    ),
                    ("stalled_closed".to_string(), n(&self.conn_stalled_closed)),
                    (
                        "pipelined_depth_max".to_string(),
                        n(&self.pipelined_depth_max),
                    ),
                    ("coalesced_hits".to_string(), n(&self.coalesced_hits)),
                ]),
            ),
            (
                "cluster".to_string(),
                Json::Obj(vec![
                    ("forwards".to_string(), n(&self.cluster_forwards)),
                    ("forward_hits".to_string(), n(&self.cluster_forward_hits)),
                    ("peer_syncs".to_string(), n(&self.cluster_peer_syncs)),
                    (
                        "hash_ring_size".to_string(),
                        n(&self.cluster_hash_ring_size),
                    ),
                    (
                        "forward_hop_exhausted".to_string(),
                        n(&self.cluster_forward_hop_exhausted),
                    ),
                    ("replicas_sent".to_string(), n(&self.cluster_replicas_sent)),
                    (
                        "replica_installs".to_string(),
                        n(&self.cluster_replica_installs),
                    ),
                    ("hints_queued".to_string(), n(&self.cluster_hints_queued)),
                    (
                        "hints_delivered".to_string(),
                        n(&self.cluster_hints_delivered),
                    ),
                    ("hints_dropped".to_string(), n(&self.cluster_hints_dropped)),
                    ("repairs".to_string(), n(&self.cluster_repairs)),
                ]),
            ),
            ("latency_mean_us".to_string(), Json::Num(mean_us)),
            ("latency_histogram".to_string(), Json::Arr(histogram)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let m = Metrics::new();
        m.record_latency(Duration::from_micros(40)); // -> le 50
        m.record_latency(Duration::from_micros(70)); // -> le 100
        m.record_latency(Duration::from_secs(2)); // -> inf
        let fields = m.snapshot_fields();
        let hist = fields
            .iter()
            .find(|(k, _)| k == "latency_histogram")
            .and_then(|(_, v)| v.as_arr())
            .unwrap();
        assert_eq!(hist.len(), LATENCY_BUCKETS_US.len() + 1);
        let count_of = |i: usize| hist[i].get("count").and_then(Json::as_u64).unwrap();
        assert_eq!(count_of(0), 1);
        assert_eq!(count_of(1), 1);
        assert_eq!(count_of(LATENCY_BUCKETS_US.len()), 1);
        let mean = fields
            .iter()
            .find(|(k, _)| k == "latency_mean_us")
            .map(|(_, v)| match v {
                Json::Num(n) => *n,
                _ => unreachable!(),
            })
            .unwrap();
        assert!(mean > 0.0);
    }

    /// Pins the stats schema: every key a pre-PR-8 client may depend on
    /// is still present with its original spelling, and the new `conn`
    /// object is purely additive.
    #[test]
    fn stats_schema_stays_backward_compatible() {
        let m = Metrics::new();
        let fields = m.snapshot_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        for legacy in [
            "requests",
            "certify",
            "infer",
            "flows",
            "lint",
            "explore",
            "checkproof",
            "cert",
            "cache_hits",
            "cache_misses",
            "errors",
            "overloaded",
            "panics",
            "timeouts",
            "pass_panics",
            "threads_clamped",
            "explore_states",
            "explore_states_pruned",
            "explore_reduction_ratio",
            "explore_states_per_sec",
            "latency_mean_us",
            "latency_histogram",
        ] {
            assert!(keys.contains(&legacy), "missing legacy stats key {legacy}");
        }
        let conn = fields
            .iter()
            .find(|(k, _)| k == "conn")
            .map(|(_, v)| v)
            .expect("stats carries a conn object");
        let Json::Obj(conn_fields) = conn else {
            panic!("conn must be an object");
        };
        let conn_keys: Vec<&str> = conn_fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            conn_keys,
            vec![
                "open",
                "accepted_total",
                "rejected_overloaded",
                "stalled_closed",
                "pipelined_depth_max",
                "coalesced_hits",
            ]
        );
        // The cluster object (PR 9) is additive in the same way.
        let cluster = fields
            .iter()
            .find(|(k, _)| k == "cluster")
            .map(|(_, v)| v)
            .expect("stats carries a cluster object");
        let Json::Obj(cluster_fields) = cluster else {
            panic!("cluster must be an object");
        };
        let cluster_keys: Vec<&str> = cluster_fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            cluster_keys,
            vec![
                "forwards",
                "forward_hits",
                "peer_syncs",
                "hash_ring_size",
                "forward_hop_exhausted",
                "replicas_sent",
                "replica_installs",
                "hints_queued",
                "hints_delivered",
                "hints_dropped",
                "repairs",
            ],
            "PR 10 replication counters are additive at the tail"
        );
    }
}
