//! The readiness-driven TCP front-end: one poll loop, zero
//! per-connection threads.
//!
//! Every socket (the listener included) runs nonblocking; a single loop
//! owns accept, read, decode, dispatch, and write for a slab of
//! [`Conn`] state machines, while CPU work still runs on the supervised
//! worker [`Pool`]. Ten thousand idle or slow connections therefore
//! cost buffers, not threads — the paper's certification service is
//! supposed to sit in front of *every* program admitted to a shared
//! system, so the front door must not fall over when the whole system
//! shows up at once.
//!
//! std-only readiness: with no `epoll` binding available, the loop
//! drives every socket each tick and parks briefly (on the reply
//! channel, so a finishing job wakes it instantly) only when a full
//! tick made no progress. That trades a sub-millisecond of idle latency
//! for zero dependencies.
//!
//! Robustness properties, over and above the blocking front-end:
//!
//! - **Pipelining with bounded windows.** A connection may have up to
//!   [`ServerConfig::pipeline_window`] requests in flight; replies are
//!   written as they complete (out of order — correlate by `id`).
//!   Beyond the window the loop simply stops reading that socket, so
//!   backpressure propagates by TCP instead of by dropping requests.
//! - **Slowloris defense.** A client frozen mid-line past the stall
//!   timeout (or idle past the idle timeout with nothing pending) is
//!   closed and counted in `conn.stalled_closed`. A stalled client can
//!   never block progress on other connections: it owns no thread.
//! - **Slow-reader disconnects.** Replies buffer per connection up to
//!   [`ServerConfig::write_high_water`]; past that the backlog is
//!   dropped and the client is sent a structured `overloaded` error and
//!   disconnected (`conn.rejected_overloaded`).
//! - **Descriptor exhaustion.** `EMFILE`/`ENFILE` from `accept` backs
//!   the accept loop off briefly instead of killing the server.
//! - **Drain on shutdown.** A `shutdown` request is acked immediately
//!   (`draining:true`), intake stops, and the loop keeps flushing until
//!   every dispatched request has been answered and written (or its
//!   connection died), then the pool drains and the listener closes.

use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::conn::{Conn, ConnToken, Decoded};
use crate::fault::Faults;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::pool::Pool;
use crate::protocol::{Op, Request, Response};
use crate::serve::{dispatch, oversized_line_error, Dispatched, ReplySink, ServerConfig};
use crate::service::Service;

/// How long the loop parks when a full tick made no progress. Parked
/// time is spent blocking on the reply channel, so a completing job
/// wakes the loop immediately; this only bounds how often quiet sockets
/// are re-polled.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Short park used while the loop is "hot": a request byte cannot wake
/// the reply channel, so for a moment after any progress the loop
/// re-polls sockets at microsecond granularity to catch the lockstep
/// client's next request. Keeps single-client round trips in the tens
/// of microseconds instead of an [`IDLE_PARK`] each.
const HOT_PARK: Duration = Duration::from_micros(50);

/// How long after the last progress the loop keeps using [`HOT_PARK`].
const HOT_WINDOW: Duration = Duration::from_millis(2);

/// Backoff applied to the accept loop after `EMFILE`/`ENFILE`.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// How long the shutdown drain keeps trying to flush written replies
/// to connections that have stopped reading before giving up on them.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// A reply sink that routes a pooled job's response line back to the
/// poll loop, tagged with the connection it belongs to.
pub(crate) struct TokenSink {
    token: ConnToken,
    tx: mpsc::Sender<(ConnToken, String)>,
}

impl Clone for TokenSink {
    fn clone(&self) -> TokenSink {
        TokenSink {
            token: self.token,
            tx: self.tx.clone(),
        }
    }
}

impl ReplySink for TokenSink {
    fn send_line(&self, line: String) {
        let _ = self.tx.send((self.token, line));
    }
}

/// The poll loop's whole mutable world.
struct Loop<'a, F: Faults + Clone> {
    cfg: &'a ServerConfig,
    service: &'a Arc<Service>,
    pool: &'a Pool,
    faults: &'a F,
    reply_tx: mpsc::Sender<(ConnToken, String)>,
    slots: Vec<Option<Conn<TcpStream>>>,
    free: Vec<usize>,
    next_gen: u64,
    /// Replies dispatched into the sink but not yet received back.
    expected: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    accept_backoff_until: Option<Instant>,
    stall_timeout: Option<Duration>,
    idle_timeout: Option<Duration>,
}

/// Runs the poll-loop front-end until a `shutdown` request drains it.
pub(crate) fn run<F: Faults + Clone>(
    listener: TcpListener,
    cfg: ServerConfig,
    service: Arc<Service>,
    faults: F,
) {
    let pool = Pool::new(cfg.workers, cfg.queue_capacity);
    let (reply_tx, reply_rx) = mpsc::channel::<(ConnToken, String)>();
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let mut lp = Loop {
        cfg: &cfg,
        service: &service,
        pool: &pool,
        faults: &faults,
        reply_tx,
        slots: Vec::new(),
        free: Vec::new(),
        next_gen: 1,
        expected: 0,
        draining: false,
        drain_deadline: None,
        accept_backoff_until: None,
        stall_timeout: timeout(cfg.stall_timeout_ms),
        idle_timeout: timeout(cfg.idle_timeout_ms),
    };

    let mut hot_until = Instant::now();
    loop {
        let mut progress = false;
        progress |= lp.accept_burst(&listener);
        while let Ok((token, line)) = reply_rx.try_recv() {
            progress = true;
            lp.deliver(token, line);
        }
        progress |= lp.service_conns();
        if lp.drained() {
            break;
        }
        if progress {
            hot_until = Instant::now() + HOT_WINDOW;
        } else {
            // Park on the reply channel: a completing job wakes us
            // immediately; otherwise re-poll the sockets after a tick
            // (a short one while recent progress suggests a client is
            // about to send its next request).
            let park = if Instant::now() < hot_until {
                HOT_PARK
            } else {
                IDLE_PARK
            };
            if let Ok((token, line)) = reply_rx.recv_timeout(park) {
                lp.deliver(token, line);
            }
        }
    }

    // Count the sockets we are abandoning (all flushed or given up on).
    let open = lp.slots.iter().flatten().count() as u64;
    service.metrics.conn_open.fetch_sub(open, Relaxed);
    drop(lp);
    drop(listener);
    pool.shutdown();
}

impl<F: Faults + Clone> Loop<'_, F> {
    /// Accepts every connection the listener has ready. Returns whether
    /// anything was accepted.
    fn accept_burst(&mut self, listener: &TcpListener) -> bool {
        if self.draining {
            return false;
        }
        if let Some(until) = self.accept_backoff_until {
            if Instant::now() < until {
                return false;
            }
            self.accept_backoff_until = None;
        }
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    // Injected connection drop: close before a single
                    // byte is exchanged; clients should retry.
                    if self.faults.drop_connection() {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(None);
                        self.slots.len() - 1
                    });
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    self.slots[slot] = Some(Conn::new(stream, gen, self.cfg.max_line_bytes));
                    Metrics::bump(&self.service.metrics.conn_accepted_total);
                    self.service.metrics.conn_open.fetch_add(1, Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE (24) / ENFILE (23): the process or host is out
                // of descriptors. Existing connections keep being
                // served; accepting resumes after a short backoff
                // instead of the listener thread dying.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
                // Transient accept failures (aborted handshakes etc.):
                // skip this one, keep listening.
                Err(_) => break,
            }
        }
        progress
    }

    /// Routes one completed reply line to its connection's write
    /// buffer. Stale tokens (the connection died while its request ran)
    /// drop the line; the global `expected` count still goes down, so
    /// shutdown drain never waits on a ghost.
    fn deliver(&mut self, token: ConnToken, line: String) {
        self.expected = self.expected.saturating_sub(1);
        let Some(conn) = self.slots.get_mut(token.slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.gen != token.gen || conn.closing {
            return;
        }
        conn.inflight = conn.inflight.saturating_sub(1);
        conn.enqueue_line(&line);
        if conn.wbuf.len() > self.cfg.write_high_water {
            Metrics::bump(&self.service.metrics.conn_rejected_overloaded);
            conn.overload_disconnect();
        }
    }

    /// One service pass over every live connection: flush, dispatch
    /// decoded requests, read, enforce timeouts, reap the finished.
    fn service_conns(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.slots.len() {
            let Some(conn) = self.slots[slot].as_mut() else {
                continue;
            };
            let token = ConnToken {
                slot,
                gen: conn.gen,
            };
            let mut close = conn.finished();
            if !close {
                match conn.flush_writes() {
                    Ok(moved) => progress |= moved,
                    Err(_) => close = true,
                }
                close = close || conn.finished();
            }
            if !close {
                progress |= self.pump_requests(slot, token);
                let Some(conn) = self.slots[slot].as_mut() else {
                    continue;
                };
                close = conn.finished() || self.timed_out(slot);
            }
            if close {
                self.close(slot);
                progress = true;
            }
        }
        progress
    }

    /// Dispatches already-decoded lines, then reads more bytes while
    /// the pipeline window has room. Returns whether anything moved.
    fn pump_requests(&mut self, slot: usize, token: ConnToken) -> bool {
        let mut progress = false;
        progress |= self.dispatch_decoded(slot, token);
        let mut buf = [0u8; 8192];
        while let Some(conn) = self.slots[slot].as_mut() {
            if self.draining
                || conn.closing
                || conn.read_closed
                || conn.inflight >= self.cfg.pipeline_window
            {
                break;
            }
            // Chaos hooks at the readiness layer: injected read errors
            // end intake (in-flight replies still drain), injected
            // stalls skip this socket for a tick, short reads deliver
            // one byte — all of which the resumable decoder absorbs.
            if self.faults.read_error() {
                conn.read_closed = true;
                break;
            }
            if self.faults.stall_read() {
                break;
            }
            let dst: &mut [u8] = if self.faults.short_io() {
                &mut buf[..1]
            } else {
                &mut buf[..]
            };
            match conn.stream.read(dst) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.feed(&buf[..n]);
                    progress = true;
                    self.dispatch_decoded(slot, token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
        progress
    }

    /// Feeds decoded lines through `dispatch` until the window fills
    /// (or a shutdown begins). Returns whether any request moved.
    fn dispatch_decoded(&mut self, slot: usize, token: ConnToken) -> bool {
        let mut progress = false;
        while let Some(conn) = self.slots[slot].as_mut() {
            if self.draining || conn.closing || conn.inflight >= self.cfg.pipeline_window {
                break;
            }
            let Some(event) = conn.decoder.next_event() else {
                break;
            };
            progress = true;
            let line = match event {
                Decoded::TooLong => {
                    Metrics::bump(&self.service.metrics.errors);
                    conn.enqueue_line(&oversized_line_error(self.cfg.max_line_bytes));
                    continue;
                }
                Decoded::Line(bytes) => bytes,
            };
            let text = String::from_utf8_lossy(&line);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            conn.inflight += 1;
            self.expected += 1;
            self.service
                .metrics
                .pipelined_depth_max
                .fetch_max(conn.inflight as u64, Relaxed);
            let sink = TokenSink {
                token,
                tx: self.reply_tx.clone(),
            };
            match dispatch(trimmed, self.service, self.pool, &sink, self.faults) {
                Dispatched::Shutdown => {
                    // Ack immediately (out of band of the drain), stop
                    // all intake, and let the main loop run dry.
                    conn.inflight -= 1;
                    self.expected -= 1;
                    let id = Request::parse(trimmed).ok().and_then(|r| r.id);
                    conn.enqueue_line(
                        &Response::ok(id.as_ref(), Op::Shutdown)
                            .field("draining", Json::Bool(true))
                            .into_line(),
                    );
                    self.draining = true;
                    self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                }
                Dispatched::Inline | Dispatched::Queued => {}
            }
        }
        progress
    }

    /// The slowloris/idle policy for one connection.
    fn timed_out(&mut self, slot: usize) -> bool {
        let Some(conn) = self.slots[slot].as_mut() else {
            return false;
        };
        let quiet = conn.last_activity.elapsed();
        let stalled = self
            .stall_timeout
            .is_some_and(|t| conn.decoder.mid_line() && quiet > t);
        let idled = self.idle_timeout.is_some_and(|t| {
            !conn.decoder.mid_line() && conn.inflight == 0 && conn.wbuf.is_empty() && quiet > t
        });
        if stalled || idled {
            Metrics::bump(&self.service.metrics.conn_stalled_closed);
            return true;
        }
        false
    }

    fn close(&mut self, slot: usize) {
        if self.slots[slot].take().is_some() {
            self.service.metrics.conn_open.fetch_sub(1, Relaxed);
            self.free.push(slot);
        }
    }

    /// Shutdown drain is complete when every dispatched request has
    /// come back and every goodbye byte is flushed (or the grace period
    /// for unresponsive readers ran out).
    fn drained(&self) -> bool {
        if !self.draining {
            return false;
        }
        if self.expected > 0 {
            return self.drain_deadline.is_some_and(|d| Instant::now() >= d);
        }
        self.slots.iter().flatten().all(|c| c.wbuf.is_empty())
            || self.drain_deadline.is_some_and(|d| Instant::now() >= d)
    }
}
